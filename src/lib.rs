//! Root meta-crate: re-exports the `commgraph` public API.
pub use commgraph::*;
