//! The deterministic-tick alerting contract, asserted end to end: the same
//! steady-churn workload with an injected roll-lag fault produces a
//! **bit-identical** alert firing sequence across two independent runs —
//! compared over real HTTP via `/alerts`, not in-process.
//!
//! Determinism holds because every link in the chain is tick-keyed, never
//! wall-clock-keyed: the per-subscription roll-lag gauge is computed from
//! record timestamps, the scraper samples on logical ticks (one per
//! ingested window batch), the alert engine evaluates on the same ticks,
//! and the `/alerts` JSON carries only tick numbers.

use commgraph::analytics::engine::EngineConfig;
use commgraph::analytics::sharded::{ShardedConfig, ShardedEngine};
use commgraph::flowlog::record::{ConnSummary, FlowKey};
use commgraph::obs;
use commgraph::obs::alert::{Op, Selector};
use serde_json::Value;
use std::io::{Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;

const WINDOW_LEN: u64 = 3600;
const WINDOWS: u64 = 8;

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("server reachable");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

/// One window's batch of a steady-churn workload. The injected fault: in
/// windows 3 and 4 the first record lands 1 200 s into the window (an
/// upstream flow-log delivery stall), far over the 600 s roll-lag
/// threshold; every other window opens 10 s in.
fn window_batch(w: u64) -> Vec<ConnSummary> {
    let lag_fault = w == 3 || w == 4;
    let base = w * WINDOW_LEN + if lag_fault { 1200 } else { 10 };
    let mut recs = Vec::new();
    for i in 0..20u8 {
        recs.push(ConnSummary {
            ts: base + i as u64 * 7,
            key: FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1 + i % 4),
                40_000,
                Ipv4Addr::new(10, 0, 1, 1),
                443,
            ),
            pkts_sent: 10,
            pkts_rcvd: 8,
            bytes_sent: 10_000 + w * 100,
            bytes_rcvd: 2_500,
        });
    }
    recs
}

/// Run the whole chain once and return the `/alerts` body served over HTTP.
fn run_once() -> String {
    let registry = Arc::new(obs::Registry::new());
    let o = obs::Obs::new(registry.clone());
    let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
    let scraper = Arc::new(obs::Scraper::new(registry.clone(), store.clone()));
    let alerts = Arc::new(obs::AlertEngine::new(o.clone()));
    alerts.add_rule(obs::AlertRule::threshold(
        "subscription_roll_lag_high",
        Selector::value("commgraph_subscription_roll_lag_seconds")
            .with_label("subscription", "tenant-a"),
        Op::Gt,
        600.0,
        1,
    ));

    let mut front = ShardedEngine::new(ShardedConfig {
        obs: o,
        engine: EngineConfig { window_len: WINDOW_LEN, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    for w in 0..WINDOWS {
        front.ingest("tenant-a", &window_batch(w)).unwrap();
        let tick = w + 1;
        scraper.scrape(tick);
        alerts.evaluate(tick, &store);
    }
    front.finish().unwrap();

    let server = obs::IntrospectionServer::new(registry)
        .with_tsdb(store)
        .with_alerts(alerts)
        .start("127.0.0.1:0")
        .expect("bind an ephemeral port");
    let body = http_get(server.addr(), "/alerts");
    server.shutdown();
    body
}

#[test]
fn lag_fault_fires_bit_identically_across_runs_over_http() {
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "two full runs serve byte-identical /alerts documents");

    let doc: Value = serde_json::from_str(&first).expect("valid /alerts JSON");
    assert_eq!(doc["tick"].as_u64(), Some(WINDOWS), "one tick per ingested window");

    // The fault lands in window 4 (tick 4): that batch's first record opens
    // the window 1 200 s late, so the gauge crosses the 600 s threshold —
    // pending at tick 4, firing after the one-tick hold at tick 5 (the
    // second faulty window), resolved when window 6 opens on time.
    let transitions: Vec<(u64, &str, &str)> = doc["transitions"]
        .as_array()
        .expect("transition log")
        .iter()
        .map(|t| {
            (t["tick"].as_u64().unwrap(), t["from"].as_str().unwrap(), t["to"].as_str().unwrap())
        })
        .collect();
    assert_eq!(
        transitions,
        vec![
            (4, "inactive", "pending"),
            (5, "pending", "firing"),
            (6, "firing", "resolved"),
            (7, "resolved", "inactive"),
        ],
        "the exact firing sequence of the injected lag fault"
    );
    let alert = &doc["alerts"].as_array().expect("alerts array")[0];
    assert_eq!(alert["rule"].as_str(), Some("subscription_roll_lag_high"));
    assert_eq!(alert["state"].as_str(), Some("inactive"), "healthy again by the last tick");
}

/// The expression-based pack is a behavioural twin of the hard-coded one:
/// over the real sharded-engine workload (lag fault included), two alert
/// engines — one running [`obs::alert::default_pack`], one running
/// [`obs::alert::query_pack`] plus an expression twin of the roll-lag
/// threshold — evaluate the same store on the same ticks and walk the
/// exact same transition sequence.
#[test]
fn query_pack_matches_hard_coded_rules_on_the_real_workload() {
    const RATE: f64 = 20.0; // records per window batch

    let registry = Arc::new(obs::Registry::new());
    let o = obs::Obs::new(registry.clone());
    let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
    let scraper = Arc::new(obs::Scraper::new(registry.clone(), store.clone()));

    let hard = Arc::new(obs::AlertEngine::new(o.clone()));
    for rule in obs::alert::default_pack(RATE) {
        hard.add_rule(rule);
    }
    hard.add_rule(obs::AlertRule::threshold(
        "subscription_roll_lag_high",
        Selector::value("commgraph_subscription_roll_lag_seconds")
            .with_label("subscription", "tenant-a"),
        Op::Gt,
        600.0,
        1,
    ));

    let expr = Arc::new(obs::AlertEngine::new(o.clone()));
    for rule in obs::alert::query_pack(RATE).expect("pack expressions parse") {
        expr.add_rule(rule);
    }
    expr.add_rule(
        obs::AlertRule::query(
            "subscription_roll_lag_high",
            "commgraph_subscription_roll_lag_seconds{subscription=\"tenant-a\"} > 600",
        )
        .expect("twin expression parses")
        .with_for_ticks(1),
    );

    let mut front = ShardedEngine::new(ShardedConfig {
        obs: o,
        engine: EngineConfig { window_len: WINDOW_LEN, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    for w in 0..WINDOWS {
        front.ingest("tenant-a", &window_batch(w)).unwrap();
        let tick = w + 1;
        scraper.scrape(tick);
        hard.evaluate(tick, &store);
        expr.evaluate(tick, &store);
    }
    front.finish().unwrap();

    let strip = |e: &obs::AlertEngine| -> Vec<(u64, String, obs::AlertState, obs::AlertState)> {
        e.history().iter().map(|t| (t.tick, t.rule.clone(), t.from, t.to)).collect()
    };
    let hard_seq = strip(&hard);
    assert_eq!(hard_seq, strip(&expr), "expression twins walk the same transition sequence");
    assert!(
        hard_seq.iter().any(|(_, rule, _, to)| {
            rule == "subscription_roll_lag_high" && *to == obs::AlertState::Firing
        }),
        "the injected lag fault actually fires inside the compared sequence"
    );
}
