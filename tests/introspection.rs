//! The introspection contract, asserted end to end over real HTTP:
//!
//! 1. After one instrumented pipeline run (engine → pipeline → workbench →
//!    monitor → lint sweep), a single scrape of `/metrics` returns **every**
//!    family in the canonical `obs::names` table — nothing is registered
//!    lazily enough to be invisible to a dashboard that scrapes once.
//! 2. The flight recorder's Chrome trace-event export (the same bytes
//!    `/trace` serves and `bench_report` writes to `TRACE_PR8.json`) parses
//!    as JSON with at least one root `pipeline_run` span whose stage
//!    children nest correctly by both explicit parent id and time
//!    containment.
//! 3. The metrics-history endpoints (`/query`, `/alerts`, `/slo`) serve the
//!    scraped TSDB and the alert engine over the same HTTP pass.
//!
//! This test runs as its own process, so installing the global registry here
//! cannot leak into other tests.

use commgraph::analytics::engine::{EngineConfig, StreamEngine};
use commgraph::analytics::sharded::{ShardedConfig, ShardedEngine};
use commgraph::cloudsim::attack::{AttackKind, AttackScenario};
use commgraph::cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::linalg::Parallelism;
use commgraph::monitor::{MonitorConfig, SecurityMonitor};
use commgraph::obs;
use commgraph::pipeline::{Pipeline, PipelineConfig, WindowAnalyzer};
use commgraph::Workbench;
use serde_json::Value;
use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::sync::Arc;

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("introspection server reachable");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

/// Run every instrumented subsystem once so each canonical family has a
/// registration (values may be zero — presence is the contract).
fn exercise_everything(o: &obs::Obs, scraper: &Arc<obs::Scraper>, alerts: &Arc<obs::AlertEngine>) {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim =
        Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config()).unwrap();
    let records = sim.collect(8);
    let monitored: std::collections::HashSet<std::net::Ipv4Addr> =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();

    let mut root = o.trace_root("pipeline_run");
    root.attr("records", &records.len().to_string());

    let mut engine = StreamEngine::new(EngineConfig {
        workers: 2,
        monitored: Some(monitored.clone()),
        obs: o.clone(),
        ..Default::default()
    })
    .unwrap();
    for chunk in records.chunks(512) {
        engine.ingest(chunk).unwrap();
    }
    engine.finish().unwrap();

    // The sharded front door registers the per-subscription and per-shard
    // health families (records/watermark/roll-lag/residency) plus the
    // cardinality-cap overflow counter.
    let mut sharded = ShardedEngine::new(ShardedConfig {
        obs: o.clone(),
        engine: EngineConfig { workers: 2, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    let half = records.len() / 2;
    sharded.ingest("tenant-a", &records[..half]).unwrap();
    sharded.ingest("tenant-b", &records[half..]).unwrap();
    sharded.finish().unwrap();

    // Two 240 s windows over the 8-minute trace: the second is warm, so the
    // incremental analyzer records `commgraph_incremental_savings_seconds`
    // alongside the pipeline's dirty-node samples. Telemetry is attached,
    // so each analyzed window also advances one TSDB scrape tick and one
    // alert evaluation.
    let mut p = Pipeline::new(PipelineConfig {
        monitored: Some(monitored.clone()),
        obs: o.clone(),
        window_len: 240,
        ..Default::default()
    });
    p.ingest(&records);
    let out = p.finish().unwrap();
    let mut analyzer = WindowAnalyzer::new(monitored.clone(), true)
        .with_obs(o.clone())
        .with_subscription("tenant-a")
        .with_telemetry(scraper.clone(), alerts.clone());
    analyzer.analyze_output(&out, &records).unwrap();
    assert!(analyzer.tick() >= 2, "telemetry ticks advanced with the windows");

    // Parallelism 2 drives the par scheduler (tiles/busy families) and the
    // Louvain counters through the global registry installed by the caller.
    let mut wb = Workbench::new(records, monitored)
        .with_parallelism(Parallelism::new(2))
        .with_obs(o.clone());
    let _ = wb.roles();
    let _ = wb.segmentation();
    let _ = wb.policy();
    let _ = wb.pca_summary(&[1, 4]).unwrap();
    drop(root);

    // Monitor families (windows/violations/anomaly/baseline/roll-lag) need a
    // learn-then-enforce run with an attack that actually trips windows.
    let topo = preset.topology_scaled(0.3);
    let breached = topo
        .ip_of(topo.role_named("frontend").expect("preset has a frontend").id, 0)
        .expect("slot 0 exists");
    let sim_cfg = SimConfig {
        attacks: vec![AttackScenario {
            kind: AttackKind::LateralMovement,
            start_min: 25,
            duration_min: 15,
            breached,
            intensity: 6,
        }],
        ..preset.default_sim_config()
    };
    let mut sim = Simulator::new(topo, sim_cfg).unwrap();
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    let cfg = MonitorConfig {
        window_len: 600,
        learn_windows: 2,
        anomaly_k: 10,
        ..MonitorConfig::default()
    };
    let span = o.trace_root("monitor_run");
    let mut monitor = SecurityMonitor::with_obs(cfg, monitored, o.clone());
    sim.run(45, |_, batch| {
        let _ = monitor.ingest(batch);
    });
    let _ = monitor.flush();
    drop(span);
}

/// Record one lintcheck sweep into the registry so the lint families appear
/// in the scrape (mirrors what `bench_report` does).
fn record_lint_sweep(registry: &obs::Registry) {
    let cwd = std::env::current_dir().expect("cwd readable");
    let root = lintcheck::walk::find_root_above(&cwd).expect("test runs inside the workspace");
    let cfg = lintcheck::Config::for_workspace(root.clone());
    let baseline = match std::fs::read_to_string(root.join("lintcheck.baseline")) {
        Ok(text) => lintcheck::baseline::Baseline::parse(&text),
        Err(_) => lintcheck::baseline::Baseline::default(),
    };
    let t0 = std::time::Instant::now();
    let report = lintcheck::run(&cfg, &baseline).expect("workspace tree is readable");
    registry.histogram("commgraph_lint_sweep_seconds", "", &[]).record(t0.elapsed().as_secs_f64());
    registry.gauge("commgraph_lint_callgraph_nodes", "", &[]).set(report.callgraph_nodes as f64);
    registry.gauge("commgraph_lint_callgraph_edges", "", &[]).set(report.callgraph_edges as f64);
    for lint in lintcheck::LintId::all() {
        let count =
            report.fresh.iter().chain(report.baselined.iter()).filter(|f| f.lint == lint).count();
        registry
            .counter("commgraph_lint_findings_total", "", &[("lint", lint.name())])
            .add(count as u64);
    }
}

#[test]
fn one_scrape_serves_every_canonical_family_and_trace_nests() {
    let registry = Arc::new(obs::Registry::new());
    // First install wins; this test binary is its own process.
    obs::install_global(registry.clone());
    let tracer = Arc::new(obs::Tracer::new(4096));
    let o = obs::Obs::new(registry.clone()).with_tracer(tracer.clone());

    // Metrics history + alerting ride the same run: window rolls drive the
    // scrape ticks, and the default pack registers the alert families.
    let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
    let scraper = Arc::new(obs::Scraper::new(registry.clone(), store.clone()));
    let alerts = Arc::new(obs::AlertEngine::new(o.clone()));
    alerts.add_rules(commgraph::obs::alert::default_pack(1000.0));
    // A recording rule makes the query families part of the single-scrape
    // contract: `commgraph_query_rule_series_total` registers on install,
    // and the eval pass records `commgraph_query_rule_eval_seconds`.
    scraper.add_recording_rule(
        obs::RecordingRule::new(
            "subscription:records:rate2",
            "rate(commgraph_subscription_records_total[2])",
        )
        .expect("rule expression parses"),
    );

    exercise_everything(&o, &scraper, &alerts);
    record_lint_sweep(&registry);

    let server = obs::IntrospectionServer::new(registry.clone())
        .with_tracer(tracer.clone())
        .with_tsdb(store.clone())
        .with_alerts(alerts.clone())
        .start("127.0.0.1:0")
        .expect("bind an ephemeral port");
    let addr = server.addr();

    assert_eq!(http_get(addr, "/healthz").trim(), "ok");

    // One scrape must carry the whole canonical table. The request counter
    // is bumped before rendering, so even `commgraph_serve_requests_total`
    // appears in its own first scrape.
    let metrics = http_get(addr, "/metrics");
    let missing: Vec<&str> = obs::names::METRICS
        .iter()
        .map(|def| def.name)
        .filter(|name| !metrics.contains(&format!("# TYPE {name} ")))
        .collect();
    assert!(missing.is_empty(), "families absent from a single /metrics scrape: {missing:?}");

    // The JSON snapshot endpoint parses and carries the same families.
    let snapshot: Value =
        serde_json::from_str(&http_get(addr, "/metrics.json")).expect("valid JSON snapshot");
    let listed = snapshot["metrics"].as_array().expect("metrics array");
    assert!(listed.len() >= obs::names::METRICS.len(), "snapshot lists every family");

    // The metrics-history endpoints serve in the same HTTP pass: `/query`
    // returns the scraped per-tick history of a canonical family, filtered
    // down by label matcher and field…
    let query: Value = serde_json::from_str(&http_get(
        addr,
        "/query?name=commgraph_ingest_watermark_seconds&label.source=pipeline&field=value",
    ))
    .expect("valid /query JSON");
    let series = query["series"].as_array().expect("series array");
    assert_eq!(series.len(), 1, "one matching series");
    let points = series[0]["points"].as_array().expect("points array");
    assert!(!points.is_empty(), "window-roll ticks scraped history");
    assert_eq!(points[0][0].as_u64(), Some(1), "ticks are logical, starting at 1");

    // …`/alerts` carries the evaluated rule states and transition log…
    let alerts_doc: Value =
        serde_json::from_str(&http_get(addr, "/alerts")).expect("valid /alerts JSON");
    let listed = alerts_doc["alerts"].as_array().expect("alerts array");
    assert_eq!(
        listed.len(),
        commgraph::obs::alert::default_pack(1000.0).len(),
        "every default-pack rule reports a state"
    );
    assert!(listed.iter().all(|a| a["state"].as_str().is_some()));

    // …and `/slo` exposes the burn-rate picture of the SLO-backed rules.
    let slo_doc: Value = serde_json::from_str(&http_get(addr, "/slo")).expect("valid /slo JSON");
    assert!(!slo_doc["slos"].as_array().expect("slos array").is_empty());

    // `/trace` serves the same Chrome trace-event document bench_report
    // writes to TRACE_PR8.json. Validate the acceptance-criterion shape.
    let trace = http_get(addr, "/trace");
    server.shutdown();
    let doc: Value = serde_json::from_str(&trace).expect("valid Chrome trace JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let complete: Vec<&Value> = events.iter().filter(|e| e["ph"].as_str() == Some("X")).collect();
    assert!(!complete.is_empty(), "flight recorder retained spans");

    // ≥ one root span per run, named for the run.
    let root = complete
        .iter()
        .find(|e| {
            e["name"].as_str() == Some("pipeline_run")
                && e["args"]["parent_id"].as_str() == Some("")
        })
        .expect("a root pipeline_run span with no parent");
    let root_id = root["args"]["span_id"].as_str().expect("span id").to_string();
    let root_ts = root["ts"].as_u64().unwrap();
    let root_end = root_ts + root["dur"].as_u64().unwrap();

    // Stage children hang off the root by explicit parent id…
    let children: Vec<&&Value> = complete
        .iter()
        .filter(|e| e["args"]["parent_id"].as_str() == Some(root_id.as_str()))
        .collect();
    let child_names: std::collections::BTreeSet<&str> =
        children.iter().filter_map(|e| e["name"].as_str()).collect();
    for stage in ["ingest", "build", "similarity", "cluster", "policy"] {
        assert!(child_names.contains(stage), "missing stage child {stage}: {child_names:?}");
    }
    // …and nest inside it by time containment (what Perfetto renders).
    for child in &children {
        let ts = child["ts"].as_u64().unwrap();
        let end = ts + child["dur"].as_u64().unwrap();
        assert!(
            root_ts <= ts && end <= root_end + 1,
            "{} [{ts}, {end}] escapes pipeline_run [{root_ts}, {root_end}]",
            child["name"]
        );
    }

    // The monitor run contributes its own root with window children.
    let mon = complete
        .iter()
        .find(|e| {
            e["name"].as_str() == Some("monitor_run") && e["args"]["parent_id"].as_str() == Some("")
        })
        .expect("a root monitor_run span");
    let mon_id = mon["args"]["span_id"].as_str().unwrap();
    assert!(
        complete.iter().any(|e| e["name"].as_str() == Some("monitor_window")
            && e["args"]["parent_id"].as_str() == Some(mon_id)),
        "monitor windows nest under monitor_run"
    );
}

/// `/query_range` is replay-stable: two fully independent runs of the same
/// seeded workload — separate registries, stores, scrapers, servers, ports —
/// serve **byte-identical** bodies over real HTTP for the same expression,
/// including the synthetic series a recording rule wrote back per tick.
#[test]
fn query_range_serves_byte_identical_documents_across_same_seed_runs() {
    fn run_once() -> (String, String) {
        let registry = Arc::new(obs::Registry::new());
        let o = obs::Obs::new(registry.clone());
        let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
        let scraper = Arc::new(obs::Scraper::new(registry.clone(), store.clone()));
        scraper.add_recording_rule(
            obs::RecordingRule::new(
                "subscription:records:rate2",
                "rate(commgraph_subscription_records_total[2])",
            )
            .expect("rule expression parses"),
        );

        let preset = ClusterPreset::MicroserviceBench;
        let mut sim =
            Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config()).unwrap();
        let records = sim.collect(8);
        let mut sharded = ShardedEngine::new(ShardedConfig {
            obs: o,
            engine: EngineConfig { workers: 2, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
        let mut tick = 0;
        for chunk in records.chunks(512) {
            sharded.ingest("tenant-a", chunk).unwrap();
            tick += 1;
            scraper.scrape(tick);
        }
        sharded.finish().unwrap();

        let server = obs::IntrospectionServer::new(registry)
            .with_tsdb(store)
            .start("127.0.0.1:0")
            .expect("bind an ephemeral port");
        let addr = server.addr();
        // rate over the raw counter, percent-encoded; and the recording
        // rule's synthetic series read back as a plain selector.
        let raw = http_get(
            addr,
            "/query_range?expr=rate(commgraph_subscription_records_total%7B\
             subscription%3D%22tenant-a%22%7D%5B2%5D)&step=1",
        );
        let recorded = http_get(addr, "/query_range?expr=subscription%3Arecords%3Arate2");
        server.shutdown();
        (raw, recorded)
    }

    let (raw_a, rec_a) = run_once();
    let (raw_b, rec_b) = run_once();
    assert_eq!(raw_a, raw_b, "raw-counter rate query replays byte-identically");
    assert_eq!(rec_a, rec_b, "recording-rule series query replays byte-identically");

    let doc: Value = serde_json::from_str(&raw_a).expect("valid /query_range JSON");
    let series = doc["series"].as_array().expect("series array");
    assert!(!series.is_empty(), "the seeded workload produced a rate series");
    let rec_doc: Value = serde_json::from_str(&rec_a).expect("valid recorded-series JSON");
    assert!(
        !rec_doc["series"].as_array().expect("series array").is_empty(),
        "the recording rule wrote ticks the range query reads back"
    );
}
