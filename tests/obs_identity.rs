//! Instrumentation must be a pure observer: running the whole pipeline with
//! a live `obs::Registry` attached must produce results bit-for-bit
//! identical to the uninstrumented run. Floats are compared via `to_bits`,
//! so even a last-ulp drift (e.g. from a reordered reduction) fails.

use commgraph::analytics::engine::{EngineConfig, StreamEngine};
use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::flowlog::record::ConnSummary;
use commgraph::obs::{Obs, Registry};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use commgraph::Workbench;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn fixture() -> (Vec<ConnSummary>, HashSet<Ipv4Addr>) {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim =
        Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config()).unwrap();
    let records = sim.collect(8);
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    (records, monitored)
}

/// Everything the pipeline computes, reduced to exactly comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    engine_graphs: Vec<(u64, usize, usize, u64, u64)>,
    engine_kept: u64,
    pipeline_windows: Vec<(u64, usize, usize, u64)>,
    rate_bits: u64,
    role_labels: Vec<usize>,
    n_roles: usize,
    segments: usize,
    policy_rules: usize,
    pca_err_bits: Vec<u64>,
}

fn run(obs: Obs, records: &[ConnSummary], monitored: &HashSet<Ipv4Addr>) -> Fingerprint {
    let mut engine = StreamEngine::new(EngineConfig {
        workers: 3,
        monitored: Some(monitored.clone()),
        obs: obs.clone(),
        ..Default::default()
    })
    .unwrap();
    for chunk in records.chunks(777) {
        engine.ingest(chunk).unwrap();
    }
    let (graphs, stats) = engine.finish().unwrap();
    let engine_graphs = graphs
        .iter()
        .map(|g| {
            (g.window_start(), g.node_count(), g.edge_count(), g.totals().bytes(), g.totals().conns)
        })
        .collect();

    let mut p = Pipeline::new(PipelineConfig {
        monitored: Some(monitored.clone()),
        obs: obs.clone(),
        ..Default::default()
    });
    p.ingest(records);
    let out = p.finish().unwrap();
    let pipeline_windows = out
        .sequence
        .graphs()
        .iter()
        .map(|g| (g.window_start(), g.node_count(), g.edge_count(), g.totals().bytes()))
        .collect();
    let rate_bits = out.mean_records_per_minute().to_bits();

    let mut wb = Workbench::new(records.to_vec(), monitored.clone()).with_obs(obs);
    let roles = wb.roles().clone();
    let segments = wb.segmentation().len();
    let policy_rules = wb.policy().rule_count();
    let pca = wb.pca_summary(&[1, 4, 8]).unwrap();
    let pca_err_bits = pca.errors.iter().map(|e| e.err.to_bits()).collect();

    Fingerprint {
        engine_graphs,
        engine_kept: stats.records_kept,
        pipeline_windows,
        rate_bits,
        role_labels: roles.labels,
        n_roles: roles.n_roles,
        segments,
        policy_rules,
        pca_err_bits,
    }
}

#[test]
fn instrumented_run_is_bit_for_bit_identical() {
    let (records, monitored) = fixture();

    let plain = run(Obs::noop(), &records, &monitored);

    let registry = Arc::new(Registry::new());
    let observed = run(Obs::new(registry.clone()), &records, &monitored);

    assert_eq!(plain, observed, "observability must never change results");

    // And the registry really was live — this is not a vacuous comparison.
    let ingest = registry.histogram(commgraph::obs::STAGE_SECONDS, "", &[("stage", "ingest")]);
    assert!(ingest.count() > 0, "instrumented run recorded stage spans");
    assert!(
        registry.counter("commgraph_engine_records_in_total", "", &[]).get() > 0,
        "instrumented run counted engine records"
    );
}
