//! Instrumentation must be a pure observer: running the whole pipeline with
//! a live `obs::Registry` attached must produce results bit-for-bit
//! identical to the uninstrumented run. Floats are compared via `to_bits`,
//! so even a last-ulp drift (e.g. from a reordered reduction) fails.

use commgraph::analytics::engine::{EngineConfig, StreamEngine};
use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::flowlog::record::ConnSummary;
use commgraph::obs::{Obs, Registry};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use commgraph::Workbench;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn fixture() -> (Vec<ConnSummary>, HashSet<Ipv4Addr>) {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim =
        Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config()).unwrap();
    let records = sim.collect(8);
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    (records, monitored)
}

/// Everything the pipeline computes, reduced to exactly comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    engine_graphs: Vec<(u64, usize, usize, u64, u64)>,
    engine_kept: u64,
    pipeline_windows: Vec<(u64, usize, usize, u64)>,
    rate_bits: u64,
    role_labels: Vec<usize>,
    n_roles: usize,
    segments: usize,
    policy_rules: usize,
    pca_err_bits: Vec<u64>,
}

fn run(obs: Obs, records: &[ConnSummary], monitored: &HashSet<Ipv4Addr>) -> Fingerprint {
    let mut engine = StreamEngine::new(EngineConfig {
        workers: 3,
        monitored: Some(monitored.clone()),
        obs: obs.clone(),
        ..Default::default()
    })
    .unwrap();
    for chunk in records.chunks(777) {
        engine.ingest(chunk).unwrap();
    }
    let (graphs, stats) = engine.finish().unwrap();
    let engine_graphs = graphs
        .iter()
        .map(|g| {
            (g.window_start(), g.node_count(), g.edge_count(), g.totals().bytes(), g.totals().conns)
        })
        .collect();

    let mut p = Pipeline::new(PipelineConfig {
        monitored: Some(monitored.clone()),
        obs: obs.clone(),
        ..Default::default()
    });
    p.ingest(records);
    let out = p.finish().unwrap();
    let pipeline_windows = out
        .sequence
        .graphs()
        .iter()
        .map(|g| (g.window_start(), g.node_count(), g.edge_count(), g.totals().bytes()))
        .collect();
    let rate_bits = out.mean_records_per_minute().to_bits();

    let mut wb = Workbench::new(records.to_vec(), monitored.clone()).with_obs(obs);
    let roles = wb.roles().clone();
    let segments = wb.segmentation().len();
    let policy_rules = wb.policy().rule_count();
    let pca = wb.pca_summary(&[1, 4, 8]).unwrap();
    let pca_err_bits = pca.errors.iter().map(|e| e.err.to_bits()).collect();

    Fingerprint {
        engine_graphs,
        engine_kept: stats.records_kept,
        pipeline_windows,
        rate_bits,
        role_labels: roles.labels,
        n_roles: roles.n_roles,
        segments,
        policy_rules,
        pca_err_bits,
    }
}

#[test]
fn instrumented_run_is_bit_for_bit_identical() {
    let (records, monitored) = fixture();

    let plain = run(Obs::noop(), &records, &monitored);

    let registry = Arc::new(Registry::new());
    let observed = run(Obs::new(registry.clone()), &records, &monitored);

    assert_eq!(plain, observed, "observability must never change results");

    // And the registry really was live — this is not a vacuous comparison.
    let ingest = registry.histogram(commgraph::obs::STAGE_SECONDS, "", &[("stage", "ingest")]);
    assert!(ingest.count() > 0, "instrumented run recorded stage spans");
    assert!(
        registry.counter("commgraph_engine_records_in_total", "", &[]).get() > 0,
        "instrumented run counted engine records"
    );

    // Third run: metrics AND the hierarchical tracer + flight recorder
    // attached. Same guarantee — spans are pure observers too.
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(commgraph::obs::Tracer::new(8192));
    let traced_obs = Obs::new(registry).with_tracer(tracer.clone());
    let root = traced_obs.trace_root("pipeline_run");
    let traced = run(traced_obs.clone(), &records, &monitored);
    drop(root);
    assert_eq!(plain, traced, "tracing must never change results");

    // The recorder really recorded, and every retained child's parent
    // resolves inside the dump (capacity 8192 was not exceeded).
    let dump = tracer.dump();
    assert!(dump.spans.len() > 1, "flight recorder retained the run's spans");
    assert_eq!(dump.dropped, 0, "fixture fits the ring");
    assert_eq!(dump.open_spans, 0, "every span closed");
    let ids: std::collections::HashSet<u64> = dump.spans.iter().map(|s| s.id).collect();
    for s in &dump.spans {
        if let Some(p) = s.parent {
            assert!(ids.contains(&p), "span {} has unresolvable parent {p}", s.name);
        }
    }
    assert!(
        dump.spans.iter().any(|s| s.name == "pipeline_run" && s.parent.is_none()),
        "the run root is retained as a root"
    );
}

/// Without a tracer, trace context costs one branch and never reads the
/// clock: spans come back disabled, attrs and events are no-ops, and
/// `finish` reports exactly 0.0.
#[test]
fn disabled_trace_context_is_inert() {
    let o = Obs::noop();
    assert!(o.tracer().is_none());
    let mut span = o.trace_span("anything");
    assert!(!span.is_enabled());
    span.attr("key", "value");
    span.add_event("event", &[("k", "v".to_string())]);
    let root = o.trace_root("root");
    assert!(!root.is_enabled());
    assert_eq!(span.finish(), 0.0, "noop finish never reads the clock");
    assert_eq!(root.finish(), 0.0);

    // A registry alone (metrics, no tracer) also yields disabled spans.
    let metrics_only = Obs::new(Arc::new(Registry::new()));
    assert!(metrics_only.tracer().is_none());
    assert!(!metrics_only.trace_span("stage").is_enabled());
}
