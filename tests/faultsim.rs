//! Distributed-failure simulation contracts, end to end: `cloudsim::net`
//! delivering into the sharded analytics front door and the core pipeline.
//!
//! Every test here runs its scenario **twice with the same seed** and
//! asserts byte-identical outcomes — the fault simulator's whole value is
//! that a failure is replayable. The clean-network run is additionally
//! pinned to be bit-identical to direct in-process ingest, and each shipped
//! fault script (crash + restart, delayed flush, duplicate delivery, clock
//! skew, partition/heal) asserts its *exact* late-record, dedup-drop,
//! watermark-lag, and alert-transition outcomes.

use commgraph::analytics::engine::EngineConfig;
use commgraph::analytics::sharded::{ShardedConfig, ShardedEngine};
use commgraph::cloudsim::net::{scripts, FaultScript, NetConfig, NetSim, NetStats};
use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::flowlog::record::{ConnSummary, FlowKey};
use commgraph::graph::{CommGraph, EdgeStats, NodeId};
use commgraph::obs;
use commgraph::obs::alert::{Op, Selector};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;

const WINDOW_LEN: u64 = 3600;

/// Per-window structural identity: window start, nodes, sorted edges.
type Fingerprint = Vec<(u64, Vec<NodeId>, Vec<(u32, u32, EdgeStats)>)>;

fn fingerprint(graphs: &[CommGraph]) -> Fingerprint {
    graphs
        .iter()
        .map(|g| {
            let mut edges = Vec::new();
            for i in 0..g.node_count() as u32 {
                for (j, st) in g.neighbors(i) {
                    if i <= *j {
                        edges.push((i, *j, *st));
                    }
                }
            }
            edges.sort_by_key(|&(i, j, _)| (i, j));
            (g.window_start(), g.nodes().to_vec(), edges)
        })
        .collect()
}

/// Everything a run produced, minus wall-clock noise (`elapsed_secs`).
type RunResult = Vec<(String, u64, u64, usize, Fingerprint)>;

fn finish(front: ShardedEngine) -> RunResult {
    let (reports, _) = front.finish().expect("front door finishes");
    reports
        .into_iter()
        .map(|r| {
            (
                r.subscription,
                r.stats.records_in,
                r.stats.records_kept,
                r.stats.edge_entries,
                fingerprint(&r.graphs),
            )
        })
        .collect()
}

fn front_door() -> ShardedEngine {
    ShardedEngine::new(ShardedConfig {
        engine: EngineConfig { window_len: WINDOW_LEN, ..Default::default() },
        ..Default::default()
    })
    .expect("valid front-door config")
}

fn host(d: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, d)
}

/// One record reported by `h`'s vantage toward a shared server.
fn rec(h: Ipv4Addr, ts: u64) -> ConnSummary {
    ConnSummary {
        ts,
        key: FlowKey::tcp(h, 40_000, Ipv4Addr::new(10, 0, 9, 9), 443),
        pkts_sent: 4,
        pkts_rcvd: 3,
        bytes_sent: 900,
        bytes_rcvd: 120,
    }
}

/// Feed every delivery into the seam; returns records accepted vs deduped.
fn deliver_into(
    net: &mut NetSim,
    front: &mut ShardedEngine,
    ticks: u64,
    batch: impl Fn(u64) -> Vec<ConnSummary>,
) -> (u64, u64) {
    let (mut accepted, mut deduped) = (0u64, 0u64);
    let mut sink = |front: &mut ShardedEngine, d: &commgraph::cloudsim::net::Delivery| {
        let fresh = front
            .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
            .expect("seam ingest succeeds");
        if fresh {
            accepted += d.records.len() as u64;
        } else {
            deduped += d.records.len() as u64;
        }
    };
    for t in 0..ticks {
        net.offer(&batch(t));
        net.step(|d| sink(front, d));
    }
    net.drain(|d| sink(front, d));
    (accepted, deduped)
}

/// A clean network must be invisible: routing a simulated workload through
/// per-host agents and the delivery fabric yields per-subscription reports
/// bit-identical to handing the same batches straight to the engine.
#[test]
fn clean_network_is_bit_identical_to_direct_ingest() {
    let preset = ClusterPreset::MicroserviceBench;
    let minutes = 6;
    let simulator = || {
        Simulator::new(preset.topology_scaled(0.1), preset.default_sim_config())
            .expect("valid preset")
    };

    let mut direct_front = front_door();
    simulator().run(minutes, |_, batch| {
        direct_front.ingest("tenant-a", batch).expect("direct ingest succeeds");
    });

    let mut net = NetSim::new(NetConfig::clean(), FaultScript::new()).expect("valid net config");
    let mut net_front = front_door();
    let mut batches = Vec::new();
    simulator().run(minutes, |_, batch| batches.push(batch.to_vec()));
    let (accepted, deduped) =
        deliver_into(&mut net, &mut net_front, minutes, |t| batches[t as usize].clone());

    let stats = net.stats().clone();
    assert_eq!(stats.offered_records, stats.delivered_records, "a clean network loses nothing");
    assert_eq!(stats.dropped_packets, 0);
    assert_eq!(stats.duplicated_packets, 0);
    assert_eq!(stats.reordered_packets, 0);
    assert_eq!(accepted, stats.offered_records);
    assert_eq!(deduped, 0, "nothing to dedup on a clean network");
    assert_eq!(finish(net_front), finish(direct_front), "delivery fabric is invisible when clean");
}

/// Crash losing the buffer: the exact unflushed + offered-while-down records
/// are lost, everything else arrives, and two same-seed runs agree byte for
/// byte.
#[test]
fn crash_lose_drops_exactly_the_unflushed_records() {
    let run = || {
        let cfg = NetConfig { flush_every: 2, ..NetConfig::clean() };
        let mut net = NetSim::new(cfg, scripts::crash_lose(host(1), 2)).expect("valid net config");
        let mut front = front_door();
        let counts = deliver_into(&mut net, &mut front, 8, |t| {
            vec![rec(host(1), t * 60), rec(host(3), t * 60)]
        });
        (net.stats().clone(), counts, finish(front))
    };
    let (stats, (accepted, deduped), reports) = run();
    // Host 1 flushes tick 0; the crash at tick 2 eats its tick-1 and tick-2
    // buffer; tick 3's offer lands on a dead agent; it restarts at tick 4.
    assert_eq!(stats.lost_at_agent_records, 3, "buffer of 2 plus 1 offered while down");
    assert_eq!(stats.delivered_records, 13, "16 offered minus the 3 lost");
    assert_eq!(stats.replayed_packets, 0, "lose-mode restart re-sends nothing");
    assert_eq!(accepted, 13);
    assert_eq!(deduped, 0);
    assert_eq!(run(), (stats, (accepted, deduped), reports), "same seed, same bytes");
}

/// Crash with replay: the restarted agent re-sends its last flushed packet,
/// the seam's sequence dedup discards exactly that packet, and the reports
/// equal the lose-mode run (the surviving record multiset is identical).
#[test]
fn crash_replay_is_discarded_by_the_seam_dedup() {
    let cfg = NetConfig { flush_every: 2, ..NetConfig::clean() };
    let batch = |t: u64| vec![rec(host(1), t * 60), rec(host(3), t * 60)];

    let mut lose_net =
        NetSim::new(cfg.clone(), scripts::crash_lose(host(1), 2)).expect("valid net config");
    let mut lose_front = front_door();
    deliver_into(&mut lose_net, &mut lose_front, 8, batch);

    let run = || {
        let mut net =
            NetSim::new(cfg.clone(), scripts::crash_replay(host(1), 2)).expect("valid net config");
        let mut front = front_door();
        let counts = deliver_into(&mut net, &mut front, 8, batch);
        (net.stats().clone(), counts, finish(front))
    };
    let (stats, (accepted, deduped), reports) = run();
    assert_eq!(stats.replayed_packets, 1, "exactly the last flush is re-sent");
    assert_eq!(stats.delivered_records, 14, "13 surviving records plus the 1-record replay");
    assert_eq!(accepted, 13);
    assert_eq!(deduped, 1, "the seam discards the whole replayed packet");
    assert_eq!(reports, finish(lose_front), "replay is invisible past the dedup seam");
    assert_eq!(run(), (stats, (accepted, deduped), reports), "same seed, same bytes");
}

/// Delayed flush: holding one host's flushes across two window boundaries
/// produces an exact roll-lag alert firing sequence, exactly one late
/// record, and exactly one dropped-behind-window record at the core
/// pipeline — twice, byte-identically.
#[test]
fn delayed_flush_asserts_lateness_and_alert_transitions() {
    type Outcome = (Vec<(u64, String, String)>, u64, u64, u64, NetStats, RunResult);
    let run = || -> Outcome {
        let registry = Arc::new(obs::Registry::new());
        let o = obs::Obs::new(registry.clone());
        let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
        let scraper = obs::Scraper::new(registry.clone(), store.clone());
        let alerts = obs::AlertEngine::new(o.clone());
        alerts.add_rule(obs::AlertRule::threshold(
            "subscription_roll_lag_high",
            Selector::value("commgraph_subscription_roll_lag_seconds")
                .with_label("subscription", "tenant-a"),
            Op::Gt,
            600.0,
            1,
        ));

        let mut front = ShardedEngine::new(ShardedConfig {
            obs: o.clone(),
            engine: EngineConfig { window_len: WINDOW_LEN, ..Default::default() },
            ..Default::default()
        })
        .expect("valid front-door config");
        let mut pipeline = Pipeline::new(PipelineConfig {
            obs: o.clone(),
            window_len: WINDOW_LEN,
            ..Default::default()
        });

        // One window per tick. Host 1 normally opens each window 10 s in,
        // host 3 lands 1 200 s in; the script stalls host 1 over windows 3-4,
        // so those windows are opened by host 3's late-in-window record.
        let script = FaultScript::parse("at 3 delay 10.0.0.1 for 2").expect("valid script");
        let mut net = NetSim::new(NetConfig::clean(), script).expect("valid net config");
        for t in 0..8u64 {
            net.offer(&[rec(host(1), t * WINDOW_LEN + 10), rec(host(3), t * WINDOW_LEN + 1200)]);
            net.step(|d| {
                front
                    .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
                    .expect("seam ingest succeeds");
                pipeline.ingest(&d.records);
            });
            scraper.scrape(t + 1);
            alerts.evaluate(t + 1, &store);
        }
        net.drain(|_| {});

        let transitions = alerts
            .history()
            .into_iter()
            .map(|t| (t.tick, t.from.as_str().to_string(), t.to.as_str().to_string()))
            .collect();
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        let dropped =
            registry.counter("commgraph_pipeline_dropped_late_records_total", "", &[]).get();
        let out = pipeline.finish().expect("pipeline finishes");
        (transitions, late, dropped, out.total_records, net.stats().clone(), finish(front))
    };

    let (transitions, late, dropped, total, stats, reports) = run();
    let t = |tick, from: &str, to: &str| (tick, from.to_string(), to.to_string());
    assert_eq!(
        transitions,
        vec![
            t(4, "inactive", "pending"),
            t(5, "pending", "firing"),
            t(6, "firing", "resolved"),
            t(7, "resolved", "inactive"),
        ],
        "the exact roll-lag firing sequence of the stalled host"
    );
    // The backlog flushes at tick 5: the window-3 record is behind the
    // by-then-current window 4 (a drop), the window-4 record is merely
    // behind the watermark (late), the window-5 record is on time.
    assert_eq!(late, 1, "exactly the backlog record whose window is still open");
    assert_eq!(dropped, 1, "exactly the backlog record whose window already closed");
    assert_eq!(total, 16, "a stall delays records, it never loses them");
    assert_eq!(stats.delivered_records, stats.offered_records);
    assert_eq!(run(), (transitions, late, dropped, total, stats, reports), "same seed, same bytes");
}

/// Duplicate delivery at rate 1.0: every packet arrives twice, the seam
/// discards exactly half the delivered records, and the reports equal a
/// clean run's.
#[test]
fn duplicate_delivery_is_invisible_through_the_seam() {
    let batch = |t: u64| vec![rec(host(1), t * 60), rec(host(3), t * 60)];

    let mut clean_net =
        NetSim::new(NetConfig::clean(), FaultScript::new()).expect("valid net config");
    let mut clean_front = front_door();
    deliver_into(&mut clean_net, &mut clean_front, 8, batch);

    let run = || {
        let cfg = NetConfig { duplicate_rate: 1.0, ..NetConfig::clean() };
        let mut net = NetSim::new(cfg, FaultScript::new()).expect("valid net config");
        let mut front = front_door();
        let counts = deliver_into(&mut net, &mut front, 8, batch);
        (net.stats().clone(), counts, finish(front))
    };
    let (stats, (accepted, deduped), reports) = run();
    assert_eq!(stats.duplicated_packets, 16, "every one of the 16 flushes is doubled");
    assert_eq!(stats.delivered_records, 32);
    assert_eq!(accepted, 16);
    assert_eq!(deduped, 16, "the seam discards exactly the duplicate copies");
    assert_eq!(reports, finish(clean_front), "duplication is invisible past the seam");
    assert_eq!(run(), (stats, (accepted, deduped), reports), "same seed, same bytes");
}

/// Clock skew: a host whose clock falls one full window behind produces
/// records whose windows have already closed — counted as dropped-late by
/// the core pipeline, never as merely late, in exact numbers.
#[test]
fn clock_skew_drops_exactly_the_behind_window_records() {
    let run = || {
        let registry = Arc::new(obs::Registry::new());
        let o = obs::Obs::new(registry.clone());
        let mut pipeline =
            Pipeline::new(PipelineConfig { obs: o, window_len: WINDOW_LEN, ..Default::default() });
        // Skew at tick 6: window 1 (3600 s) is already open, so every
        // post-skew offer from host 1 lands a full window in the past.
        let script = FaultScript::parse("at 6 skew 10.0.0.1 -3600").expect("valid script");
        let mut net = NetSim::new(NetConfig::clean(), script).expect("valid net config");
        for t in 0..12u64 {
            net.offer(&[rec(host(1), t * 600), rec(host(3), t * 600)]);
            net.step(|d| pipeline.ingest(&d.records));
        }
        net.drain(|_| {});
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        let dropped =
            registry.counter("commgraph_pipeline_dropped_late_records_total", "", &[]).get();
        let out = pipeline.finish().expect("pipeline finishes");
        let shape: Vec<(u64, usize)> =
            out.sequence.graphs().iter().map(|g| (g.window_start(), g.node_count())).collect();
        (late, dropped, out.total_records, shape, net.stats().clone())
    };
    let (late, dropped, total, shape, stats) = run();
    // Skew lands at tick 6 (offers at tick 6 precede it), so ticks 7-11 put
    // host 1's records a full window in the past while host 3 keeps the
    // current window open.
    assert_eq!(dropped, 5, "every post-skew record of host 1 is behind the closed window");
    assert_eq!(late, 0, "a behind-window drop is never double-counted as late");
    assert_eq!(total, 24);
    assert_eq!(stats.delivered_records, stats.offered_records, "skew rewrites, it never loses");
    assert_eq!(run(), (late, dropped, total, shape, stats), "same seed, same bytes");
}

/// Partition/heal: partitioned hosts hold their flushes and release the
/// whole backlog on heal — nothing is lost, and the reports equal a clean
/// run's because the surviving multiset is identical.
#[test]
fn partition_heals_without_losing_records() {
    let batch = |t: u64| vec![rec(host(1), t * 60), rec(host(3), t * 60), rec(host(5), t * 60)];

    let mut clean_net =
        NetSim::new(NetConfig::clean(), FaultScript::new()).expect("valid net config");
    let mut clean_front = front_door();
    deliver_into(&mut clean_net, &mut clean_front, 8, batch);

    let run = || {
        let script =
            FaultScript::parse("at 1 partition 10.0.0.1,10.0.0.3 for 3").expect("valid script");
        let mut net = NetSim::new(NetConfig::clean(), script).expect("valid net config");
        let mut front = front_door();
        let counts = deliver_into(&mut net, &mut front, 8, batch);
        (net.stats().clone(), counts, finish(front))
    };
    let (stats, (accepted, deduped), reports) = run();
    assert_eq!(stats.delivered_records, stats.offered_records, "a partition delays, never loses");
    assert_eq!(stats.lost_at_agent_records, 0);
    assert_eq!(accepted, 24);
    assert_eq!(deduped, 0);
    assert_eq!(reports, finish(clean_front), "healed partition is invisible in the reports");
    assert_eq!(run(), (stats, (accepted, deduped), reports), "same seed, same bytes");
}

/// A workload whose flows vary across ticks, so graphs are shape-sensitive.
fn property_batch(t: u64) -> Vec<ConnSummary> {
    (1u8..=3)
        .map(|h| ConnSummary {
            ts: t * 300,
            key: FlowKey::tcp(host(h), 40_000 + t as u16, Ipv4Addr::new(10, 0, 9, h), 443),
            pkts_sent: 2 + t,
            pkts_rcvd: 1,
            bytes_sent: 1_000 + 13 * t,
            bytes_rcvd: 77,
        })
        .collect()
}

fn sharded_at(shards: usize) -> ShardedEngine {
    ShardedEngine::new(ShardedConfig {
        shards,
        engine: EngineConfig { window_len: WINDOW_LEN, ..Default::default() },
        ..Default::default()
    })
    .expect("valid front-door config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delivery equivalence: for any lossy, duplicating, reordering network,
    /// the seam-deduped reports equal an in-order, single-delivery ingest of
    /// the surviving record multiset — at 1, 2, and 4 shards alike.
    #[test]
    fn lossy_delivery_is_equivalent_to_in_order_ingest_of_survivors(
        seed in 0u64..500,
        drop_rate in 0.0f64..0.6,
        duplicate_rate in 0.0f64..0.6,
        latency_lo in 0u64..3,
        latency_spread in 0u64..4,
        flush_every in 1u64..4,
    ) {
        let cfg = NetConfig {
            seed,
            latency_ticks: (latency_lo, latency_lo + latency_spread),
            drop_rate,
            duplicate_rate,
            flush_every,
        };
        let mut net = NetSim::new(cfg, FaultScript::new()).expect("valid net config");
        let mut lossy: Vec<ShardedEngine> = [1, 2, 4].map(sharded_at).into_iter().collect();
        let mut survivors: Vec<(Ipv4Addr, u64, Vec<ConnSummary>)> = Vec::new();
        let sink = |lossy: &mut Vec<ShardedEngine>,
                        survivors: &mut Vec<(Ipv4Addr, u64, Vec<ConnSummary>)>,
                        d: &commgraph::cloudsim::net::Delivery| {
            let fresh: Vec<bool> = lossy
                .iter_mut()
                .map(|f| {
                    f.ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
                        .expect("seam ingest succeeds")
                })
                .collect();
            assert!(fresh.iter().all(|&f| f == fresh[0]), "dedup verdicts agree across shards");
            if fresh[0] {
                survivors.push((d.source, d.seq, d.records.clone()));
            }
        };
        for t in 0..12u64 {
            net.offer(&property_batch(t));
            net.step(|d| sink(&mut lossy, &mut survivors, d));
        }
        net.drain(|d| sink(&mut lossy, &mut survivors, d));

        // The oracle: the surviving batches, re-delivered once each in
        // per-source send order, through the plain (unsequenced) door.
        survivors.sort_by_key(|s| (s.0, s.1));
        for (shards, lossy_front) in [1usize, 2, 4].into_iter().zip(lossy) {
            let mut oracle = sharded_at(shards);
            for (_, _, records) in &survivors {
                oracle.ingest("tenant-a", records).expect("oracle ingest succeeds");
            }
            prop_assert_eq!(
                finish(lossy_front),
                finish(oracle),
                "shard count {} diverged from in-order ingest",
                shards
            );
        }
    }
}
