//! Figure 7 end-to-end: route simulated traffic through per-VM smartNIC
//! flow tables + host agents, and verify that the telemetry coming out of
//! the NIC path builds the same communication graph as the direct records.

use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::flowlog::nic::{Direction, HostAgent};
use commgraph::flowlog::record::ConnSummary;
use commgraph::graph::{Facet, GraphBuilder};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Replay each record as TX/RX packet observations on the reporting VM's
/// NIC, pull agents every minute, and collect the re-aggregated summaries.
fn through_nic_path(records: &[ConnSummary], capacity: usize) -> Vec<ConnSummary> {
    let mut agents: HashMap<Ipv4Addr, HostAgent> = HashMap::new();
    let mut out = Vec::new();
    let mut last_minute = 0;
    for r in records {
        // Poll all agents when the clock advances to a new minute.
        if r.ts > last_minute {
            for agent in agents.values_mut() {
                out.extend(agent.poll(r.ts));
            }
            last_minute = r.ts;
        }
        let agent =
            agents.entry(r.key.local_ip).or_insert_with(|| HostAgent::new(capacity, 60, 600));
        if r.pkts_sent > 0 {
            agent.observe(r.ts, r.key, Direction::Tx, r.pkts_sent, r.bytes_sent);
        }
        if r.pkts_rcvd > 0 {
            agent.observe(r.ts, r.key, Direction::Rx, r.pkts_rcvd, r.bytes_rcvd);
        }
    }
    for agent in agents.values_mut() {
        out.extend(agent.flush(last_minute + 60));
    }
    out
}

#[test]
fn nic_path_preserves_the_graph() {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim = Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config())
        .expect("valid preset");
    let records = sim.collect(5);

    let nic_records = through_nic_path(&records, 1 << 16);

    // Totals are conserved exactly.
    let direct_bytes: u64 = records.iter().map(|r| r.bytes_total()).sum();
    let nic_bytes: u64 = nic_records.iter().map(|r| r.bytes_total()).sum();
    assert_eq!(nic_bytes, direct_bytes, "no bytes lost in the NIC path");

    // And the IP graph is identical (same nodes, edges, per-edge bytes).
    let build = |recs: &[ConnSummary]| {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
        b.add_all(recs);
        b.finish()
    };
    let direct = build(&records);
    let via_nic = build(&nic_records);
    assert_eq!(via_nic.node_count(), direct.node_count());
    assert_eq!(via_nic.edge_count(), direct.edge_count());
    assert_eq!(via_nic.totals().bytes(), direct.totals().bytes());
    for i in 0..direct.node_count() as u32 {
        for (j, stats) in direct.neighbors(i) {
            let ni = via_nic.index_of(&direct.node(i)).expect("node present");
            let nj = via_nic.index_of(&direct.node(*j)).expect("node present");
            let nic_stats = via_nic.edge(ni, nj).expect("edge present");
            assert_eq!(nic_stats.bytes(), stats.bytes(), "edge bytes match");
            assert_eq!(nic_stats.pkts(), stats.pkts(), "edge packets match");
        }
    }
}

#[test]
fn nic_path_survives_tiny_flow_tables() {
    // A flow table far smaller than the concurrent flow count forces
    // constant evictions; the early-flush semantics must still conserve
    // every byte.
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim = Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config())
        .expect("valid preset");
    let records = sim.collect(3);

    let nic_records = through_nic_path(&records, 32);
    let direct_bytes: u64 = records.iter().map(|r| r.bytes_total()).sum();
    let nic_bytes: u64 = nic_records.iter().map(|r| r.bytes_total()).sum();
    assert_eq!(nic_bytes, direct_bytes, "evictions must flush, not drop");
    assert!(
        nic_records.len() >= records.len(),
        "evictions can only split summaries, never merge them away"
    );
}
