//! Tier-1 gate: the workspace's own static-analysis pass stays clean.
//!
//! Runs the full `lintcheck` sweep (see `crates/lintcheck`) against this
//! repository with the committed `lintcheck.baseline` and fails on any
//! fresh finding. This is the same check CI runs via
//! `cargo run -p lintcheck -- --json`; having it in the root test suite
//! means a plain `cargo test` catches contract violations too.

use lintcheck::baseline::Baseline;
use lintcheck::{Config, LintId};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_no_fresh_lint_findings() {
    let root = workspace_root();
    let cfg = Config::for_workspace(root.to_path_buf());
    let baseline = match std::fs::read_to_string(root.join("lintcheck.baseline")) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let report = lintcheck::run(&cfg, &baseline).expect("workspace tree is readable");
    assert!(
        report.files_scanned > 100,
        "sweep looked at suspiciously few files ({}); wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.fresh.iter().map(|f| f.to_string()).collect();
    assert!(
        report.fresh.is_empty(),
        "{} fresh lint finding(s):\n{}\nfix the sites, add a justified \
         `// lint:allow(<lint>) <reason>` marker, or (for accepted debt) \
         regenerate the baseline with `cargo run -p lintcheck -- --write-baseline`",
        report.fresh.len(),
        rendered.join("\n")
    );
}

/// The committed baseline only shrinks: it must not accumulate entries the
/// sweep no longer produces (stale entries hide regressions that happen to
/// reuse an old excerpt).
#[test]
fn baseline_has_no_stale_entries() {
    let root = workspace_root();
    let cfg = Config::for_workspace(root.to_path_buf());
    let baseline = match std::fs::read_to_string(root.join("lintcheck.baseline")) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let report = lintcheck::run(&cfg, &baseline).expect("workspace tree is readable");
    assert_eq!(
        report.baselined.len(),
        baseline.len(),
        "baseline holds {} entries but only {} matched the sweep; \
         regenerate with `cargo run -p lintcheck -- --write-baseline`",
        baseline.len(),
        report.baselined.len()
    );
}

/// The determinism contract is wired to the right crates and the canonical
/// metric table is non-trivial — guards against a future refactor quietly
/// emptying the default config.
#[test]
fn default_config_covers_the_contract_surfaces() {
    let cfg = Config::for_workspace(workspace_root().to_path_buf());
    assert!(cfg.nondet_prefixes.contains(&"crates/algos/".to_string()));
    assert!(cfg.nondet_prefixes.contains(&"crates/linalg/".to_string()));
    assert!(cfg.metric_table.len() >= 20, "canonical table shrank unexpectedly");
    assert_eq!(cfg.lints, LintId::all().to_vec());
    assert!(cfg.unsafe_allowed.is_empty(), "no crate is cleared for unsafe");
}
