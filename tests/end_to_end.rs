//! Integration tests spanning the whole stack: simulator → telemetry →
//! graphs → algorithms → segmentation → detection → analytics.

use commgraph::algos::metrics::adjusted_rand_index;
use commgraph::analytics::engine::{EngineConfig, StreamEngine};
use commgraph::cloudsim::attack::{AttackKind, AttackScenario};
use commgraph::cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::flowlog::provider::ProviderPreset;
use commgraph::flowlog::sampling::Sampler;
use commgraph::graph::{Facet, GraphBuilder};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use commgraph::workbench::Workbench;
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn monitored_of(sim: &Simulator) -> HashSet<Ipv4Addr> {
    sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect()
}

/// The full security arc: learn on a clean window, detect a breach window.
#[test]
fn learn_then_detect_lateral_movement() {
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(0.5);

    let mut clean_sim =
        Simulator::new(topo.clone(), preset.default_sim_config()).expect("valid preset");
    let clean = clean_sim.collect(10);
    let monitored = monitored_of(&clean_sim);
    let mut wb = Workbench::new(clean, monitored);
    assert!(wb.policy().rule_count() > 0, "clean window must yield allow rules");

    let breached =
        topo.ip_of(topo.role_named("frontend").expect("role").id, 0).expect("slot 0 exists");
    let cfg = SimConfig {
        attacks: vec![AttackScenario {
            kind: AttackKind::LateralMovement,
            start_min: 1,
            duration_min: 8,
            breached,
            intensity: 6,
        }],
        ..preset.default_sim_config()
    };
    let mut attack_sim = Simulator::new(topo, cfg).expect("valid preset");
    let attacked = attack_sim.collect(10);
    let truth = attack_sim.ground_truth().clone();

    let violations = wb.detect(&attacked);
    assert!(!violations.is_empty(), "lateral movement must trip the policy");

    // Most attack flows hit unusual ports/peers and must be flagged.
    let attack_recs = attacked.iter().filter(|r| truth.is_attack(&r.key)).count();
    let flagged_attack_pairs = violations
        .iter()
        .filter(|v| {
            truth.attack_flows.keys().any(|k| {
                k.local_ip == v.local_ip && k.remote_ip == v.remote_ip
                    || k.local_ip == v.remote_ip && k.remote_ip == v.local_ip
            })
        })
        .count();
    assert!(
        flagged_attack_pairs as f64 >= 0.5 * attack_recs as f64,
        "expected most of {attack_recs} attack records flagged, got {flagged_attack_pairs}"
    );
}

/// Segmentation quality on the paper's default cluster: the paper's method
/// must recover the simulated role structure far better than chance.
#[test]
fn role_inference_recovers_ground_truth() {
    let preset = ClusterPreset::K8sPaas;
    let topo = preset.topology_scaled(0.3);
    let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("valid preset");
    let records = sim.collect(8);
    let truth = sim.ground_truth().clone();
    let monitored = monitored_of(&sim);

    let mut wb = Workbench::new(records, monitored);
    let labels = wb.roles().labels.clone();
    let g = wb.ip_graph();
    let truth_labels: Vec<usize> = g
        .nodes()
        .iter()
        .map(|n| {
            n.ip().and_then(|ip| truth.role_of(ip)).map(|r| r.0 as usize).unwrap_or(usize::MAX >> 1)
        })
        .collect();
    let ari = adjusted_rand_index(&labels, &truth_labels).expect("aligned");
    assert!(ari > 0.5, "segmentation should track true roles, ARI = {ari}");
}

/// The parallel engine and the simple builder agree on simulated traffic.
#[test]
fn engine_matches_builder_on_simulated_stream() {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim = Simulator::new(preset.topology_scaled(0.3), preset.default_sim_config())
        .expect("valid preset");
    let records = sim.collect(5);
    let monitored = monitored_of(&sim);

    let mut engine = StreamEngine::new(EngineConfig {
        workers: 4,
        facet: Facet::Ip,
        window_len: 3600,
        monitored: Some(monitored.clone()),
        queue_depth: 4,
        ..Default::default()
    })
    .expect("valid config");
    engine.ingest(&records).expect("ingest");
    let (graphs, stats) = engine.finish().expect("drain");
    assert_eq!(graphs.len(), 1);

    let mut b = GraphBuilder::new(Facet::Ip, 0, 3600).with_monitored(monitored);
    b.add_all(&records);
    let reference = b.finish();

    assert_eq!(graphs[0].node_count(), reference.node_count());
    assert_eq!(graphs[0].edge_count(), reference.edge_count());
    assert_eq!(graphs[0].totals(), reference.totals());
    assert_eq!(stats.records_in as usize, records.len());
}

/// Table 1 rate shapes at test scale: Portal is orders of magnitude quieter
/// than the microservice mesh, and KQuery's all-to-all shuffle makes its
/// record rate grow *quadratically* with cluster size (which is why, at
/// full scale, it dwarfs everything at 2.3M records/min).
#[test]
fn record_rates_shape_like_table1() {
    let rate_of = |preset: ClusterPreset, scale: f64| {
        let topo = preset.topology_scaled(scale);
        let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("valid");
        sim.collect(3).len() as f64 / 3.0
    };
    let portal = rate_of(ClusterPreset::Portal, 0.05);
    let usvc = rate_of(ClusterPreset::MicroserviceBench, 0.05);
    assert!(portal * 10.0 < usvc, "Portal ({portal}) must be far quieter than uSvc ({usvc})");

    let kq_small = rate_of(ClusterPreset::KQuery, 0.04);
    let kq_double = rate_of(ClusterPreset::KQuery, 0.08);
    assert!(
        kq_double > kq_small * 2.5,
        "KQuery shuffle scales superlinearly: {kq_small} -> {kq_double}"
    );
}

/// GCP-style sampling plus Horvitz–Thompson upscaling approximates the
/// unsampled byte totals.
#[test]
fn sampled_telemetry_estimates_true_volume() {
    let preset = ClusterPreset::K8sPaas;
    let mut sim = Simulator::new(preset.topology_scaled(0.2), preset.default_sim_config())
        .expect("valid preset");
    let records = sim.collect(5);
    let true_bytes: u64 = records.iter().map(|r| r.bytes_total()).sum();

    let gcp = ProviderPreset::gcp();
    let sampler = Sampler::new(gcp.sampling, 99).expect("valid sampling");
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut est = 0f64;
    for r in &records {
        if let Some(s) = sampler.sample(r, &mut rng) {
            est += sampler.upscale(&s).bytes_total() as f64;
        }
    }
    let rel_err = (est - true_bytes as f64).abs() / true_bytes as f64;
    assert!(rel_err < 0.1, "upscaled estimate within 10%: err = {rel_err}");
}

/// The streaming pipeline yields ordered hourly windows with sane rates.
#[test]
fn pipeline_produces_hourly_sequence() {
    let preset = ClusterPreset::MicroserviceBench;
    let mut sim = Simulator::new(preset.topology_scaled(0.2), preset.default_sim_config())
        .expect("valid preset");
    let monitored = monitored_of(&sim);
    let mut pipeline = Pipeline::new(PipelineConfig {
        facet: Facet::Ip,
        window_len: 3600,
        monitored: Some(monitored),
        ..Default::default()
    });
    sim.run(125, |_, batch| pipeline.ingest(batch));
    let out = pipeline.finish().expect("ordered windows");
    assert_eq!(out.sequence.len(), 3, "125 minutes span three hourly windows");
    let p = out.sequence.persistence(2.0);
    assert!(
        p.mean_edge_jaccard > 0.5,
        "steady workload must be structurally persistent: {}",
        p.mean_edge_jaccard
    );
    assert!(out.mean_records_per_minute() > 0.0);
}

/// Same seed in, identical analysis out — end to end.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let preset = ClusterPreset::MicroserviceBench;
        let mut sim = Simulator::new(preset.topology_scaled(0.2), preset.default_sim_config())
            .expect("valid preset");
        let records = sim.collect(5);
        let monitored = monitored_of(&sim);
        let mut wb = Workbench::new(records, monitored);
        (
            wb.ip_graph().summary_json(5).to_string(),
            wb.roles().labels.clone(),
            wb.policy().rule_count(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
