//! Cross-crate property-based tests: invariants that must hold over
//! arbitrary simulated workloads, not just hand-picked fixtures.

use commgraph::cloudsim::roles::RoleKind;
use commgraph::cloudsim::topology::TopologyBuilder;
use commgraph::cloudsim::traffic::TrafficProfile;
use commgraph::cloudsim::{SimConfig, Simulator};
use commgraph::graph::collapse::{collapse, collapse_default};
use commgraph::graph::{Facet, GraphBuilder};
use commgraph::segment::policy::SegmentPolicy;
use commgraph::segment::{Segmentation, ViolationDetector};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// A small random-but-valid topology.
fn arb_topology() -> impl Strategy<Value = commgraph::cloudsim::Topology> {
    (
        2usize..6,    // frontend replicas
        2usize..8,    // backend replicas
        1usize..4,    // datastore replicas
        1usize..30,   // external clients
        1.0f64..40.0, // fe->be rate
    )
        .prop_map(|(fe_n, be_n, db_n, ext_n, rate)| {
            let mut b = TopologyBuilder::new("prop", 33);
            let fe = b.role("fe", RoleKind::Frontend, fe_n, vec![443]);
            let be = b.role("be", RoleKind::Service, be_n, vec![8080]);
            let db = b.role("db", RoleKind::Datastore, db_n, vec![5432]);
            let ext = b.role("ext", RoleKind::ExternalClient, ext_n, vec![]);
            b.connect(ext, fe, TrafficProfile::rpc(2.0, 400.0, 9_000.0));
            b.connect(fe, be, TrafficProfile::rpc(rate, 500.0, 3_000.0));
            b.connect(be, db, TrafficProfile::bulk(1.5, 20_000.0, 90_000.0));
            b.build().expect("generated topology is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Graph construction conserves traffic: the deduped record stream's
    /// bytes equal the graph's edge totals.
    #[test]
    fn graph_totals_match_record_stream(topo in arb_topology(), seed in 0u64..1000) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid topology");
        let records = sim.collect(4);
        let monitored: HashSet<Ipv4Addr> = sim
            .ground_truth().ip_roles.keys().copied()
            .filter(|ip| ip.octets()[0] == 10).collect();
        let mut b = GraphBuilder::new(Facet::Ip, 0, 4 * 60).with_monitored(monitored.clone());
        b.add_all(&records);
        let g = b.finish();

        // Expected: each flow counted once (internal flows are reported twice).
        let mut expect = 0u64;
        for r in &records {
            let both = monitored.contains(&r.key.local_ip)
                && monitored.contains(&r.key.remote_ip);
            if !both || r.key.is_canonical() {
                expect += r.bytes_total();
            }
        }
        prop_assert_eq!(g.totals().bytes(), expect);
    }

    /// Heavy-hitter collapsing never changes whole-graph traffic totals and
    /// never grows the graph, at any threshold.
    #[test]
    fn collapse_conserves_and_shrinks(
        topo in arb_topology(),
        seed in 0u64..1000,
        threshold in 0.0f64..=0.3,
    ) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid topology");
        let records = sim.collect(3);
        let mut b = GraphBuilder::new(Facet::Ip, 0, 180);
        b.add_all(&records);
        let g = b.finish();
        let c = collapse(&g, threshold, |_| false);
        prop_assert_eq!(c.totals().bytes(), g.totals().bytes());
        prop_assert_eq!(c.totals().pkts(), g.totals().pkts());
        prop_assert_eq!(c.totals().conns, g.totals().conns);
        prop_assert!(c.node_count() <= g.node_count());
        prop_assert!(c.edge_count() <= g.edge_count());

        let d = collapse_default(&g);
        prop_assert!(d.node_count() <= g.node_count());
    }

    /// A policy learned from a window never flags that same window — on any
    /// workload, at any seed, port-scoped or not.
    #[test]
    fn learned_policy_is_self_consistent(
        topo in arb_topology(),
        seed in 0u64..1000,
        port_scoped in any::<bool>(),
    ) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid topology");
        let records = sim.collect(3);
        let truth = sim.ground_truth().clone();
        // Segment by true roles: every IP is in a segment.
        let mut groups: std::collections::HashMap<u16, Vec<Ipv4Addr>> = Default::default();
        for (ip, role) in &truth.ip_roles {
            groups.entry(role.0).or_default().push(*ip);
        }
        let seg = Segmentation::from_members(
            groups
                .into_iter()
                .map(|(role, ips)| (format!("r{role}"), ips, true))
                .collect(),
        );
        let policy = SegmentPolicy::learn(&records, &seg, port_scoped);
        let mut det = ViolationDetector::new(seg, policy);
        let violations = det.check_all(&records);
        prop_assert!(
            violations.is_empty(),
            "self-check must be clean, got {} violations",
            violations.len()
        );
    }

    /// Simulated records are always well-formed and timestamped in order.
    #[test]
    fn simulator_output_is_well_formed(topo in arb_topology(), seed in 0u64..1000) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid topology");
        let mut last_ts = 0;
        let mut total = 0usize;
        sim.run(3, |minute, batch| {
            for r in batch {
                assert!(r.is_well_formed(), "{r:?}");
                assert_eq!(r.ts, minute * 60);
                assert!(r.ts >= last_ts);
            }
            if let Some(r) = batch.last() {
                last_ts = r.ts;
            }
            total += batch.len();
        });
        prop_assert!(total > 0, "topologies with traffic must emit records");
    }
}
