//! Property-based tests for the analytics tier.

use analytics::countmin::CountMin;
use analytics::engine::{EngineConfig, StreamEngine};
use analytics::sketch::SpaceSaving;
use commgraph_graph::{Facet, GraphBuilder};
use flowlog::record::{ConnSummary, FlowKey};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn arb_records() -> impl Strategy<Value = Vec<ConnSummary>> {
    prop::collection::vec((0u64..7200, 0u8..10, 0u8..10, 1u64..100_000), 1..150).prop_map(
        |tuples| {
            tuples
                .into_iter()
                .map(|(ts, l, r, bytes)| ConnSummary {
                    ts,
                    key: FlowKey::tcp(
                        Ipv4Addr::new(10, 0, 0, l + 1),
                        40_000 + (bytes % 500) as u16,
                        Ipv4Addr::new(10, 0, 1, r + 1),
                        443,
                    ),
                    pkts_sent: bytes / 1000 + 1,
                    pkts_rcvd: 1,
                    bytes_sent: bytes,
                    bytes_rcvd: bytes / 5,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel engine produces exactly the single-threaded result for
    /// any record stream, any worker count, any batch size.
    #[test]
    fn engine_equals_builder(
        records in arb_records(),
        workers in 1usize..6,
        chunk in 1usize..64,
    ) {
        let mut engine = StreamEngine::new(EngineConfig {
            workers,
            facet: Facet::Ip,
            window_len: 3600,
            monitored: None,
            queue_depth: 2,
            ..Default::default()
        })
        .expect("valid");
        for batch in records.chunks(chunk) {
            engine.ingest(batch).expect("ingest");
        }
        let (graphs, stats) = engine.finish().expect("drain");

        let mut per_window: HashMap<u64, GraphBuilder> = HashMap::new();
        for r in &records {
            per_window
                .entry(flowlog::time::bucket_start(r.ts, 3600))
                .or_insert_with(|| GraphBuilder::new(Facet::Ip, 0, 3600))
                .add(r);
        }
        prop_assert_eq!(graphs.len(), per_window.len());
        prop_assert_eq!(stats.records_in as usize, records.len());
        for g in &graphs {
            let reference = per_window
                .remove(&g.window_start())
                .expect("window exists")
                .finish();
            prop_assert_eq!(g.node_count(), reference.node_count());
            prop_assert_eq!(g.edge_count(), reference.edge_count());
            prop_assert_eq!(g.totals(), reference.totals());
        }
    }

    /// Count-Min never undercounts and its total is exact.
    #[test]
    fn countmin_guarantees(
        items in prop::collection::vec((0u32..200, 1u64..10_000), 1..300),
        width_pow in 4u32..10,
    ) {
        let mut cm = CountMin::new(1 << width_pow, 4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for (item, w) in &items {
            cm.insert(item, *w);
            *truth.entry(*item).or_default() += w;
            total += w;
        }
        prop_assert_eq!(cm.total(), total);
        for (item, &true_w) in &truth {
            prop_assert!(cm.estimate(item) >= true_w, "undercounted {item}");
        }
    }

    /// SpaceSaving: estimates never undercount, the count-minus-error lower
    /// bound never overcounts, and any item above total/capacity is tracked.
    #[test]
    fn spacesaving_guarantees(
        items in prop::collection::vec((0u32..64, 1u64..1_000), 1..300),
        capacity in 4usize..32,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (item, w) in &items {
            ss.insert(*item, *w);
            *truth.entry(*item).or_default() += w;
        }
        let total = ss.total();
        let tracked = ss.top(capacity);
        for e in &tracked {
            let true_w = truth.get(&e.item).copied().unwrap_or(0);
            prop_assert!(e.count >= true_w, "estimate below truth for {}", e.item);
            prop_assert!(
                e.count - e.error <= true_w,
                "lower bound violated for {}",
                e.item
            );
        }
        // Guarantee: every item with weight > total/capacity is tracked.
        let threshold = total / capacity as u64;
        for (item, &w) in &truth {
            if w > threshold {
                prop_assert!(
                    tracked.iter().any(|e| e.item == *item),
                    "heavy item {item} (w={w} > {threshold}) must be tracked"
                );
            }
        }
    }
}
