//! Property-based tests for the analytics tier.

use analytics::countmin::CountMin;
use analytics::engine::{EngineConfig, StreamEngine};
use analytics::sketch::SpaceSaving;
use commgraph_graph::diff::dirty_nodes;
use commgraph_graph::{CommGraph, EdgeStats, Facet, GraphBuilder, NodeId};
use flowlog::record::{ConnSummary, FlowKey};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn arb_records() -> impl Strategy<Value = Vec<ConnSummary>> {
    prop::collection::vec((0u64..7200, 0u8..10, 0u8..10, 1u64..100_000), 1..150).prop_map(
        |tuples| {
            tuples
                .into_iter()
                .map(|(ts, l, r, bytes)| ConnSummary {
                    ts,
                    key: FlowKey::tcp(
                        Ipv4Addr::new(10, 0, 0, l + 1),
                        40_000 + (bytes % 500) as u16,
                        Ipv4Addr::new(10, 0, 1, r + 1),
                        443,
                    ),
                    pkts_sent: bytes / 1000 + 1,
                    pkts_rcvd: 1,
                    bytes_sent: bytes,
                    bytes_rcvd: bytes / 5,
                })
                .collect()
        },
    )
}

/// Build one single-window graph (window 0, one hour) from `records` with a
/// `StreamEngine` at `workers` threads. An empty stream yields the empty
/// graph, matching what a fresh build over no records means.
fn engine_graph(records: &[ConnSummary], workers: usize) -> CommGraph {
    let mut e = StreamEngine::new(EngineConfig {
        workers,
        facet: Facet::Ip,
        window_len: 3600,
        ..Default::default()
    })
    .expect("valid");
    for batch in records.chunks(64) {
        e.ingest(batch).expect("ingest");
    }
    let (mut graphs, _) = e.finish().expect("drain");
    match graphs.pop() {
        Some(g) => g,
        None => CommGraph::from_edge_map("ip", 0, 3600, HashMap::new()),
    }
}

/// Full (NodeId, NodeId) → EdgeStats map of a graph.
fn edge_map(g: &CommGraph) -> HashMap<(NodeId, NodeId), EdgeStats> {
    let mut out = HashMap::new();
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j >= i {
                out.insert((g.node(i), g.node(*j)), *stats);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The dirty-set contract behind incremental window maintenance, over
    /// random churn sequences: applying the next window's adjacency for
    /// *dirty* nodes onto the previous graph — and keeping clean nodes'
    /// adjacency verbatim — reconstructs the fresh build exactly. Verified
    /// with graphs built at 1, 2, and NCPU engine workers, which must all
    /// agree on the graphs and therefore the dirty set.
    #[test]
    fn dirty_set_reconstructs_fresh_build_under_churn(
        base in arb_records(),
        keep in prop::collection::vec(any::<bool>(), 150),
        bumps in prop::collection::vec((0usize..150, 1u64..50_000), 0..10),
        added in arb_records(),
    ) {
        // Fold every record into the single hour the helper builds.
        let mut base = base;
        let mut added = added;
        for r in base.iter_mut().chain(added.iter_mut()) {
            r.ts %= 3600;
        }
        // A two-step churn sequence: window 0 → drop/bump → window 1 → add.
        let step1: Vec<ConnSummary> = {
            let mut out: Vec<ConnSummary> = base
                .iter()
                .zip(keep.iter().cycle())
                .filter(|(_, &k)| k)
                .map(|(r, _)| *r)
                .collect();
            let len = out.len().max(1);
            for &(idx, extra) in &bumps {
                if let Some(r) = out.get_mut(idx % len) {
                    r.bytes_sent += extra;
                }
            }
            out
        };
        let step2: Vec<ConnSummary> =
            step1.iter().chain(added.iter()).copied().collect();
        let windows = [base, step1, step2];

        let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut worker_counts = vec![1, 2, ncpu];
        worker_counts.dedup();

        for pair in windows.windows(2) {
            let mut dirty_across_workers: Option<Vec<NodeId>> = None;
            for &workers in &worker_counts {
                let prev = engine_graph(&pair[0], workers);
                let cur = engine_graph(&pair[1], workers);
                let dirty = dirty_nodes(&prev, &cur);

                // Worker count never changes the graphs, so never the dirty set.
                match &dirty_across_workers {
                    None => dirty_across_workers = Some(dirty.clone()),
                    Some(d) => prop_assert_eq!(&dirty, d, "{} workers", workers),
                }

                // Delta-apply: clean-clean edges come from the previous
                // graph, anything touching a dirty node from the current.
                let is_dirty = |n: &NodeId| dirty.binary_search(n).is_ok();
                let mut rebuilt = HashMap::new();
                for (k, v) in edge_map(&prev) {
                    if !is_dirty(&k.0) && !is_dirty(&k.1) {
                        rebuilt.insert(k, v);
                    }
                }
                for (k, v) in edge_map(&cur) {
                    if is_dirty(&k.0) || is_dirty(&k.1) {
                        rebuilt.insert(k, v);
                    }
                }
                prop_assert_eq!(rebuilt, edge_map(&cur), "delta-applied dirty set == fresh build");

                // The clean node set carries over: nodes(cur) is exactly
                // nodes(prev) minus dirty plus dirty nodes still present.
                for n in prev.nodes() {
                    if !is_dirty(n) {
                        prop_assert!(cur.index_of(n).is_some(), "clean node {} persists", n);
                    }
                }
            }
        }
    }

    /// The parallel engine produces exactly the single-threaded result for
    /// any record stream, any worker count, any batch size.
    #[test]
    fn engine_equals_builder(
        records in arb_records(),
        workers in 1usize..6,
        chunk in 1usize..64,
    ) {
        let mut engine = StreamEngine::new(EngineConfig {
            workers,
            facet: Facet::Ip,
            window_len: 3600,
            monitored: None,
            queue_depth: 2,
            ..Default::default()
        })
        .expect("valid");
        for batch in records.chunks(chunk) {
            engine.ingest(batch).expect("ingest");
        }
        let (graphs, stats) = engine.finish().expect("drain");

        let mut per_window: HashMap<u64, GraphBuilder> = HashMap::new();
        for r in &records {
            per_window
                .entry(flowlog::time::bucket_start(r.ts, 3600))
                .or_insert_with(|| GraphBuilder::new(Facet::Ip, 0, 3600))
                .add(r);
        }
        prop_assert_eq!(graphs.len(), per_window.len());
        prop_assert_eq!(stats.records_in as usize, records.len());
        for g in &graphs {
            let reference = per_window
                .remove(&g.window_start())
                .expect("window exists")
                .finish();
            prop_assert_eq!(g.node_count(), reference.node_count());
            prop_assert_eq!(g.edge_count(), reference.edge_count());
            prop_assert_eq!(g.totals(), reference.totals());
        }
    }

    /// Count-Min never undercounts and its total is exact.
    #[test]
    fn countmin_guarantees(
        items in prop::collection::vec((0u32..200, 1u64..10_000), 1..300),
        width_pow in 4u32..10,
    ) {
        let mut cm = CountMin::new(1 << width_pow, 4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for (item, w) in &items {
            cm.insert(item, *w);
            *truth.entry(*item).or_default() += w;
            total += w;
        }
        prop_assert_eq!(cm.total(), total);
        for (item, &true_w) in &truth {
            prop_assert!(cm.estimate(item) >= true_w, "undercounted {item}");
        }
    }

    /// SpaceSaving: estimates never undercount, the count-minus-error lower
    /// bound never overcounts, and any item above total/capacity is tracked.
    #[test]
    fn spacesaving_guarantees(
        items in prop::collection::vec((0u32..64, 1u64..1_000), 1..300),
        capacity in 4usize..32,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for (item, w) in &items {
            ss.insert(*item, *w);
            *truth.entry(*item).or_default() += w;
        }
        let total = ss.total();
        let tracked = ss.top(capacity);
        for e in &tracked {
            let true_w = truth.get(&e.item).copied().unwrap_or(0);
            prop_assert!(e.count >= true_w, "estimate below truth for {}", e.item);
            prop_assert!(
                e.count - e.error <= true_w,
                "lower bound violated for {}",
                e.item
            );
        }
        // Guarantee: every item with weight > total/capacity is tracked.
        let threshold = total / capacity as u64;
        for (item, &w) in &truth {
            if w > threshold {
                prop_assert!(
                    tracked.iter().any(|e| e.item == *item),
                    "heavy item {item} (w={w} > {threshold}) must be tracked"
                );
            }
        }
    }
}
