//! The sharded mini-batch graph-construction engine (Figure 8).
//!
//! Ingestion hashes every record's *edge identity* (the canonical node pair
//! under the configured facet) onto one of `workers` threads. Each worker
//! owns a disjoint slice of the edge space and runs the same
//! group-by-aggregate a single-threaded [`commgraph_graph::GraphBuilder`]
//! would, per window. On `finish`, per-window shards concatenate — no
//! cross-shard reconciliation is ever needed, which is what makes the plan
//! "factor into parallelizable in-memory execution" as §3.2 asks.

use crate::error::{Error, Result};
use commgraph_graph::{CommGraph, EdgeStats, Facet, NodeId};
use crossbeam::channel::{bounded, Receiver, Sender};
use flowlog::record::ConnSummary;
use flowlog::time::bucket_start;
use obs::{Histogram, Level, Obs, SpanGuard};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (shards).
    pub workers: usize,
    /// Facet to aggregate under.
    pub facet: Facet,
    /// Window length in seconds (3600 for hourly graphs).
    pub window_len: u64,
    /// Monitored inventory for vantage dedup (`None` disables dedup).
    pub monitored: Option<HashSet<Ipv4Addr>>,
    /// Channel depth per worker, in batches — the backpressure bound.
    pub queue_depth: usize,
    /// Observability handle; the default noop handle records nothing and
    /// costs nothing. Metrics never change what the engine computes.
    pub obs: Obs,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            facet: Facet::Ip,
            window_len: 3600,
            monitored: None,
            queue_depth: 8,
            obs: Obs::noop(),
        }
    }
}

/// Counters describing one engine run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EngineStats {
    /// Records offered to `ingest`.
    pub records_in: u64,
    /// Records surviving vantage dedup (i.e. aggregated).
    pub records_kept: u64,
    /// Distinct edge entries across all shards and windows — the memory
    /// driver.
    pub edge_entries: usize,
    /// Wall-clock seconds from first ingest to finish.
    pub elapsed_secs: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl EngineStats {
    /// Ingest throughput: **raw records offered per wall-clock second**,
    /// measured from first ingest to `finish`. This is a machine-speed
    /// number ("how fast did we chew through the stream"), *not* the
    /// telemetry arrival rate — for the per-active-minute arrival rate see
    /// `PipelineOutput::mean_records_per_minute` in the core crate. Both
    /// divide through [`obs::rate`], which guards zero durations.
    pub fn records_per_sec(&self) -> f64 {
        obs::rate::per_second(self.records_in, self.elapsed_secs)
    }
}

type ShardMap = HashMap<u64, HashMap<(NodeId, NodeId), EdgeStats>>;

enum Msg {
    Batch(Vec<ConnSummary>),
    Finish,
}

struct Worker {
    tx: Sender<Msg>,
    handle: JoinHandle<(ShardMap, u64)>,
}

/// Metric handles of one engine instance, resolved once at construction.
/// All noop (and therefore free) when the config carried no registry.
struct EngineMetrics {
    records_in: obs::Counter,
    records_kept: obs::Counter,
    dropped: obs::Counter,
    batches: obs::Counter,
    batch_records: Histogram,
    ingest_seconds: Histogram,
    watermark: obs::Gauge,
}

impl EngineMetrics {
    fn resolve(o: &Obs) -> EngineMetrics {
        EngineMetrics {
            records_in: o.counter(
                "commgraph_engine_records_in_total",
                "Records offered to StreamEngine::ingest.",
                &[],
            ),
            records_kept: o.counter(
                "commgraph_engine_records_kept_total",
                "Records surviving vantage dedup (aggregated into shards).",
                &[],
            ),
            dropped: o.counter(
                "commgraph_engine_dropped_records_total",
                "Records dropped before aggregation (vantage dedup), tallied at engine finish.",
                &[],
            ),
            batches: o.counter(
                "commgraph_engine_batches_total",
                "Batches offered to StreamEngine::ingest.",
                &[],
            ),
            batch_records: o.histogram(
                "commgraph_engine_batch_records",
                "Records per ingested batch.",
                &[],
            ),
            ingest_seconds: o.histogram(
                "commgraph_engine_ingest_seconds",
                "Wall-clock seconds per ingest call (shard + enqueue, including backpressure).",
                &[],
            ),
            watermark: o.gauge(
                "commgraph_ingest_watermark_seconds",
                "High-water record timestamp (seconds since trace start) seen by an ingest path.",
                &[("source", "engine")],
            ),
        }
    }
}

/// The running engine. Create, `ingest` batches, then `finish`.
pub struct StreamEngine {
    cfg: EngineConfig,
    workers: Vec<Worker>,
    records_in: u64,
    /// Highest record timestamp seen so far (the ingest watermark).
    watermark: u64,
    started: Option<Instant>,
    closed: bool,
    metrics: EngineMetrics,
}

impl StreamEngine {
    /// Spawn the worker pool.
    pub fn new(cfg: EngineConfig) -> Result<Self> {
        if cfg.workers == 0 {
            return Err(Error::InvalidConfig("need at least one worker".into()));
        }
        if cfg.window_len == 0 {
            return Err(Error::InvalidConfig("window length must be positive".into()));
        }
        let metrics = EngineMetrics::resolve(&cfg.obs);
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let (tx, rx) = bounded::<Msg>(cfg.queue_depth.max(1));
            let facet = cfg.facet.clone();
            let monitored = cfg.monitored.clone();
            let window_len = cfg.window_len;
            let busy = cfg.obs.histogram(
                "commgraph_engine_worker_busy_seconds",
                "Per-worker time spent aggregating batches over the engine's lifetime.",
                &[("worker", &i.to_string())],
            );
            let handle =
                std::thread::spawn(move || worker_loop(rx, facet, monitored, window_len, busy));
            workers.push(Worker { tx, handle });
        }
        Ok(StreamEngine {
            cfg,
            workers,
            records_in: 0,
            watermark: 0,
            started: None,
            closed: false,
            metrics,
        })
    }

    /// Offer a batch; blocks when worker queues are full (backpressure).
    pub fn ingest(&mut self, records: &[ConnSummary]) -> Result<()> {
        if self.closed {
            return Err(Error::EngineClosed);
        }
        let mut span = SpanGuard::traced(
            self.metrics.ingest_seconds.clone(),
            self.cfg.obs.trace_span("engine_ingest"),
        );
        if span.trace_enabled() {
            span.trace_attr("records", &records.len().to_string());
        }
        self.metrics.records_in.add(records.len() as u64);
        self.metrics.batches.inc();
        self.metrics.batch_records.record(records.len() as f64);
        // lint:allow(clock-hygiene) wall-clock uptime for stats reporting only; never gates window logic
        self.started.get_or_insert_with(Instant::now);
        self.records_in += records.len() as u64;
        let n = self.workers.len();
        // Shard by canonical edge identity so each worker owns disjoint
        // edges regardless of which vantage reported the record.
        let mut shards: Vec<Vec<ConnSummary>> = vec![Vec::new(); n];
        for r in records {
            self.watermark = self.watermark.max(r.ts);
            let shard = (edge_hash(&self.cfg.facet, r) % n as u64) as usize;
            shards[shard].push(*r);
        }
        self.metrics.watermark.set(self.watermark as f64);
        for (i, batch) in shards.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.workers[i]
                .tx
                .send(Msg::Batch(batch))
                .map_err(|_| Error::WorkerFailed("worker channel closed".into()))?;
        }
        Ok(())
    }

    /// Drain workers and assemble one graph per window, in time order.
    pub fn finish(mut self) -> Result<(Vec<CommGraph>, EngineStats)> {
        self.closed = true;
        let mut tspan = self.cfg.obs.trace_span("engine_finish");
        let mut per_window: HashMap<u64, HashMap<(NodeId, NodeId), EdgeStats>> = HashMap::new();
        let mut records_kept = 0u64;
        for (i, w) in self.workers.drain(..).enumerate() {
            w.tx.send(Msg::Finish)
                .map_err(|_| Error::WorkerFailed("worker channel closed".into()))?;
            let (shard, kept) =
                w.handle.join().map_err(|_| Error::WorkerFailed("worker panicked".into()))?;
            records_kept += kept;
            self.cfg
                .obs
                .gauge(
                    "commgraph_engine_shard_edge_entries",
                    "Distinct edge entries held by one shard at finish.",
                    &[("shard", &i.to_string())],
                )
                .set(shard.values().map(|m| m.len()).sum::<usize>() as f64);
            for (window, edges) in shard {
                let target = per_window.entry(window).or_default();
                // Shards are disjoint by construction; extend is a merge.
                for (k, v) in edges {
                    target.entry(k).or_default().absorb(&v);
                }
            }
        }
        self.metrics.records_kept.add(records_kept);
        self.metrics.dropped.add(self.records_in.saturating_sub(records_kept));
        let elapsed = self.started.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
        let edge_entries: usize = per_window.values().map(|m| m.len()).sum();
        let mut windows: Vec<u64> = per_window.keys().copied().collect();
        windows.sort_unstable();
        let graphs: Vec<CommGraph> = windows
            .into_iter()
            .filter_map(|w| {
                // The window list came from this map's keys, so the lookup
                // always hits; a miss would just skip the window.
                let edges = per_window.remove(&w)?;
                Some(CommGraph::from_edge_map(self.cfg.facet.name(), w, self.cfg.window_len, edges))
            })
            .collect();
        let stats = EngineStats {
            records_in: self.records_in,
            records_kept,
            edge_entries,
            elapsed_secs: elapsed,
            workers: self.cfg.workers,
        };
        if tspan.is_enabled() {
            tspan.attr("windows", &graphs.len().to_string());
            tspan.attr("records_in", &stats.records_in.to_string());
            tspan.attr("records_kept", &stats.records_kept.to_string());
            tspan.attr("edge_entries", &stats.edge_entries.to_string());
        }
        if self.cfg.obs.logs(Level::Info) {
            self.cfg.obs.event(
                Level::Info,
                "engine",
                "finish",
                &[
                    ("records_in", stats.records_in.to_string()),
                    ("records_kept", stats.records_kept.to_string()),
                    ("windows", graphs.len().to_string()),
                    ("edge_entries", stats.edge_entries.to_string()),
                    ("records_per_sec", format!("{:.0}", stats.records_per_sec())),
                ],
            );
        }
        Ok((graphs, stats))
    }
}

/// Hash of the canonical (direction-independent) edge a record belongs to.
fn edge_hash(facet: &Facet, r: &ConnSummary) -> u64 {
    let (a, b) = facet.endpoints(r);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    commgraph_graph::cardinality::hash64(&(lo, hi))
}

fn keep(monitored: &Option<HashSet<Ipv4Addr>>, r: &ConnSummary) -> bool {
    match monitored {
        Some(set) if set.contains(&r.key.local_ip) && set.contains(&r.key.remote_ip) => {
            r.key.is_canonical()
        }
        _ => true,
    }
}

fn worker_loop(
    rx: Receiver<Msg>,
    facet: Facet,
    monitored: Option<HashSet<Ipv4Addr>>,
    window_len: u64,
    busy: Histogram,
) -> (ShardMap, u64) {
    let mut shard: ShardMap = HashMap::new();
    let mut kept = 0u64;
    // Busy time counts aggregation work only, not blocking on the channel.
    let mut busy_secs = 0.0f64;
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Finish => break,
            Msg::Batch(records) => {
                // lint:allow(clock-hygiene) worker busy-time telemetry only; window outputs are driven by record watermarks
                let t0 = busy.is_enabled().then(Instant::now);
                for r in &records {
                    if !keep(&monitored, r) {
                        continue;
                    }
                    kept += 1;
                    let window = bucket_start(r.ts, window_len);
                    let (local, remote) = facet.endpoints(r);
                    let (key, bf, br, pf, pr) = if local <= remote {
                        ((local, remote), r.bytes_sent, r.bytes_rcvd, r.pkts_sent, r.pkts_rcvd)
                    } else {
                        ((remote, local), r.bytes_rcvd, r.bytes_sent, r.pkts_rcvd, r.pkts_sent)
                    };
                    let e = shard.entry(window).or_default().entry(key).or_default();
                    e.bytes_fwd = e.bytes_fwd.saturating_add(bf);
                    e.bytes_rev = e.bytes_rev.saturating_add(br);
                    e.pkts_fwd = e.pkts_fwd.saturating_add(pf);
                    e.pkts_rev = e.pkts_rev.saturating_add(pr);
                    e.conns += 1;
                }
                if let Some(t0) = t0 {
                    busy_secs += t0.elapsed().as_secs_f64();
                }
            }
        }
    }
    if busy.is_enabled() {
        busy.record(busy_secs);
    }
    (shard, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::GraphBuilder;
    use flowlog::record::FlowKey;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn records(n: u32) -> Vec<ConnSummary> {
        (0..n)
            .map(|i| ConnSummary {
                ts: (i as u64 % 120) * 60,
                key: FlowKey::tcp(
                    ip((i % 5) as u8, 1),
                    (40_000 + i % 1000) as u16,
                    ip(9, (i % 7) as u8 + 1),
                    443,
                ),
                pkts_sent: 2,
                pkts_rcvd: 1,
                bytes_sent: 100 + i as u64,
                bytes_rcvd: 50,
            })
            .collect()
    }

    /// The engine must produce exactly what a single-threaded builder does.
    #[test]
    fn matches_single_threaded_builder() {
        let recs = records(5000);
        let mut engine =
            StreamEngine::new(EngineConfig { workers: 4, window_len: 3600, ..Default::default() })
                .unwrap();
        for chunk in recs.chunks(512) {
            engine.ingest(chunk).unwrap();
        }
        let (graphs, stats) = engine.finish().unwrap();

        // Reference: one GraphBuilder per window.
        let mut ref_builders: HashMap<u64, GraphBuilder> = HashMap::new();
        for r in &recs {
            let w = bucket_start(r.ts, 3600);
            ref_builders.entry(w).or_insert_with(|| GraphBuilder::new(Facet::Ip, w, 3600)).add(r);
        }
        assert_eq!(graphs.len(), ref_builders.len());
        for g in &graphs {
            let reference = ref_builders.remove(&g.window_start()).unwrap().finish();
            assert_eq!(g.node_count(), reference.node_count());
            assert_eq!(g.edge_count(), reference.edge_count());
            assert_eq!(g.totals(), reference.totals());
            // Spot-check each edge.
            for i in 0..g.node_count() as u32 {
                for (j, stats) in g.neighbors(i) {
                    let ri = reference.index_of(&g.node(i)).expect("node exists");
                    let rj = reference.index_of(&g.node(*j)).expect("node exists");
                    assert_eq!(reference.edge(ri, rj).expect("edge exists"), *stats);
                }
            }
        }
        assert_eq!(stats.records_in, 5000);
        assert_eq!(stats.records_kept, 5000, "no dedup configured");
        assert!(stats.records_per_sec() > 0.0);
    }

    #[test]
    fn dedup_matches_builder_dedup() {
        let base = records(200);
        // Duplicate every record from the peer's vantage; both ends monitored.
        let mut recs = base.clone();
        recs.extend(base.iter().map(|r| r.mirrored()));
        let monitored: HashSet<Ipv4Addr> =
            recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();

        let mut engine = StreamEngine::new(EngineConfig {
            workers: 3,
            monitored: Some(monitored.clone()),
            ..Default::default()
        })
        .unwrap();
        engine.ingest(&recs).unwrap();
        let (graphs, stats) = engine.finish().unwrap();
        assert_eq!(stats.records_kept, 200, "each flow counted once");
        let total: u64 = graphs.iter().map(|g| g.totals().bytes()).sum();
        let expect: u64 = base.iter().map(|r| r.bytes_total()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let recs = records(3000);
        let mut results = Vec::new();
        for workers in [1, 2, 8] {
            let mut e = StreamEngine::new(EngineConfig { workers, ..Default::default() }).unwrap();
            e.ingest(&recs).unwrap();
            let (graphs, _) = e.finish().unwrap();
            let fingerprint: Vec<(u64, usize, usize, u64)> = graphs
                .iter()
                .map(|g| (g.window_start(), g.node_count(), g.edge_count(), g.totals().bytes()))
                .collect();
            results.push(fingerprint);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn ingest_after_finish_is_rejected() {
        let engine = StreamEngine::new(EngineConfig::default()).unwrap();
        let (graphs, _) = engine.finish().unwrap();
        assert!(graphs.is_empty());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(StreamEngine::new(EngineConfig { workers: 0, ..Default::default() }).is_err());
        assert!(StreamEngine::new(EngineConfig { window_len: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn metrics_agree_with_returned_stats() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let recs = records(300);
        let mut e = StreamEngine::new(EngineConfig {
            workers: 2,
            obs: Obs::new(registry.clone()),
            ..Default::default()
        })
        .unwrap();
        for chunk in recs.chunks(100) {
            e.ingest(chunk).unwrap();
        }
        let (_, stats) = e.finish().unwrap();

        let records_in = registry.counter("commgraph_engine_records_in_total", "", &[]).get();
        let kept = registry.counter("commgraph_engine_records_kept_total", "", &[]).get();
        let batches = registry.counter("commgraph_engine_batches_total", "", &[]).get();
        assert_eq!(records_in, stats.records_in);
        assert_eq!(kept, stats.records_kept);
        assert_eq!(batches, 3);
        assert_eq!(registry.histogram("commgraph_engine_batch_records", "", &[]).count(), 3);
        assert!(
            registry.histogram("commgraph_engine_ingest_seconds", "", &[]).count() == 3,
            "one span per ingest call"
        );
        // Every worker reports its busy time exactly once at shutdown.
        for w in 0..2 {
            let busy = registry.histogram(
                "commgraph_engine_worker_busy_seconds",
                "",
                &[("worker", &w.to_string())],
            );
            assert_eq!(busy.count(), 1, "worker {w}");
        }
        // No dedup configured → nothing dropped; watermark is the max ts.
        let dropped = registry.counter("commgraph_engine_dropped_records_total", "", &[]).get();
        assert_eq!(dropped, stats.records_in - stats.records_kept);
        let max_ts = recs.iter().map(|r| r.ts).max().unwrap() as f64;
        let watermark =
            registry.gauge("commgraph_ingest_watermark_seconds", "", &[("source", "engine")]).get();
        assert_eq!(watermark, max_ts);
    }

    #[test]
    fn dedup_drops_are_counted() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let base = records(100);
        let mut recs = base.clone();
        recs.extend(base.iter().map(|r| r.mirrored()));
        let monitored: HashSet<Ipv4Addr> =
            recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();
        let mut e = StreamEngine::new(EngineConfig {
            workers: 2,
            monitored: Some(monitored),
            obs: Obs::new(registry.clone()),
            ..Default::default()
        })
        .unwrap();
        e.ingest(&recs).unwrap();
        let (_, stats) = e.finish().unwrap();
        assert_eq!(stats.records_kept, 100);
        let dropped = registry.counter("commgraph_engine_dropped_records_total", "", &[]).get();
        assert_eq!(dropped, 100, "every mirrored duplicate counted as dropped");
    }

    /// A run whose clock never advanced (or was never started) must report
    /// zero throughput, not inf/NaN.
    #[test]
    fn zero_duration_stats_report_zero_rates() {
        let stats = EngineStats { records_in: 1_000, elapsed_secs: 0.0, ..EngineStats::default() };
        assert_eq!(stats.records_per_sec(), 0.0);
        let nan = EngineStats { records_in: 5, elapsed_secs: f64::NAN, ..EngineStats::default() };
        assert_eq!(nan.records_per_sec(), 0.0);
        // A never-ingested engine reports elapsed 0.0 end to end.
        let engine = StreamEngine::new(EngineConfig::default()).unwrap();
        let (_, s) = engine.finish().unwrap();
        assert_eq!(s.elapsed_secs, 0.0);
        assert_eq!(s.records_per_sec(), 0.0);
    }

    #[test]
    fn empty_run_produces_no_graphs() {
        let mut e = StreamEngine::new(EngineConfig::default()).unwrap();
        e.ingest(&[]).unwrap();
        let (graphs, stats) = e.finish().unwrap();
        assert!(graphs.is_empty());
        assert_eq!(stats.records_in, 0);
    }
}
