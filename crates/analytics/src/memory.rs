//! Memory accounting for graph-construction state.
//!
//! "The memory need is proportional to the number of node pairs in the
//! graph" (§3.2). These estimators price that proportionality in bytes, so
//! the COGS model and the heavy-hitter experiments can reason about working
//! sets without heap profilers.

use commgraph_graph::CommGraph;

/// Approximate heap bytes for one edge entry in the aggregation hash map:
/// the `(NodeId, NodeId)` key (2 × 24 B enum), the `EdgeStats` value
/// (5 × 8 B), and amortized hash-table overhead.
pub const BYTES_PER_EDGE_ENTRY: usize = 112;

/// Approximate heap bytes per node in the finished CSR snapshot: the id,
/// its stats, and its adjacency-vector header.
pub const BYTES_PER_NODE: usize = 88;

/// Approximate heap bytes per directed adjacency slot in the snapshot.
pub const BYTES_PER_ADJ_SLOT: usize = 48;

/// Estimated working-set bytes of an aggregation map with `edges` entries.
pub fn builder_bytes(edges: usize) -> usize {
    edges * BYTES_PER_EDGE_ENTRY
}

/// Estimated heap bytes of a finished snapshot.
pub fn snapshot_bytes(g: &CommGraph) -> usize {
    g.node_count() * BYTES_PER_NODE + 2 * g.edge_count() * BYTES_PER_ADJ_SLOT
}

/// Human-readable byte count (`"1.5 MiB"`).
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::{EdgeStats, NodeId};
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    #[test]
    fn builder_estimate_is_linear() {
        assert_eq!(builder_bytes(0), 0);
        assert_eq!(builder_bytes(1000), 1000 * BYTES_PER_EDGE_ENTRY);
    }

    #[test]
    fn snapshot_estimate_tracks_graph_size() {
        let mut edges = HashMap::new();
        for i in 0..10u8 {
            edges.insert(
                (NodeId::Ip(Ipv4Addr::new(10, 0, 0, i)), NodeId::Ip(Ipv4Addr::new(10, 0, 1, i))),
                EdgeStats::default(),
            );
        }
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        let est = snapshot_bytes(&g);
        assert_eq!(est, 20 * BYTES_PER_NODE + 20 * BYTES_PER_ADJ_SLOT);
    }

    #[test]
    fn human_readable_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
        assert!(human_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
