//! The COGS model: what the telemetry and analytics cost.
//!
//! The paper's economics: an average VM costs ~$0.5/hr; the market bears a
//! security surcharge of ~$0.02/hr/VM (≈4%); telemetry collection costs
//! ~$0.5/GB; and the analytics tier should spend "a handful of VMs worth of
//! resources" per ~1000 monitored VMs (≈0.5%). [`CogsModel::assess`] turns a
//! cluster's record rate plus a measured analytics throughput into
//! dollars-per-VM-hour and checks it against those price points.

use flowlog::codec::BINARY_RECORD_SIZE;
use serde::Serialize;

/// Price and capacity assumptions.
#[derive(Debug, Clone, Serialize)]
pub struct CogsModel {
    /// Wire bytes per connection summary.
    pub record_bytes: f64,
    /// Collection price in $/GB (Table 3: ~0.5).
    pub price_per_gb_usd: f64,
    /// Hourly price of one cloud VM (paper: ~$0.5 for 8 cores).
    pub vm_price_per_hour_usd: f64,
    /// Measured analytics throughput, records/second per analytics VM.
    pub analytics_records_per_sec_per_vm: f64,
    /// The market surcharge the paper argues is viable, $/hr/VM.
    pub target_surcharge_per_vm_hour_usd: f64,
}

impl CogsModel {
    /// The paper's price points with a measured analytics capacity.
    pub fn paper_defaults(analytics_records_per_sec_per_vm: f64) -> Self {
        CogsModel {
            record_bytes: BINARY_RECORD_SIZE as f64,
            price_per_gb_usd: 0.5,
            vm_price_per_hour_usd: 0.5,
            analytics_records_per_sec_per_vm,
            target_surcharge_per_vm_hour_usd: 0.02,
        }
    }
}

/// The assessment for one cluster.
#[derive(Debug, Clone, Serialize)]
pub struct CogsReport {
    /// Monitored VMs in the cluster.
    pub monitored_vms: usize,
    /// Telemetry record rate, records/minute.
    pub records_per_min: f64,
    /// Telemetry volume, GB/day.
    pub gb_per_day: f64,
    /// Collection cost, $/day.
    pub collection_usd_per_day: f64,
    /// Analytics VMs needed if the cluster ran a *dedicated* tier (ceil).
    pub analytics_vms: usize,
    /// Analytics capacity actually consumed, in VM-equivalents — the
    /// multi-tenant SaaS tier of Figure 8 bills this fraction, which is
    /// what lets small clusters amortize.
    pub analytics_vms_fractional: f64,
    /// Fractional analytics VMs per monitored VM (paper target ≈ 0.5%).
    pub analytics_vm_fraction: f64,
    /// Total surcharge per monitored VM per hour: collection + analytics.
    pub surcharge_per_vm_hour_usd: f64,
    /// Surcharge as a fraction of the VM price (paper target ≈ 4%).
    pub surcharge_fraction_of_vm_price: f64,
    /// Whether the surcharge fits under the paper's market price point.
    pub within_target: bool,
}

impl CogsModel {
    /// Assess a cluster of `monitored_vms` emitting `records_per_min`.
    ///
    /// # Panics
    /// Panics if `monitored_vms` is zero or rates are non-positive.
    pub fn assess(&self, monitored_vms: usize, records_per_min: f64) -> CogsReport {
        assert!(monitored_vms > 0, "need at least one monitored VM");
        assert!(
            records_per_min >= 0.0 && self.analytics_records_per_sec_per_vm > 0.0,
            "rates must be positive"
        );
        let records_per_day = records_per_min * 60.0 * 24.0;
        let gb_per_day = records_per_day * self.record_bytes / 1e9;
        let collection_usd_per_day = gb_per_day * self.price_per_gb_usd;

        let records_per_sec = records_per_min / 60.0;
        let analytics_vms_fractional = records_per_sec / self.analytics_records_per_sec_per_vm;
        let analytics_vms = (analytics_vms_fractional.ceil() as usize).max(1);
        // SaaS pricing (Figure 8): customers pay for the capacity fraction
        // they consume of a shared analytics tier, not whole VMs.
        let analytics_usd_per_hour = analytics_vms_fractional * self.vm_price_per_hour_usd;

        let surcharge_per_vm_hour_usd =
            (collection_usd_per_day / 24.0 + analytics_usd_per_hour) / monitored_vms as f64;
        let surcharge_fraction_of_vm_price = surcharge_per_vm_hour_usd / self.vm_price_per_hour_usd;
        CogsReport {
            monitored_vms,
            records_per_min,
            gb_per_day,
            collection_usd_per_day,
            analytics_vms,
            analytics_vms_fractional,
            analytics_vm_fraction: analytics_vms_fractional / monitored_vms as f64,
            surcharge_per_vm_hour_usd,
            surcharge_fraction_of_vm_price,
            within_target: surcharge_per_vm_hour_usd <= self.target_surcharge_per_vm_hour_usd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k8s_paas_scale_is_cheap() {
        // 390 VMs, 68K records/min, analytics VM doing 100K records/s.
        let model = CogsModel::paper_defaults(100_000.0);
        let r = model.assess(390, 68_000.0);
        assert_eq!(r.analytics_vms, 1, "one analytics VM suffices");
        assert!(r.analytics_vm_fraction < 0.005, "well under 0.5%");
        assert!(r.within_target, "surcharge {} must fit $0.02", r.surcharge_per_vm_hour_usd);
        assert!(r.gb_per_day > 0.0);
    }

    #[test]
    fn kquery_scale_needs_more_but_still_fits() {
        let model = CogsModel::paper_defaults(100_000.0);
        let r = model.assess(1400, 2_300_000.0);
        assert!(r.analytics_vms >= 1);
        assert!(
            r.analytics_vm_fraction < 0.01,
            "handful of VMs per 1400: {}",
            r.analytics_vm_fraction
        );
        assert!(r.within_target, "surcharge {}", r.surcharge_per_vm_hour_usd);
    }

    #[test]
    fn slow_analytics_blows_the_budget() {
        // An analytics VM that only does 500 records/s needs a fleet.
        let model = CogsModel::paper_defaults(500.0);
        let r = model.assess(1400, 2_300_000.0);
        assert!(r.analytics_vms > 70);
        assert!(!r.within_target, "must exceed the $0.02 price point");
    }

    #[test]
    fn collection_cost_scales_with_volume() {
        let model = CogsModel::paper_defaults(100_000.0);
        let small = model.assess(100, 1_000.0);
        let big = model.assess(100, 100_000.0);
        assert!(big.collection_usd_per_day > small.collection_usd_per_day * 50.0);
    }

    #[test]
    fn minimum_one_analytics_vm() {
        let model = CogsModel::paper_defaults(1e9);
        let r = model.assess(4, 332.0);
        assert_eq!(r.analytics_vms, 1);
    }

    #[test]
    #[should_panic(expected = "monitored")]
    fn zero_vms_panics() {
        CogsModel::paper_defaults(1.0).assess(0, 1.0);
    }
}
