//! Count-Min sketch: approximate per-edge byte counters in fixed memory.
//!
//! SpaceSaving answers "who are the top-k edges"; Count-Min answers "about
//! how many bytes did *this particular* edge move" for **any** edge, still
//! in constant memory. Together they are the streaming substitute for the
//! full aggregation map when a deployment has too many node pairs: exactly
//! the §3.2 trade-off ("the memory need is proportional to the number of
//! node pairs … one potential mitigation is to focus on the heavy hitters").
//!
//! Standard guarantees for width `w`, depth `d`: estimates never
//! undercount, and overcount by at most `e·total/w` with probability
//! `1 − (1/2)^d` (conservatively stated; this implementation uses the usual
//! independent-row-hash construction).

use std::hash::Hash;

/// Count-Min sketch over 64-bit-hashable items with `u64` weights.
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    rows: Vec<Vec<u64>>,
    seeds: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Sketch with `depth` rows of `width` counters each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        let seeds =
            (0..depth as u64).map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i * 2 + 1)).collect();
        CountMin { width, rows: vec![vec![0; width]; depth], seeds, total: 0 }
    }

    /// Dimension the sketch from accuracy targets: overestimate at most
    /// `epsilon × total` with failure probability `delta`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMin::new(width, depth)
    }

    /// Total weight offered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Heap bytes used by the counters.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * std::mem::size_of::<u64>()
    }

    fn index(&self, row: usize, h: u64) -> usize {
        // Per-row mix of the item hash with the row seed.
        let mut z = h ^ self.seeds[row];
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.width
    }

    /// Add `weight` for `item`.
    pub fn insert<T: Hash>(&mut self, item: &T, weight: u64) {
        let h = commgraph_graph::cardinality::hash64(item);
        for row in 0..self.rows.len() {
            let i = self.index(row, h);
            self.rows[row][i] = self.rows[row][i].saturating_add(weight);
        }
        self.total = self.total.saturating_add(weight);
    }

    /// Point estimate for `item`: never below the true weight.
    pub fn estimate<T: Hash>(&self, item: &T) -> u64 {
        let h = commgraph_graph::cardinality::hash64(item);
        (0..self.rows.len()).map(|row| self.rows[row][self.index(row, h)]).min().unwrap_or(0)
    }

    /// Merge another sketch of identical dimensions.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.rows.len(), other.rows.len(), "depth mismatch");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(*y);
            }
        }
        self.total = self.total.saturating_add(other.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_undercounts() {
        let mut cm = CountMin::new(64, 4);
        for i in 0..500u32 {
            cm.insert(&i, (i as u64 % 7) + 1);
        }
        for i in 0..500u32 {
            let true_w = (i as u64 % 7) + 1;
            assert!(cm.estimate(&i) >= true_w, "item {i}");
        }
    }

    #[test]
    fn heavy_items_are_accurate() {
        let mut cm = CountMin::with_error(0.001, 0.01);
        cm.insert(&"elephant", 1_000_000);
        for i in 0..2_000u32 {
            cm.insert(&i, 10);
        }
        let est = cm.estimate(&"elephant");
        // Error bound: e/width × total ≈ 0.001 × 1.02M ≈ 1K.
        assert!(est >= 1_000_000);
        assert!(est <= 1_010_000, "estimate {est}");
    }

    #[test]
    fn absent_items_estimate_small() {
        let mut cm = CountMin::with_error(0.001, 0.01);
        for i in 0..1000u32 {
            cm.insert(&i, 100);
        }
        let ghost = cm.estimate(&"never-inserted");
        assert!(ghost <= cm.total() / 500, "ghost estimate {ghost}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountMin::new(128, 4);
        let mut b = CountMin::new(128, 4);
        let mut c = CountMin::new(128, 4);
        for i in 0..200u32 {
            if i % 2 == 0 {
                a.insert(&i, 5);
            } else {
                b.insert(&i, 5);
            }
            c.insert(&i, 5);
        }
        a.merge(&b);
        for i in 0..200u32 {
            assert_eq!(a.estimate(&i), c.estimate(&i));
        }
        assert_eq!(a.total(), c.total());
    }

    #[test]
    fn memory_is_fixed() {
        let cm = CountMin::new(1 << 12, 4);
        assert_eq!(cm.memory_bytes(), 4 * 4096 * 8);
    }

    #[test]
    fn sizing_from_error_targets() {
        let cm = CountMin::with_error(0.01, 0.05);
        assert!(cm.memory_bytes() < 64 * 1024, "1% error fits in tens of KiB");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_mismatched() {
        let mut a = CountMin::new(64, 4);
        a.merge(&CountMin::new(128, 4));
    }
}
