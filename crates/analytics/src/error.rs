//! Analytics error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the analytics tier.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// The engine was used after shutdown.
    EngineClosed,
    /// A worker thread panicked or disconnected unexpectedly.
    WorkerFailed(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid analytics config: {m}"),
            Error::EngineClosed => write!(f, "engine already shut down"),
            Error::WorkerFailed(m) => write!(f, "worker failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::EngineClosed.to_string().contains("shut down"));
    }
}
