//! SpaceSaving heavy-hitter sketch (Metwally et al.).
//!
//! The offline collapse rule needs per-node totals, which means holding
//! every node in memory. The streaming tier instead tracks only the top-k
//! heavy hitters with bounded error: any item whose true weight exceeds
//! `total_weight / capacity` is guaranteed to be tracked. This is the
//! "focus on the heavy hitters" mitigation of §3.2.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// A tracked item with its estimated weight and error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<T> {
    /// The item.
    pub item: T,
    /// Estimated weight; never less than the true weight.
    pub count: u64,
    /// Maximum overestimation: `count − error ≤ true ≤ count`.
    pub error: u64,
}

/// SpaceSaving sketch with a fixed number of counters.
///
/// ```
/// use analytics::SpaceSaving;
///
/// let mut ss = SpaceSaving::new(8);
/// ss.insert("elephant".to_string(), 1_000);
/// for i in 0..100u32 { ss.insert(i.to_string(), 1); }
/// assert_eq!(ss.top(1)[0].item, "elephant");
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving<T: Hash + Eq + Ord + Clone> {
    capacity: usize,
    counters: HashMap<T, (u64, u64)>, // item -> (count, error)
    /// Count-ordered mirror of `counters`, so the eviction victim (minimum
    /// count) is the first element — O(log n) per update instead of a full
    /// scan per eviction, which dominates on high-cardinality streams.
    order: BTreeSet<(u64, T)>,
    total: u64,
}

impl<T: Hash + Eq + Ord + Clone> SpaceSaving<T> {
    /// Sketch holding at most `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            total: 0,
        }
    }

    /// Total weight offered so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of counters in use.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Offer `weight` for `item`.
    pub fn insert(&mut self, item: T, weight: u64) {
        self.total += weight;
        if let Some((c, _)) = self.counters.get_mut(&item) {
            let old = *c;
            *c += weight;
            let new = *c;
            self.order.remove(&(old, item.clone()));
            self.order.insert((new, item));
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item.clone(), (weight, 0));
            self.order.insert((weight, item));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // the error bound. A zero-capacity sketch has nothing to evict —
        // drop the item (it still counts toward `total`).
        let Some((min_count, min_item)) = self.order.pop_first() else {
            return;
        };
        self.counters.remove(&min_item);
        self.counters.insert(item.clone(), (min_count + weight, min_count));
        self.order.insert((min_count + weight, item));
    }

    /// The top `k` entries by estimated weight, descending.
    pub fn top(&self, k: usize) -> Vec<Entry<T>> {
        let mut v: Vec<Entry<T>> = self
            .counters
            .iter()
            .map(|(item, (count, error))| Entry {
                item: item.clone(),
                count: *count,
                error: *error,
            })
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.count));
        v.truncate(k);
        v
    }

    /// Items whose *guaranteed* weight (`count − error`) is at least
    /// `threshold_frac` of the total — safe heavy-hitter decisions.
    pub fn guaranteed_heavy_hitters(&self, threshold_frac: f64) -> Vec<Entry<T>> {
        assert!((0.0..=1.0).contains(&threshold_frac), "threshold in [0,1]");
        let floor = (self.total as f64 * threshold_frac) as u64;
        let mut v: Vec<Entry<T>> = self
            .counters
            .iter()
            .filter(|(_, (count, error))| count.saturating_sub(*error) >= floor && *count > 0)
            .map(|(item, (count, error))| Entry {
                item: item.clone(),
                count: *count,
                error: *error,
            })
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.count));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(10);
        for i in 0..5u32 {
            s.insert(i, (i as u64 + 1) * 10);
        }
        let top = s.top(5);
        assert_eq!(top[0].item, 4);
        assert_eq!(top[0].count, 50);
        assert!(top.iter().all(|e| e.error == 0), "no eviction, no error");
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        let mut s = SpaceSaving::new(16);
        // Two elephants in a stream of 2000 mice.
        for round in 0..100u64 {
            s.insert(0u32, 1000);
            s.insert(1u32, 800);
            for m in 0..20u32 {
                s.insert(1000 + (round as u32 * 20 + m) % 500, 1);
            }
        }
        let top = s.top(2);
        let items: Vec<u32> = top.iter().map(|e| e.item).collect();
        assert!(items.contains(&0) && items.contains(&1), "elephants tracked: {items:?}");
        // SpaceSaving guarantee: estimate >= true weight.
        assert!(top.iter().find(|e| e.item == 0).unwrap().count >= 100_000);
    }

    #[test]
    fn count_bounds_hold() {
        let mut s = SpaceSaving::new(4);
        let true_weight_of_7 = 500u64;
        s.insert(7u32, true_weight_of_7);
        for i in 0..100u32 {
            s.insert(i + 100, 10);
        }
        if let Some(e) = s.top(4).into_iter().find(|e| e.item == 7) {
            assert!(e.count >= true_weight_of_7, "never underestimates");
            assert!(e.count - e.error <= true_weight_of_7, "lower bound holds");
        }
    }

    #[test]
    fn guaranteed_heavy_hitters_are_conservative() {
        let mut s = SpaceSaving::new(8);
        s.insert("big", 9_000);
        for i in 0..50 {
            s.insert(Box::leak(format!("small{i}").into_boxed_str()) as &str, 20);
        }
        let hh = s.guaranteed_heavy_hitters(0.5);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].item, "big");
    }

    #[test]
    fn total_tracks_all_weight() {
        let mut s = SpaceSaving::new(2);
        s.insert(1u8, 5);
        s.insert(2u8, 5);
        s.insert(3u8, 5);
        assert_eq!(s.total(), 15, "evicted weight still counted in total");
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SpaceSaving::<u32>::new(0);
    }
}
