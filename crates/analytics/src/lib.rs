//! Low-COGS streaming analytics (§3.2, Figure 8).
//!
//! The paper's viability argument is economic: roughly 1000 VMs' worth of
//! telemetry must be analyzable with "a handful of VMs worth of resources"
//! (~0.5% surcharge). This crate is that analytics tier in miniature:
//!
//! * [`engine`] — a sharded mini-batch pipeline: records are hashed by flow
//!   identity onto worker threads, each worker runs the group-by-aggregate
//!   that builds graph edges, and per-window shards merge into
//!   [`commgraph_graph::CommGraph`] snapshots. Sharding by edge key makes
//!   worker state disjoint, so the merge is trivial and the result is
//!   bit-identical to a single-threaded build.
//! * [`sharded`] — the multi-subscription front door: subscription ids
//!   hash onto shard slots, each subscription gets an isolated [`engine`]
//!   instance, and finish merges shard outputs deterministically.
//! * [`sketch`] — SpaceSaving heavy-hitter tracking, the streaming
//!   counterpart of the offline collapse threshold.
//! * [`countmin`] — Count-Min point estimates for arbitrary edges in fixed
//!   memory (the other half of the heavy-hitter mitigation).
//! * [`memory`] — memory accounting for builder state ("the memory need is
//!   proportional to the number of node pairs in the graph").
//! * [`cogs`] — the dollars: collection cost at provider prices, analytics
//!   capacity, and the resulting surcharge per monitored VM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cogs;
pub mod countmin;
pub mod engine;
pub mod error;
pub mod memory;
pub mod sharded;
pub mod sketch;

pub use cogs::{CogsModel, CogsReport};
pub use countmin::CountMin;
pub use engine::{EngineConfig, EngineStats, StreamEngine};
pub use error::{Error, Result};
pub use sharded::{ShardedConfig, ShardedEngine, ShardedStats, SubscriptionReport};
pub use sketch::SpaceSaving;
