//! Multi-subscription front door: hash-sharded per-subscription engines.
//!
//! A provider-side deployment watches many subscriptions at once, and the
//! paper's COGS argument (§3.2) only holds if one analytics tier can serve
//! all of them. [`ShardedEngine`] is that front door: records arrive tagged
//! with their subscription id, the id hashes onto one of `shards` shard
//! slots, and each subscription gets its own [`StreamEngine`] inside its
//! shard. Sharding is therefore two-level — by subscription id across
//! shards, then by canonical flow key across the engine's workers — which
//! keeps every subscription's graph state fully isolated (a hard tenancy
//! requirement) while still parallelizing within a busy subscription.
//!
//! Determinism contract: [`ShardedEngine::finish`] walks shards and their
//! `BTreeMap`-ordered subscriptions, then emits per-subscription reports
//! sorted by subscription id. The output is bit-identical for any shard
//! count, and the merged cross-shard totals are plain sums of per-engine
//! stats, so shard count is a throughput knob, never a semantics knob.

use crate::engine::{EngineConfig, EngineStats, StreamEngine};
use crate::error::{Error, Result};
use commgraph_graph::cardinality::hash64;
use commgraph_graph::CommGraph;
use flowlog::record::ConnSummary;
use serde::Serialize;
use std::collections::BTreeMap;

/// Configuration of the multi-subscription front door.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard slots to spread subscriptions over (≥ 1). Each slot holds the
    /// engines of the subscriptions that hash to it.
    pub shards: usize,
    /// Template applied to every per-subscription [`StreamEngine`]. Its
    /// `workers` field controls flow-key sharding *within* a subscription.
    pub engine: EngineConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig { shards: 2, engine: EngineConfig::default() }
    }
}

/// Everything one subscription produced: its windowed graphs and the stats
/// of the engine that built them.
#[derive(Debug)]
pub struct SubscriptionReport {
    /// The subscription id records were ingested under.
    pub subscription: String,
    /// One graph per closed window, in time order.
    pub graphs: Vec<CommGraph>,
    /// The per-subscription engine's counters.
    pub stats: EngineStats,
}

/// Cross-shard totals, merged deterministically at finish.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShardedStats {
    /// Distinct subscriptions that ingested at least one batch.
    pub subscriptions: usize,
    /// Shard slots configured.
    pub shards: usize,
    /// Sum of per-subscription `records_in`.
    pub records_in: u64,
    /// Sum of per-subscription `records_kept`.
    pub records_kept: u64,
    /// Sum of per-subscription distinct edge entries — the memory driver
    /// across the whole tier.
    pub edge_entries: usize,
    /// Subscriptions resident in each shard slot, by slot index — the
    /// balance picture (`hash64(subscription) % shards`).
    pub per_shard_subscriptions: Vec<usize>,
}

/// The running multi-subscription engine. Create, `ingest` batches tagged
/// with their subscription, then `finish` for per-subscription reports plus
/// merged totals.
pub struct ShardedEngine {
    cfg: ShardedConfig,
    shards: Vec<BTreeMap<String, StreamEngine>>,
}

impl ShardedEngine {
    /// Validate the config and set up empty shard slots. Per-subscription
    /// engines spawn lazily on the first batch for their subscription.
    pub fn new(cfg: ShardedConfig) -> Result<Self> {
        if cfg.shards == 0 {
            return Err(Error::InvalidConfig("need at least one shard".into()));
        }
        // Fail template errors at the front door, not on first ingest.
        if cfg.engine.workers == 0 {
            return Err(Error::InvalidConfig("engine template needs at least one worker".into()));
        }
        if cfg.engine.window_len == 0 {
            return Err(Error::InvalidConfig(
                "engine template window length must be positive".into(),
            ));
        }
        let shards = (0..cfg.shards).map(|_| BTreeMap::new()).collect();
        Ok(ShardedEngine { cfg, shards })
    }

    /// The shard slot a subscription lives in.
    fn slot(&self, subscription: &str) -> usize {
        (hash64(&subscription) % self.shards.len() as u64) as usize
    }

    /// Offer a batch on behalf of `subscription`, spawning its engine on
    /// first contact. Blocks under that engine's backpressure only — other
    /// subscriptions are unaffected.
    pub fn ingest(&mut self, subscription: &str, records: &[ConnSummary]) -> Result<()> {
        let slot = self.slot(subscription);
        let shard = &mut self.shards[slot];
        if !shard.contains_key(subscription) {
            let engine = StreamEngine::new(self.cfg.engine.clone())?;
            shard.insert(subscription.to_string(), engine);
        }
        match shard.get_mut(subscription) {
            Some(engine) => engine.ingest(records),
            None => Err(Error::WorkerFailed("subscription engine vanished".into())),
        }
    }

    /// Subscriptions currently resident, across all shards.
    pub fn subscription_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Drain every per-subscription engine and merge.
    ///
    /// Reports come back sorted by subscription id regardless of which
    /// shard held them, and the merged stats are order-independent sums —
    /// the deterministic shard-merge contract.
    pub fn finish(self) -> Result<(Vec<SubscriptionReport>, ShardedStats)> {
        let mut per_shard_subscriptions = Vec::with_capacity(self.shards.len());
        let mut merged: BTreeMap<String, SubscriptionReport> = BTreeMap::new();
        for shard in self.shards {
            per_shard_subscriptions.push(shard.len());
            for (subscription, engine) in shard {
                let (graphs, stats) = engine.finish()?;
                merged.insert(
                    subscription.clone(),
                    SubscriptionReport { subscription, graphs, stats },
                );
            }
        }
        let stats = ShardedStats {
            subscriptions: merged.len(),
            shards: per_shard_subscriptions.len(),
            records_in: merged.values().map(|r| r.stats.records_in).sum(),
            records_kept: merged.values().map(|r| r.stats.records_kept).sum(),
            edge_entries: merged.values().map(|r| r.stats.edge_entries).sum(),
            per_shard_subscriptions,
        };
        Ok((merged.into_values().collect(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::{EdgeStats, NodeId};
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    fn records(seed: u8, n: u32) -> Vec<ConnSummary> {
        (0..n)
            .map(|i| ConnSummary {
                ts: (i as u64 % 120) * 60,
                key: FlowKey::tcp(
                    Ipv4Addr::new(10, seed, (i % 5) as u8, 1),
                    (40_000 + i % 900) as u16,
                    Ipv4Addr::new(10, seed, 9, (i % 7) as u8 + 1),
                    443,
                ),
                pkts_sent: 2,
                pkts_rcvd: 1,
                bytes_sent: 100 + i as u64,
                bytes_rcvd: 50,
            })
            .collect()
    }

    /// Per-window structural identity: window start, nodes, sorted edges.
    type Fingerprint = Vec<(u64, Vec<NodeId>, Vec<(u32, u32, EdgeStats)>)>;

    /// Full structural fingerprint: windows, nodes, and every edge's stats.
    fn fingerprint(graphs: &[CommGraph]) -> Fingerprint {
        graphs
            .iter()
            .map(|g| {
                let mut edges = Vec::new();
                for i in 0..g.node_count() as u32 {
                    for (j, st) in g.neighbors(i) {
                        if i <= *j {
                            edges.push((i, *j, *st));
                        }
                    }
                }
                edges.sort_by_key(|&(i, j, _)| (i, j));
                (g.window_start(), g.nodes().to_vec(), edges)
            })
            .collect()
    }

    #[test]
    fn shard_count_never_changes_per_subscription_output() {
        let subs: Vec<(String, Vec<ConnSummary>)> =
            (0..5u8).map(|s| (format!("sub-{s}"), records(s, 1500 + 100 * s as u32))).collect();

        // Reference: one direct engine per subscription.
        let mut reference = BTreeMap::new();
        for (name, recs) in &subs {
            let mut e = StreamEngine::new(EngineConfig::default()).unwrap();
            e.ingest(recs).unwrap();
            let (graphs, stats) = e.finish().unwrap();
            reference.insert(name.clone(), (fingerprint(&graphs), stats));
        }

        for shards in [1, 2, 4] {
            let mut front =
                ShardedEngine::new(ShardedConfig { shards, engine: EngineConfig::default() })
                    .unwrap();
            // Interleave batches across subscriptions to exercise routing.
            let longest = subs.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
            for chunk_start in (0..longest).step_by(300) {
                for (name, recs) in &subs {
                    let end = (chunk_start + 300).min(recs.len());
                    if chunk_start < end {
                        front.ingest(name, &recs[chunk_start..end]).unwrap();
                    }
                }
            }
            assert_eq!(front.subscription_count(), subs.len());
            let (reports, merged) = front.finish().unwrap();

            // Deterministic order: sorted by subscription id.
            let names: Vec<&str> = reports.iter().map(|r| r.subscription.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "{shards} shards");

            assert_eq!(reports.len(), subs.len());
            for report in &reports {
                let (ref_fp, ref_stats) = &reference[&report.subscription];
                assert_eq!(
                    &fingerprint(&report.graphs),
                    ref_fp,
                    "{} at {shards} shards",
                    report.subscription
                );
                assert_eq!(report.stats.records_in, ref_stats.records_in);
                assert_eq!(report.stats.records_kept, ref_stats.records_kept);
                assert_eq!(report.stats.edge_entries, ref_stats.edge_entries);
            }

            assert_eq!(merged.shards, shards);
            assert_eq!(merged.subscriptions, subs.len());
            assert_eq!(
                merged.records_in,
                reference.values().map(|(_, s)| s.records_in).sum::<u64>()
            );
            assert_eq!(
                merged.edge_entries,
                reference.values().map(|(_, s)| s.edge_entries).sum::<usize>()
            );
            assert_eq!(merged.per_shard_subscriptions.len(), shards);
            assert_eq!(merged.per_shard_subscriptions.iter().sum::<usize>(), subs.len());
        }
    }

    #[test]
    fn subscriptions_are_isolated() {
        let mut front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        front.ingest("tenant-a", &records(1, 400)).unwrap();
        front.ingest("tenant-b", &records(2, 700)).unwrap();
        let (reports, _) = front.finish().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].subscription, "tenant-a");
        assert_eq!(reports[0].stats.records_in, 400);
        assert_eq!(reports[1].stats.records_in, 700);
        // No address leaks across subscriptions: the 10.1/10.2 prefixes
        // stay in their own graphs.
        for (report, octet) in reports.iter().zip([1u8, 2u8]) {
            for g in &report.graphs {
                for node in g.nodes() {
                    if let NodeId::Ip(ip) = node {
                        assert_eq!(ip.octets()[1], octet, "{}", report.subscription);
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_batches_accumulate_in_one_engine() {
        let mut front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        let recs = records(3, 600);
        for chunk in recs.chunks(100) {
            front.ingest("sub", chunk).unwrap();
        }
        assert_eq!(front.subscription_count(), 1);
        let (reports, merged) = front.finish().unwrap();
        assert_eq!(reports[0].stats.records_in, 600);
        assert_eq!(merged.records_in, 600);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ShardedEngine::new(ShardedConfig { shards: 0, ..Default::default() }).is_err());
        let bad_template =
            ShardedConfig { shards: 2, engine: EngineConfig { workers: 0, ..Default::default() } };
        assert!(ShardedEngine::new(bad_template).is_err());
        let bad_window = ShardedConfig {
            shards: 2,
            engine: EngineConfig { window_len: 0, ..Default::default() },
        };
        assert!(ShardedEngine::new(bad_window).is_err());
    }

    #[test]
    fn empty_front_door_finishes_clean() {
        let front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        let (reports, merged) = front.finish().unwrap();
        assert!(reports.is_empty());
        assert_eq!(merged.subscriptions, 0);
        assert_eq!(merged.records_in, 0);
        assert_eq!(merged.per_shard_subscriptions, vec![0, 0]);
    }
}
