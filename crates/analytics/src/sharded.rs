//! Multi-subscription front door: hash-sharded per-subscription engines.
//!
//! A provider-side deployment watches many subscriptions at once, and the
//! paper's COGS argument (§3.2) only holds if one analytics tier can serve
//! all of them. [`ShardedEngine`] is that front door: records arrive tagged
//! with their subscription id, the id hashes onto one of `shards` shard
//! slots, and each subscription gets its own [`StreamEngine`] inside its
//! shard. Sharding is therefore two-level — by subscription id across
//! shards, then by canonical flow key across the engine's workers — which
//! keeps every subscription's graph state fully isolated (a hard tenancy
//! requirement) while still parallelizing within a busy subscription.
//!
//! Determinism contract: [`ShardedEngine::finish`] walks shards and their
//! `BTreeMap`-ordered subscriptions, then emits per-subscription reports
//! sorted by subscription id. The output is bit-identical for any shard
//! count, and the merged cross-shard totals are plain sums of per-engine
//! stats, so shard count is a throughput knob, never a semantics knob.
//!
//! Per-subscription health telemetry (records, watermark, window-roll lag)
//! is labeled by subscription id behind an [`obs::LabelCap`]: the first
//! `label_cap` subscriptions get their own label value, the rest share the
//! explicit `overflow` bucket — counter totals are conserved either way,
//! so tenant count can never explode the registry.

use crate::engine::{EngineConfig, EngineStats, StreamEngine};
use crate::error::{Error, Result};
use commgraph_graph::cardinality::hash64;
use commgraph_graph::CommGraph;
use flowlog::record::ConnSummary;
use flowlog::time::bucket_start;
use obs::Obs;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the multi-subscription front door.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard slots to spread subscriptions over (≥ 1). Each slot holds the
    /// engines of the subscriptions that hash to it.
    pub shards: usize,
    /// Template applied to every per-subscription [`StreamEngine`]. Its
    /// `workers` field controls flow-key sharding *within* a subscription.
    pub engine: EngineConfig,
    /// Observability handle for the front door's own telemetry: the
    /// per-subscription `commgraph_subscription_*` gauges/counters and the
    /// per-shard residency gauge. (The engine template carries its own
    /// handle for per-engine metrics.)
    pub obs: Obs,
    /// Distinct subscription label values admitted before new ones land in
    /// the shared `overflow` bucket (see [`obs::LabelCap`]).
    pub label_cap: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 2,
            engine: EngineConfig::default(),
            obs: Obs::noop(),
            label_cap: 64,
        }
    }
}

/// Health-metric handles of one subscription, resolved on first contact
/// (under the cardinality cap) and updated on every ingest.
#[derive(Debug)]
struct SubTelemetry {
    records: obs::Counter,
    watermark: obs::Gauge,
    roll_lag: obs::Gauge,
    dedup_dropped: obs::Counter,
    /// High-water record timestamp of this subscription.
    watermark_ts: u64,
    /// Start of the newest window any record opened.
    current_window: Option<u64>,
}

/// Everything one subscription produced: its windowed graphs and the stats
/// of the engine that built them.
#[derive(Debug)]
pub struct SubscriptionReport {
    /// The subscription id records were ingested under.
    pub subscription: String,
    /// One graph per closed window, in time order.
    pub graphs: Vec<CommGraph>,
    /// The per-subscription engine's counters.
    pub stats: EngineStats,
}

/// Cross-shard totals, merged deterministically at finish.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShardedStats {
    /// Distinct subscriptions that ingested at least one batch.
    pub subscriptions: usize,
    /// Shard slots configured.
    pub shards: usize,
    /// Sum of per-subscription `records_in`.
    pub records_in: u64,
    /// Sum of per-subscription `records_kept`.
    pub records_kept: u64,
    /// Sum of per-subscription distinct edge entries — the memory driver
    /// across the whole tier.
    pub edge_entries: usize,
    /// Subscriptions resident in each shard slot, by slot index — the
    /// balance picture (`hash64(subscription) % shards`).
    pub per_shard_subscriptions: Vec<usize>,
}

/// The running multi-subscription engine. Create, `ingest` batches tagged
/// with their subscription, then `finish` for per-subscription reports plus
/// merged totals.
pub struct ShardedEngine {
    cfg: ShardedConfig,
    shards: Vec<BTreeMap<String, StreamEngine>>,
    cap: obs::LabelCap,
    telemetry: BTreeMap<String, SubTelemetry>,
    /// Delivery dedup state for [`ShardedEngine::ingest_sequenced`]:
    /// subscription → source → sequence numbers already accepted.
    delivered: BTreeMap<String, BTreeMap<String, BTreeSet<u64>>>,
}

impl ShardedEngine {
    /// Validate the config and set up empty shard slots. Per-subscription
    /// engines spawn lazily on the first batch for their subscription.
    pub fn new(cfg: ShardedConfig) -> Result<Self> {
        if cfg.shards == 0 {
            return Err(Error::InvalidConfig("need at least one shard".into()));
        }
        // Fail template errors at the front door, not on first ingest.
        if cfg.engine.workers == 0 {
            return Err(Error::InvalidConfig("engine template needs at least one worker".into()));
        }
        if cfg.engine.window_len == 0 {
            return Err(Error::InvalidConfig(
                "engine template window length must be positive".into(),
            ));
        }
        let shards = (0..cfg.shards).map(|_| BTreeMap::new()).collect();
        let cap = obs::LabelCap::new(&cfg.obs, "subscription", cfg.label_cap);
        Ok(ShardedEngine {
            cfg,
            shards,
            cap,
            telemetry: BTreeMap::new(),
            delivered: BTreeMap::new(),
        })
    }

    /// The shard slot a subscription lives in.
    fn slot(&self, subscription: &str) -> usize {
        (hash64(&subscription) % self.shards.len() as u64) as usize
    }

    /// Health handles for `subscription`, resolved on first contact with
    /// the label value the cardinality cap assigns (own id or `overflow`).
    fn telemetry(&mut self, subscription: &str) -> &mut SubTelemetry {
        let cap = &self.cap;
        let o = &self.cfg.obs;
        self.telemetry.entry(subscription.to_string()).or_insert_with(|| {
            let label = cap.resolve(subscription);
            SubTelemetry {
                records: o.counter(
                    "commgraph_subscription_records_total",
                    "Records ingested per subscription through the sharded front door.",
                    &[("subscription", &label)],
                ),
                watermark: o.gauge(
                    "commgraph_subscription_watermark_seconds",
                    "High-water record timestamp seen per subscription.",
                    &[("subscription", &label)],
                ),
                roll_lag: o.gauge(
                    "commgraph_subscription_roll_lag_seconds",
                    "Lag between the newest window's nominal start and the record that rolled it open, per subscription.",
                    &[("subscription", &label)],
                ),
                dedup_dropped: o.counter(
                    "commgraph_subscription_dedup_dropped_records_total",
                    "Duplicate flush batches discarded by delivery dedup at the sharded front door, in records, per subscription.",
                    &[("subscription", &label)],
                ),
                watermark_ts: 0,
                current_window: None,
            }
        })
    }

    /// Offer a batch on behalf of `subscription`, spawning its engine on
    /// first contact. Blocks under that engine's backpressure only — other
    /// subscriptions are unaffected.
    pub fn ingest(&mut self, subscription: &str, records: &[ConnSummary]) -> Result<()> {
        let window_len = self.cfg.engine.window_len;
        let telemetry = self.telemetry(subscription);
        let mut saw_records = false;
        for r in records {
            saw_records = true;
            telemetry.watermark_ts = telemetry.watermark_ts.max(r.ts);
            let window = bucket_start(r.ts, window_len);
            if telemetry.current_window.is_some_and(|cur| window > cur) {
                telemetry.roll_lag.set((r.ts - window) as f64);
            }
            if telemetry.current_window.is_none_or(|cur| window > cur) {
                telemetry.current_window = Some(window);
            }
        }
        if saw_records {
            telemetry.records.add(records.len() as u64);
            telemetry.watermark.set(telemetry.watermark_ts as f64);
        }
        let slot = self.slot(subscription);
        let shard = &mut self.shards[slot];
        if !shard.contains_key(subscription) {
            let engine = StreamEngine::new(self.cfg.engine.clone())?;
            shard.insert(subscription.to_string(), engine);
            self.cfg
                .obs
                .gauge(
                    "commgraph_shard_subscription_entries",
                    "Subscriptions resident in one shard slot of the sharded engine.",
                    &[("shard", &slot.to_string())],
                )
                .set(shard.len() as f64);
        }
        match shard.get_mut(subscription) {
            Some(engine) => engine.ingest(records),
            None => Err(Error::WorkerFailed("subscription engine vanished".into())),
        }
    }

    /// Offer a flush batch with at-least-once delivery semantics: `source`
    /// names the producing agent (e.g. its IP) and `seq` its monotone batch
    /// sequence number. The first `(source, seq)` arrival is ingested like
    /// [`ShardedEngine::ingest`] and returns `Ok(true)`; any re-delivery —
    /// a duplicated packet, or a crashed agent replaying its last flush —
    /// is discarded whole, counted on
    /// `commgraph_subscription_dedup_dropped_records_total`, and returns
    /// `Ok(false)`. Delivery dedup is per subscription, so sources in
    /// different subscriptions never collide.
    pub fn ingest_sequenced(
        &mut self,
        subscription: &str,
        source: &str,
        seq: u64,
        records: &[ConnSummary],
    ) -> Result<bool> {
        let fresh = self
            .delivered
            .entry(subscription.to_string())
            .or_default()
            .entry(source.to_string())
            .or_default()
            .insert(seq);
        if !fresh {
            let dropped = records.len() as u64;
            self.telemetry(subscription).dedup_dropped.add(dropped);
            return Ok(false);
        }
        self.ingest(subscription, records)?;
        Ok(true)
    }

    /// Subscriptions currently resident, across all shards.
    pub fn subscription_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Drain every per-subscription engine and merge.
    ///
    /// Reports come back sorted by subscription id regardless of which
    /// shard held them, and the merged stats are order-independent sums —
    /// the deterministic shard-merge contract.
    pub fn finish(self) -> Result<(Vec<SubscriptionReport>, ShardedStats)> {
        let mut per_shard_subscriptions = Vec::with_capacity(self.shards.len());
        let mut merged: BTreeMap<String, SubscriptionReport> = BTreeMap::new();
        for shard in self.shards {
            per_shard_subscriptions.push(shard.len());
            for (subscription, engine) in shard {
                let (graphs, stats) = engine.finish()?;
                merged.insert(
                    subscription.clone(),
                    SubscriptionReport { subscription, graphs, stats },
                );
            }
        }
        let stats = ShardedStats {
            subscriptions: merged.len(),
            shards: per_shard_subscriptions.len(),
            records_in: merged.values().map(|r| r.stats.records_in).sum(),
            records_kept: merged.values().map(|r| r.stats.records_kept).sum(),
            edge_entries: merged.values().map(|r| r.stats.edge_entries).sum(),
            per_shard_subscriptions,
        };
        Ok((merged.into_values().collect(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::{EdgeStats, NodeId};
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    fn records(seed: u8, n: u32) -> Vec<ConnSummary> {
        (0..n)
            .map(|i| ConnSummary {
                ts: (i as u64 % 120) * 60,
                key: FlowKey::tcp(
                    Ipv4Addr::new(10, seed, (i % 5) as u8, 1),
                    (40_000 + i % 900) as u16,
                    Ipv4Addr::new(10, seed, 9, (i % 7) as u8 + 1),
                    443,
                ),
                pkts_sent: 2,
                pkts_rcvd: 1,
                bytes_sent: 100 + i as u64,
                bytes_rcvd: 50,
            })
            .collect()
    }

    /// Per-window structural identity: window start, nodes, sorted edges.
    type Fingerprint = Vec<(u64, Vec<NodeId>, Vec<(u32, u32, EdgeStats)>)>;

    /// Full structural fingerprint: windows, nodes, and every edge's stats.
    fn fingerprint(graphs: &[CommGraph]) -> Fingerprint {
        graphs
            .iter()
            .map(|g| {
                let mut edges = Vec::new();
                for i in 0..g.node_count() as u32 {
                    for (j, st) in g.neighbors(i) {
                        if i <= *j {
                            edges.push((i, *j, *st));
                        }
                    }
                }
                edges.sort_by_key(|&(i, j, _)| (i, j));
                (g.window_start(), g.nodes().to_vec(), edges)
            })
            .collect()
    }

    #[test]
    fn shard_count_never_changes_per_subscription_output() {
        let subs: Vec<(String, Vec<ConnSummary>)> =
            (0..5u8).map(|s| (format!("sub-{s}"), records(s, 1500 + 100 * s as u32))).collect();

        // Reference: one direct engine per subscription.
        let mut reference = BTreeMap::new();
        for (name, recs) in &subs {
            let mut e = StreamEngine::new(EngineConfig::default()).unwrap();
            e.ingest(recs).unwrap();
            let (graphs, stats) = e.finish().unwrap();
            reference.insert(name.clone(), (fingerprint(&graphs), stats));
        }

        for shards in [1, 2, 4] {
            let mut front =
                ShardedEngine::new(ShardedConfig { shards, ..Default::default() }).unwrap();
            // Interleave batches across subscriptions to exercise routing.
            let longest = subs.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
            for chunk_start in (0..longest).step_by(300) {
                for (name, recs) in &subs {
                    let end = (chunk_start + 300).min(recs.len());
                    if chunk_start < end {
                        front.ingest(name, &recs[chunk_start..end]).unwrap();
                    }
                }
            }
            assert_eq!(front.subscription_count(), subs.len());
            let (reports, merged) = front.finish().unwrap();

            // Deterministic order: sorted by subscription id.
            let names: Vec<&str> = reports.iter().map(|r| r.subscription.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "{shards} shards");

            assert_eq!(reports.len(), subs.len());
            for report in &reports {
                let (ref_fp, ref_stats) = &reference[&report.subscription];
                assert_eq!(
                    &fingerprint(&report.graphs),
                    ref_fp,
                    "{} at {shards} shards",
                    report.subscription
                );
                assert_eq!(report.stats.records_in, ref_stats.records_in);
                assert_eq!(report.stats.records_kept, ref_stats.records_kept);
                assert_eq!(report.stats.edge_entries, ref_stats.edge_entries);
            }

            assert_eq!(merged.shards, shards);
            assert_eq!(merged.subscriptions, subs.len());
            assert_eq!(
                merged.records_in,
                reference.values().map(|(_, s)| s.records_in).sum::<u64>()
            );
            assert_eq!(
                merged.edge_entries,
                reference.values().map(|(_, s)| s.edge_entries).sum::<usize>()
            );
            assert_eq!(merged.per_shard_subscriptions.len(), shards);
            assert_eq!(merged.per_shard_subscriptions.iter().sum::<usize>(), subs.len());
        }
    }

    #[test]
    fn subscriptions_are_isolated() {
        let mut front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        front.ingest("tenant-a", &records(1, 400)).unwrap();
        front.ingest("tenant-b", &records(2, 700)).unwrap();
        let (reports, _) = front.finish().unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].subscription, "tenant-a");
        assert_eq!(reports[0].stats.records_in, 400);
        assert_eq!(reports[1].stats.records_in, 700);
        // No address leaks across subscriptions: the 10.1/10.2 prefixes
        // stay in their own graphs.
        for (report, octet) in reports.iter().zip([1u8, 2u8]) {
            for g in &report.graphs {
                for node in g.nodes() {
                    if let NodeId::Ip(ip) = node {
                        assert_eq!(ip.octets()[1], octet, "{}", report.subscription);
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_batches_accumulate_in_one_engine() {
        let mut front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        let recs = records(3, 600);
        for chunk in recs.chunks(100) {
            front.ingest("sub", chunk).unwrap();
        }
        assert_eq!(front.subscription_count(), 1);
        let (reports, merged) = front.finish().unwrap();
        assert_eq!(reports[0].stats.records_in, 600);
        assert_eq!(merged.records_in, 600);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ShardedEngine::new(ShardedConfig { shards: 0, ..Default::default() }).is_err());
        let bad_template = ShardedConfig {
            shards: 2,
            engine: EngineConfig { workers: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(ShardedEngine::new(bad_template).is_err());
        let bad_window = ShardedConfig {
            shards: 2,
            engine: EngineConfig { window_len: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(ShardedEngine::new(bad_window).is_err());
    }

    #[test]
    fn per_subscription_telemetry_tracks_records_watermark_and_roll_lag() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let cfg = ShardedConfig { obs: Obs::new(registry.clone()), ..Default::default() };
        let window_len = cfg.engine.window_len;
        let mut front = ShardedEngine::new(cfg).unwrap();
        // Two windows for tenant-a; the second opens 25 s late.
        let mut recs = records(1, 40);
        for r in recs.iter_mut().skip(20) {
            r.ts = window_len + 25 + (r.ts % 30);
        }
        front.ingest("tenant-a", &recs[..20]).unwrap();
        front.ingest("tenant-a", &recs[20..]).unwrap();
        front.ingest("tenant-b", &records(2, 10)).unwrap();

        let sub =
            |name: &str, metric: &str| registry.gauge(metric, "", &[("subscription", name)]).get();
        assert_eq!(
            registry
                .counter(
                    "commgraph_subscription_records_total",
                    "",
                    &[("subscription", "tenant-a")]
                )
                .get(),
            40
        );
        assert_eq!(
            sub("tenant-a", "commgraph_subscription_watermark_seconds"),
            recs.iter().map(|r| r.ts).max().unwrap() as f64
        );
        assert_eq!(sub("tenant-a", "commgraph_subscription_roll_lag_seconds"), 25.0);
        // Shard residency gauges cover both tenants, whichever slots they hash to.
        let resident: f64 = registry
            .snapshot()
            .iter()
            .filter(|m| m.name == "commgraph_shard_subscription_entries")
            .map(|m| match m.value {
                obs::SnapshotValue::Gauge(v) => v,
                _ => 0.0,
            })
            .sum();
        assert_eq!(resident, 2.0);
        front.finish().unwrap();
    }

    #[test]
    fn cardinality_cap_routes_overflow_and_conserves_totals() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let cfg =
            ShardedConfig { obs: Obs::new(registry.clone()), label_cap: 2, ..Default::default() };
        let mut front = ShardedEngine::new(cfg).unwrap();
        let mut expected_total = 0u64;
        for (i, n) in [100u32, 200, 300, 400, 500].iter().enumerate() {
            front.ingest(&format!("sub-{i}"), &records(i as u8, *n)).unwrap();
            expected_total += *n as u64;
        }
        let snapshot = registry.snapshot();
        let label_values: Vec<String> = snapshot
            .iter()
            .filter(|m| m.name == "commgraph_subscription_records_total")
            .filter_map(|m| m.labels.iter().find(|(k, _)| k == "subscription"))
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(
            label_values,
            vec!["overflow".to_string(), "sub-0".to_string(), "sub-1".to_string()],
            "two admitted + one shared overflow bucket"
        );
        let capped_sum: u64 = snapshot
            .iter()
            .filter(|m| m.name == "commgraph_subscription_records_total")
            .map(|m| match m.value {
                obs::SnapshotValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(capped_sum, expected_total, "overflow bucket conserves record totals");
        let routed = registry
            .counter("commgraph_obs_label_overflow_total", "", &[("family", "subscription")])
            .get();
        assert_eq!(routed, 3, "sub-2, sub-3, sub-4 each routed once at first contact");
        // The cap changes labels only, never the analytics output.
        let (reports, merged) = front.finish().unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(merged.records_in, expected_total);
    }

    #[test]
    fn sequenced_ingest_discards_redelivered_batches() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let cfg = ShardedConfig { obs: Obs::new(registry.clone()), ..Default::default() };
        let mut front = ShardedEngine::new(cfg).unwrap();
        let recs = records(1, 60);
        assert!(front.ingest_sequenced("tenant-a", "10.1.0.1", 0, &recs[..30]).unwrap());
        assert!(front.ingest_sequenced("tenant-a", "10.1.0.1", 1, &recs[30..]).unwrap());
        // Replay of flush 1 (crash + replay, or a duplicated packet).
        assert!(!front.ingest_sequenced("tenant-a", "10.1.0.1", 1, &recs[30..]).unwrap());
        // Same (source, seq) under another subscription is independent.
        assert!(front.ingest_sequenced("tenant-b", "10.1.0.1", 1, &records(2, 10)).unwrap());
        let dropped = registry
            .counter(
                "commgraph_subscription_dedup_dropped_records_total",
                "",
                &[("subscription", "tenant-a")],
            )
            .get();
        assert_eq!(dropped, 30, "the whole replayed batch is counted, in records");
        let (reports, _) = front.finish().unwrap();
        assert_eq!(reports[0].stats.records_in, 60, "replay never reaches the engine");
    }

    #[test]
    fn empty_front_door_finishes_clean() {
        let front = ShardedEngine::new(ShardedConfig::default()).unwrap();
        let (reports, merged) = front.finish().unwrap();
        assert!(reports.is_empty());
        assert_eq!(merged.subscriptions, 0);
        assert_eq!(merged.records_in, 0);
        assert_eq!(merged.per_shard_subscriptions, vec![0, 0]);
    }
}
