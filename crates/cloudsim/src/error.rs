//! Simulator error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building topologies or running simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A topology referenced a role id that does not exist.
    UnknownRole(u16),
    /// A topology or config parameter was out of range.
    InvalidConfig(String),
    /// The IP pool for a cluster was exhausted.
    IpPoolExhausted {
        /// How many addresses the pool holds.
        capacity: usize,
    },
    /// An attack scenario referenced an IP not present in the topology.
    UnknownIp(std::net::Ipv4Addr),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRole(id) => write!(f, "unknown role id {id}"),
            Error::InvalidConfig(msg) => write!(f, "invalid simulator config: {msg}"),
            Error::IpPoolExhausted { capacity } => {
                write!(f, "IP pool exhausted (capacity {capacity})")
            }
            Error::UnknownIp(ip) => write!(f, "IP {ip} is not part of the topology"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        assert!(Error::UnknownRole(7).to_string().contains('7'));
        let ip = "10.1.2.3".parse().unwrap();
        assert!(Error::UnknownIp(ip).to_string().contains("10.1.2.3"));
    }
}
