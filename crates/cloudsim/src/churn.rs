//! Replica churn: autoscaling and migration events.
//!
//! The paper stresses that µsegment labels must keep up when "pods in
//! kubernetes migrate or scale up or down". Churn events change a role's
//! live replica set mid-simulation; the engine allocates fresh addresses for
//! scale-ups and retires addresses on scale-downs, so downstream analyses
//! see exactly the label-drift problem the paper describes.

use crate::roles::RoleId;
use serde::{Deserialize, Serialize};

/// One scheduled change to a role's replica count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Minute (from simulation start) the event applies.
    pub at_min: u64,
    /// Role whose replica set changes.
    pub role: RoleId,
    /// Positive to scale out, negative to scale in.
    pub delta: i32,
}

/// An ordered plan of churn events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// No churn.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Add an event (builder style). Events may be added in any order.
    pub fn with(mut self, at_min: u64, role: RoleId, delta: i32) -> Self {
        self.events.push(ChurnEvent { at_min, role, delta });
        self.events.sort_by_key(|e| e.at_min);
        self
    }

    /// Events that fire exactly at minute `t`.
    pub fn events_at(&self, t: u64) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.at_min == t)
    }

    /// All events, ordered by time.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Net replica delta for `role` over the whole plan.
    pub fn net_delta(&self, role: RoleId) -> i64 {
        self.events.iter().filter(|e| e.role == role).map(|e| e.delta as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_filters() {
        let plan =
            ChurnPlan::none().with(30, RoleId(1), 4).with(10, RoleId(0), -2).with(30, RoleId(0), 1);
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at_min).collect();
        assert_eq!(ats, vec![10, 30, 30]);
        assert_eq!(plan.events_at(30).count(), 2);
        assert_eq!(plan.events_at(11).count(), 0);
    }

    #[test]
    fn net_delta_sums_per_role() {
        let plan = ChurnPlan::none().with(1, RoleId(0), 5).with(2, RoleId(0), -2);
        assert_eq!(plan.net_delta(RoleId(0)), 3);
        assert_eq!(plan.net_delta(RoleId(9)), 0);
    }
}
