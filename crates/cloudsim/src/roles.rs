//! Role identities.
//!
//! A *role* is the unit of redundancy in cloud software: many resources run
//! the same code for scale-out, so a deployment has far fewer roles than
//! resources. This is the structural fact the paper's auto-segmentation
//! exploits, and the simulator makes it explicit so segmentations can be
//! scored against ground truth.

use serde::{Deserialize, Serialize};

/// Compact role identifier; index into a topology's role table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoleId(pub u16);

/// Broad classification of what a role does; drives default traffic shapes
/// and which analyses treat the role as a hub, client, or workload node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleKind {
    /// Public-facing request servers (web front-ends, API gateways).
    Frontend,
    /// Internal request-serving tiers (microservices, mid-tiers).
    Service,
    /// Stateful stores: databases, caches, blob stores.
    Datastore,
    /// Control-plane hubs: API servers, job managers, schedulers.
    ControlPlane,
    /// Telemetry / logging sinks.
    TelemetrySink,
    /// Batch/query workers (the KQuery executors).
    Worker,
    /// Load generators co-located in the cluster.
    LoadGenerator,
    /// External clients outside the subscription (not monitored).
    ExternalClient,
    /// External services the subscription calls out to (not monitored).
    ExternalService,
}

impl RoleKind {
    /// Whether resources of this kind live inside the subscription and thus
    /// have their NIC telemetry collected.
    pub fn is_monitored(self) -> bool {
        !matches!(self, RoleKind::ExternalClient | RoleKind::ExternalService)
    }
}

/// A role: name, kind, replica count, and the service ports it listens on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    /// Identifier; equals the role's index in the topology.
    pub id: RoleId,
    /// Human-readable name, e.g. `"frontend"` or `"k8s-apiserver"`.
    pub name: String,
    /// Broad classification.
    pub kind: RoleKind,
    /// Number of replicas (VMs/pods/clients) playing this role initially.
    pub replicas: usize,
    /// Ports this role accepts connections on; empty for pure clients.
    pub service_ports: Vec<u16>,
}

impl Role {
    /// Whether this role's replicas contribute telemetry records.
    pub fn is_monitored(&self) -> bool {
        self.kind.is_monitored()
    }

    /// The port a connection to this role lands on, chosen round-robin by a
    /// connection ordinal so multi-port roles spread load deterministically.
    ///
    /// # Panics
    /// Panics if the role has no service ports (pure clients never accept).
    pub fn service_port(&self, ordinal: u64) -> u16 {
        assert!(!self.service_ports.is_empty(), "role {:?} accepts no connections", self.name);
        self.service_ports[(ordinal % self.service_ports.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role(kind: RoleKind, ports: Vec<u16>) -> Role {
        Role { id: RoleId(0), name: "test".into(), kind, replicas: 3, service_ports: ports }
    }

    #[test]
    fn external_roles_are_unmonitored() {
        assert!(!RoleKind::ExternalClient.is_monitored());
        assert!(!RoleKind::ExternalService.is_monitored());
        assert!(RoleKind::Frontend.is_monitored());
        assert!(RoleKind::ControlPlane.is_monitored());
    }

    #[test]
    fn service_port_round_robins() {
        let r = role(RoleKind::Service, vec![80, 443]);
        assert_eq!(r.service_port(0), 80);
        assert_eq!(r.service_port(1), 443);
        assert_eq!(r.service_port(2), 80);
    }

    #[test]
    #[should_panic(expected = "accepts no connections")]
    fn portless_role_panics_on_port_request() {
        role(RoleKind::ExternalClient, vec![]).service_port(0);
    }
}
