//! Deterministic distributed-delivery simulation: the adversarial network
//! between per-host telemetry agents and the analytics front door.
//!
//! The paper's pipeline implicitly assumes flow summaries arrive promptly
//! and exactly once; in a real public cloud they arrive late, duplicated,
//! reordered, or not at all. This module makes those failure modes *seeded
//! and replayable* so the streaming-health metrics become tested contracts:
//!
//! * a **logical clock** — [`NetSim::step`] advances one tick; nothing ever
//!   reads the wall clock, so identical seeds give byte-identical runs;
//! * **per-host agents** that buffer the records their vantage reported and
//!   flush them as sequence-numbered packets;
//! * a **simulated network** with configurable latency ranges, drop rates,
//!   and duplicate delivery (reordering falls out of latency jitter);
//! * **fault scripts** ([`FaultScript`]) scheduled on ticks: agent crash +
//!   restart (losing the unflushed buffer, optionally replaying the last
//!   flush), delayed flushes, per-agent clock skew, and network partitions.
//!
//! Deliveries carry `(source, seq)` so the receiving seam (the analytics
//! tier's `ingest_sequenced`) can discard re-deliveries exactly once; a
//! clean network ([`NetConfig::clean`]) delivers every record exactly once,
//! in order, with zero latency — bit-identical to direct in-process ingest.
//!
//! Everything iterates over `BTreeMap`s and draws randomness from one seeded
//! generator in a fixed order — the same determinism discipline as the
//! simulator itself.

use crate::error::{Error, Result};
use flowlog::record::ConnSummary;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Configuration of the simulated delivery network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Seed of the network's own randomness (latency jitter, drops,
    /// duplicates). Identical seeds give byte-identical runs.
    pub seed: u64,
    /// Inclusive `(min, max)` delivery latency in ticks. A spread of two or
    /// more ticks lets later flushes overtake earlier ones (reordering).
    pub latency_ticks: (u64, u64),
    /// Probability a flushed packet is lost in transit, in `[0, 1]`.
    pub drop_rate: f64,
    /// Probability a flushed packet is delivered twice, in `[0, 1]`.
    pub duplicate_rate: f64,
    /// Agents flush their buffer on ticks divisible by this cadence (≥ 1).
    pub flush_every: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0x5EED,
            latency_ticks: (0, 2),
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            flush_every: 1,
        }
    }
}

impl NetConfig {
    /// The ideal network: zero latency, no loss, no duplication, flush
    /// every tick. A run over this config is bit-identical to direct
    /// in-process ingest (asserted by `tests/faultsim.rs`).
    pub fn clean() -> Self {
        NetConfig { latency_ticks: (0, 0), ..NetConfig::default() }
    }
}

/// What a crashing agent does with its delivery state on restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CrashMode {
    /// The unflushed buffer dies with the process; nothing is re-sent.
    LoseBuffer,
    /// The unflushed buffer still dies, but the agent conservatively
    /// re-sends its last flushed packet (same sequence number) on restart —
    /// the at-least-once pattern the receiving seam must dedup.
    ReplayLastFlush,
}

/// One scripted fault, applied at the start of its scheduled tick.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// `host`'s agent crashes for `down_ticks` ticks. Its unflushed buffer
    /// is lost, records offered while down are lost, and on restart it
    /// behaves per `mode`.
    Crash {
        /// The crashing agent's vantage address.
        host: Ipv4Addr,
        /// Ticks the agent stays down (restarts at `tick + down_ticks`).
        down_ticks: u64,
        /// Restart behavior.
        mode: CrashMode,
    },
    /// `host` keeps buffering but does not flush for `ticks` ticks — an
    /// upstream delivery stall. Everything arrives late afterwards.
    DelayFlush {
        /// The stalled agent's vantage address.
        host: Ipv4Addr,
        /// Ticks the flush is held back.
        ticks: u64,
    },
    /// `host`'s clock drifts: from this tick on, every record it buffers has
    /// `skew_secs` added to its timestamp (saturating at zero).
    SkewClock {
        /// The drifting agent's vantage address.
        host: Ipv4Addr,
        /// Signed drift in seconds.
        skew_secs: i64,
    },
    /// `hosts` are partitioned from the collector for `heal_after_ticks`
    /// ticks: they keep buffering and flush everything once healed.
    Partition {
        /// The partitioned vantage addresses.
        hosts: Vec<Ipv4Addr>,
        /// Ticks until the partition heals.
        heal_after_ticks: u64,
    },
}

/// A tick-keyed schedule of [`FaultEvent`]s.
///
/// Build programmatically with [`FaultScript::at`] or parse the text
/// grammar (statements separated by `;` or newlines, `#` comments):
///
/// ```text
/// at TICK crash HOST for N (lose|replay)
/// at TICK delay HOST for N
/// at TICK skew HOST SECS
/// at TICK partition HOST[,HOST...] for N
/// ```
///
/// ```
/// use cloudsim::net::FaultScript;
/// let s = FaultScript::parse("at 2 crash 10.0.0.1 for 3 replay; at 5 skew 10.0.0.2 -40").unwrap();
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    events: BTreeMap<u64, Vec<FaultEvent>>,
}

impl FaultScript {
    /// The empty script (a clean run).
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Schedule `event` at the start of `tick` (builder style). Events
    /// sharing a tick apply in insertion order.
    pub fn at(mut self, tick: u64, event: FaultEvent) -> Self {
        self.events.entry(tick).or_default().push(event);
        self
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse the text grammar documented on [`FaultScript`].
    pub fn parse(text: &str) -> Result<FaultScript> {
        let mut script = FaultScript::new();
        for raw in text.split(['\n', ';']) {
            let stmt = raw.split('#').next().unwrap_or("").trim();
            if stmt.is_empty() {
                continue;
            }
            let toks: Vec<&str> = stmt.split_whitespace().collect();
            let bad = |why: &str| Error::InvalidConfig(format!("fault script `{stmt}`: {why}"));
            if toks.first() != Some(&"at") {
                return Err(bad("statements start with `at TICK`"));
            }
            let tick: u64 = toks
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("expected a tick number after `at`"))?;
            let host = |i: usize| -> Result<Ipv4Addr> {
                toks.get(i)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected an IPv4 host address"))
            };
            let num = |i: usize, what: &str| -> Result<u64> {
                toks.get(i)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(&format!("expected {what}")))
            };
            let event = match toks.get(2).copied() {
                Some("crash") => {
                    if toks.get(4) != Some(&"for") {
                        return Err(bad("expected `for N` after the host"));
                    }
                    let mode = match toks.get(6).copied() {
                        Some("lose") => CrashMode::LoseBuffer,
                        Some("replay") => CrashMode::ReplayLastFlush,
                        _ => return Err(bad("crash ends with `lose` or `replay`")),
                    };
                    FaultEvent::Crash {
                        host: host(3)?,
                        down_ticks: num(5, "a down-tick count")?,
                        mode,
                    }
                }
                Some("delay") => {
                    if toks.get(4) != Some(&"for") {
                        return Err(bad("expected `for N` after the host"));
                    }
                    FaultEvent::DelayFlush { host: host(3)?, ticks: num(5, "a delay-tick count")? }
                }
                Some("skew") => {
                    let skew_secs: i64 = toks
                        .get(4)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("expected signed seconds of skew"))?;
                    FaultEvent::SkewClock { host: host(3)?, skew_secs }
                }
                Some("partition") => {
                    let hosts: Option<Vec<Ipv4Addr>> = toks
                        .get(3)
                        .map(|list| list.split(',').map(|h| h.parse().ok()).collect())
                        .unwrap_or(None);
                    let hosts = hosts.ok_or_else(|| bad("expected a comma-separated host list"))?;
                    if toks.get(4) != Some(&"for") {
                        return Err(bad("expected `for N` after the host list"));
                    }
                    FaultEvent::Partition { hosts, heal_after_ticks: num(5, "a heal-tick count")? }
                }
                _ => return Err(bad("expected crash | delay | skew | partition")),
            };
            script = script.at(tick, event);
        }
        Ok(script)
    }
}

/// One packet handed to the receiving seam: a flush batch from one agent.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The reporting agent's vantage address.
    pub source: Ipv4Addr,
    /// The agent's monotone flush sequence number — re-deliveries repeat it.
    pub seq: u64,
    /// Tick the packet left the agent.
    pub sent_tick: u64,
    /// The flushed records.
    pub records: Vec<ConnSummary>,
}

/// Counters of everything the network did, for fault-script assertions and
/// the bench's `faultsim` section.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct NetStats {
    /// Ticks stepped.
    pub ticks: u64,
    /// Records offered to agents.
    pub offered_records: u64,
    /// Records lost at the agent (crashed buffer, or offered while down).
    pub lost_at_agent_records: u64,
    /// Packets flushed into the network (replays included).
    pub flushed_packets: u64,
    /// Records flushed into the network (replays included).
    pub flushed_records: u64,
    /// Packets the network lost in transit.
    pub dropped_packets: u64,
    /// Records inside packets the network lost.
    pub dropped_records: u64,
    /// Packets the network delivered twice.
    pub duplicated_packets: u64,
    /// Packets re-sent by restarting agents ([`CrashMode::ReplayLastFlush`]).
    pub replayed_packets: u64,
    /// Packets handed to the delivery callback.
    pub delivered_packets: u64,
    /// Records handed to the delivery callback.
    pub delivered_records: u64,
    /// Delivered packets that overtook a later flush of the same source
    /// (sequence number below that source's delivered high-water mark).
    pub reordered_packets: u64,
}

/// Per-host agent state.
#[derive(Debug, Default)]
struct Agent {
    buffer: Vec<ConnSummary>,
    next_seq: u64,
    skew_secs: i64,
    down_until: Option<u64>,
    delay_until: Option<u64>,
    partition_until: Option<u64>,
    last_flush: Option<(u64, Vec<ConnSummary>)>,
    replay_pending: bool,
}

impl Agent {
    fn is_down(&self, tick: u64) -> bool {
        self.down_until.is_some_and(|t| t > tick)
    }

    fn can_flush(&self, tick: u64) -> bool {
        !self.is_down(tick)
            && self.delay_until.is_none_or(|t| t <= tick)
            && self.partition_until.is_none_or(|t| t <= tick)
    }
}

/// A packet in transit.
#[derive(Debug)]
struct Flight {
    source: Ipv4Addr,
    seq: u64,
    sent_tick: u64,
    records: Vec<ConnSummary>,
}

/// The seeded network simulation. Offer each tick's records with
/// [`NetSim::offer`], advance with [`NetSim::step`], and flush the tail
/// with [`NetSim::drain`].
#[derive(Debug)]
pub struct NetSim {
    cfg: NetConfig,
    script: FaultScript,
    tick: u64,
    next_msg: u64,
    agents: BTreeMap<Ipv4Addr, Agent>,
    /// In-transit packets keyed by `(deliver_tick, msg_id)`: within a tick,
    /// earlier sends deliver first, so reordering needs latency jitter.
    in_flight: BTreeMap<(u64, u64), Flight>,
    /// Per-source high-water delivered sequence number (reorder detection).
    delivered_seq: BTreeMap<Ipv4Addr, u64>,
    rng: StdRng,
    stats: NetStats,
}

impl NetSim {
    /// Validate the config and set up an idle network at tick zero.
    pub fn new(cfg: NetConfig, script: FaultScript) -> Result<Self> {
        if !(0.0..=1.0).contains(&cfg.drop_rate) {
            return Err(Error::InvalidConfig(format!("drop_rate {} not in [0, 1]", cfg.drop_rate)));
        }
        if !(0.0..=1.0).contains(&cfg.duplicate_rate) {
            return Err(Error::InvalidConfig(format!(
                "duplicate_rate {} not in [0, 1]",
                cfg.duplicate_rate
            )));
        }
        if cfg.flush_every == 0 {
            return Err(Error::InvalidConfig("flush_every must be at least 1".into()));
        }
        if cfg.latency_ticks.0 > cfg.latency_ticks.1 {
            return Err(Error::InvalidConfig(format!(
                "latency range ({}, {}) is inverted",
                cfg.latency_ticks.0, cfg.latency_ticks.1
            )));
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(NetSim {
            cfg,
            script,
            tick: 0,
            next_msg: 0,
            agents: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            delivered_seq: BTreeMap::new(),
            rng,
            stats: NetStats::default(),
        })
    }

    /// The current logical tick (ticks fully stepped so far).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The network's counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Offer records to their reporting agents (routed by the record's
    /// local/vantage address). Records offered to a crashed agent are lost.
    pub fn offer(&mut self, records: &[ConnSummary]) {
        let tick = self.tick;
        for r in records {
            self.stats.offered_records += 1;
            let agent = self.agents.entry(r.key.local_ip).or_default();
            if agent.is_down(tick) {
                self.stats.lost_at_agent_records += 1;
                continue;
            }
            let mut rec = *r;
            if agent.skew_secs != 0 {
                rec.ts = rec.ts.saturating_add_signed(agent.skew_secs);
            }
            agent.buffer.push(rec);
        }
    }

    /// Advance one tick: apply scripted faults, restart expired crashes
    /// (queueing replays), flush due agents, then deliver every in-flight
    /// packet whose latency elapsed, handing each to `deliver`.
    pub fn step(&mut self, mut deliver: impl FnMut(&Delivery)) {
        let tick = self.tick;
        // 1. Scripted faults for this tick.
        for event in self.script.events.remove(&tick).unwrap_or_default() {
            self.apply(tick, event);
        }
        // 2. Restarts: outage expired ⇒ the agent is back; a replaying
        //    agent conservatively re-sends its last flushed packet.
        let restarted: Vec<Ipv4Addr> = self
            .agents
            .iter()
            .filter(|(_, a)| a.down_until.is_some_and(|t| t <= tick))
            .map(|(ip, _)| *ip)
            .collect();
        for ip in restarted {
            let Some(agent) = self.agents.get_mut(&ip) else { continue };
            agent.down_until = None;
            let replay = if agent.replay_pending { agent.last_flush.clone() } else { None };
            agent.replay_pending = false;
            if let Some((seq, records)) = replay {
                self.stats.replayed_packets += 1;
                self.send(tick, ip, seq, records);
            }
        }
        // 3. Flushes, in address order.
        if tick.is_multiple_of(self.cfg.flush_every) {
            let due: Vec<Ipv4Addr> = self
                .agents
                .iter()
                .filter(|(_, a)| !a.buffer.is_empty() && a.can_flush(tick))
                .map(|(ip, _)| *ip)
                .collect();
            for ip in due {
                let Some(agent) = self.agents.get_mut(&ip) else { continue };
                let records = std::mem::take(&mut agent.buffer);
                let seq = agent.next_seq;
                agent.next_seq += 1;
                agent.last_flush = Some((seq, records.clone()));
                self.send(tick, ip, seq, records);
            }
        }
        // 4. Deliveries due this tick, in (deliver_tick, send order).
        while let Some((&(due, _), _)) = self.in_flight.first_key_value() {
            if due > tick {
                break;
            }
            let Some(((_, _), f)) = self.in_flight.pop_first() else { break };
            let high = self.delivered_seq.entry(f.source).or_insert(0);
            if f.seq < *high {
                self.stats.reordered_packets += 1;
            }
            *high = (*high).max(f.seq + 1);
            self.stats.delivered_packets += 1;
            self.stats.delivered_records += f.records.len() as u64;
            deliver(&Delivery {
                source: f.source,
                seq: f.seq,
                sent_tick: f.sent_tick,
                records: f.records,
            });
        }
        self.stats.ticks += 1;
        self.tick += 1;
    }

    /// Keep stepping until the network is quiescent: no scripted events
    /// left, every agent up with an empty buffer, nothing in flight. Bounded
    /// defensively, so a pathological script cannot spin forever.
    pub fn drain(&mut self, mut deliver: impl FnMut(&Delivery)) {
        let mut guard = 0u32;
        while !self.is_idle() && guard < 1_000_000 {
            self.step(&mut deliver);
            guard += 1;
        }
    }

    fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.script.events.is_empty()
            && self.agents.values().all(|a| {
                a.buffer.is_empty()
                    && !a.replay_pending
                    && a.down_until.is_none_or(|t| t <= self.tick)
            })
    }

    fn apply(&mut self, tick: u64, event: FaultEvent) {
        match event {
            FaultEvent::Crash { host, down_ticks, mode } => {
                let agent = self.agents.entry(host).or_default();
                self.stats.lost_at_agent_records += agent.buffer.len() as u64;
                agent.buffer.clear();
                agent.down_until = Some(tick + down_ticks);
                agent.replay_pending = mode == CrashMode::ReplayLastFlush;
            }
            FaultEvent::DelayFlush { host, ticks } => {
                self.agents.entry(host).or_default().delay_until = Some(tick + ticks);
            }
            FaultEvent::SkewClock { host, skew_secs } => {
                self.agents.entry(host).or_default().skew_secs = skew_secs;
            }
            FaultEvent::Partition { hosts, heal_after_ticks } => {
                for host in hosts {
                    self.agents.entry(host).or_default().partition_until =
                        Some(tick + heal_after_ticks);
                }
            }
        }
    }

    /// Put one packet on the wire: drop, duplicate, and latency draws in a
    /// fixed order (a clean config draws nothing, so clean runs are
    /// RNG-free).
    fn send(&mut self, tick: u64, source: Ipv4Addr, seq: u64, records: Vec<ConnSummary>) {
        self.stats.flushed_packets += 1;
        self.stats.flushed_records += records.len() as u64;
        if self.cfg.drop_rate > 0.0 && self.rng.random_bool(self.cfg.drop_rate) {
            self.stats.dropped_packets += 1;
            self.stats.dropped_records += records.len() as u64;
            return;
        }
        let copies =
            if self.cfg.duplicate_rate > 0.0 && self.rng.random_bool(self.cfg.duplicate_rate) {
                self.stats.duplicated_packets += 1;
                2
            } else {
                1
            };
        let (lo, hi) = self.cfg.latency_ticks;
        for _ in 0..copies {
            let latency = if hi > lo { lo + self.rng.random_range(0..hi - lo + 1) } else { lo };
            let id = self.next_msg;
            self.next_msg += 1;
            self.in_flight.insert(
                (tick + latency, id),
                Flight { source, seq, sent_tick: tick, records: records.clone() },
            );
        }
    }
}

/// Parameterized ready-made fault scripts — the shipped scenarios the
/// harness tests and the bench's `faultsim` section both run.
pub mod scripts {
    use super::{CrashMode, FaultEvent, FaultScript};
    use std::net::Ipv4Addr;

    /// Crash `host` at tick 2 for `down_ticks`, losing its unflushed buffer.
    pub fn crash_lose(host: Ipv4Addr, down_ticks: u64) -> FaultScript {
        FaultScript::new()
            .at(2, FaultEvent::Crash { host, down_ticks, mode: CrashMode::LoseBuffer })
    }

    /// Crash `host` at tick 2 for `down_ticks`; on restart it replays its
    /// last flushed packet (which delivery dedup must discard).
    pub fn crash_replay(host: Ipv4Addr, down_ticks: u64) -> FaultScript {
        FaultScript::new()
            .at(2, FaultEvent::Crash { host, down_ticks, mode: CrashMode::ReplayLastFlush })
    }

    /// Stall `host`'s flushes for `ticks` starting at tick 1.
    pub fn delayed_flush(host: Ipv4Addr, ticks: u64) -> FaultScript {
        FaultScript::new().at(1, FaultEvent::DelayFlush { host, ticks })
    }

    /// Skew `host`'s clock by `skew_secs` from tick 1 on.
    pub fn clock_skew(host: Ipv4Addr, skew_secs: i64) -> FaultScript {
        FaultScript::new().at(1, FaultEvent::SkewClock { host, skew_secs })
    }

    /// Partition `hosts` at tick 1, healing after `heal_after_ticks`.
    pub fn partition(hosts: Vec<Ipv4Addr>, heal_after_ticks: u64) -> FaultScript {
        FaultScript::new().at(1, FaultEvent::Partition { hosts, heal_after_ticks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn rec(ts: u64, src: u8, dst: u8) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(ip(src), 40_000, ip(dst), 443),
            pkts_sent: 2,
            pkts_rcvd: 1,
            bytes_sent: 500,
            bytes_rcvd: 100,
        }
    }

    fn collect(
        sim: &mut NetSim,
        ticks: u64,
        per_tick: impl Fn(u64) -> Vec<ConnSummary>,
    ) -> Vec<Delivery> {
        let mut out = Vec::new();
        for t in 0..ticks {
            sim.offer(&per_tick(t));
            sim.step(|d| out.push(d.clone()));
        }
        sim.drain(|d| out.push(d.clone()));
        out
    }

    #[test]
    fn clean_network_delivers_everything_once_in_order() {
        let mut sim = NetSim::new(NetConfig::clean(), FaultScript::new()).unwrap();
        let out = collect(&mut sim, 5, |t| vec![rec(t * 60, 1, 2), rec(t * 60, 3, 2)]);
        assert_eq!(sim.stats().delivered_records, 10);
        assert_eq!(sim.stats().dropped_packets, 0);
        assert_eq!(sim.stats().reordered_packets, 0);
        // Per-source sequence numbers are contiguous from zero.
        let mut per_source: BTreeMap<Ipv4Addr, Vec<u64>> = BTreeMap::new();
        for d in &out {
            per_source.entry(d.source).or_default().push(d.seq);
        }
        for (_, seqs) in per_source {
            assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let cfg = NetConfig {
            latency_ticks: (0, 3),
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            ..NetConfig::default()
        };
        let run = |seed: u64| {
            let mut sim =
                NetSim::new(NetConfig { seed, ..cfg.clone() }, FaultScript::new()).unwrap();
            let out = collect(&mut sim, 20, |t| vec![rec(t * 60, 1, 2), rec(t * 60, 2, 1)]);
            let trace: Vec<(Ipv4Addr, u64, u64, usize)> =
                out.iter().map(|d| (d.source, d.seq, d.sent_tick, d.records.len())).collect();
            (trace, sim.stats().clone())
        };
        assert_eq!(run(7), run(7), "same seed, byte-identical delivery trace");
        assert_ne!(run(7).0, run(8).0, "different seeds actually vary");
    }

    #[test]
    fn drops_and_duplicates_are_counted_exactly() {
        let cfg = NetConfig { drop_rate: 1.0, ..NetConfig::clean() };
        let mut sim = NetSim::new(cfg, FaultScript::new()).unwrap();
        let out = collect(&mut sim, 3, |t| vec![rec(t * 60, 1, 2)]);
        assert!(out.is_empty());
        assert_eq!(sim.stats().dropped_packets, 3);
        assert_eq!(sim.stats().dropped_records, 3);

        let cfg = NetConfig { duplicate_rate: 1.0, ..NetConfig::clean() };
        let mut sim = NetSim::new(cfg, FaultScript::new()).unwrap();
        let out = collect(&mut sim, 3, |t| vec![rec(t * 60, 1, 2)]);
        assert_eq!(out.len(), 6, "every packet delivered twice");
        assert_eq!(sim.stats().duplicated_packets, 3);
    }

    #[test]
    fn crash_loses_buffer_and_replay_resends_last_flush() {
        // flush_every 2 ⇒ tick 1's records sit in the buffer when the
        // crash lands at tick 2.
        let cfg = NetConfig { flush_every: 2, ..NetConfig::clean() };
        let mut sim = NetSim::new(cfg.clone(), scripts::crash_lose(ip(1), 2)).unwrap();
        let out = collect(&mut sim, 6, |t| vec![rec(t * 60, 1, 2)]);
        // Tick 0 flushes at 0; tick 1's record is lost by the crash at 2;
        // ticks 2, 3 offered while down are lost; ticks 4, 5 flush after
        // restart.
        assert_eq!(sim.stats().lost_at_agent_records, 3);
        assert_eq!(sim.stats().replayed_packets, 0);
        let delivered: u64 = out.iter().map(|d| d.records.len() as u64).sum();
        assert_eq!(delivered, 3);

        let mut sim = NetSim::new(cfg, scripts::crash_replay(ip(1), 2)).unwrap();
        let out = collect(&mut sim, 6, |t| vec![rec(t * 60, 1, 2)]);
        assert_eq!(sim.stats().replayed_packets, 1);
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        assert_eq!(seqs.iter().filter(|&&s| s == 0).count(), 2, "flush 0 arrives twice");
    }

    #[test]
    fn partition_holds_and_heals() {
        let mut sim =
            NetSim::new(NetConfig::clean(), scripts::partition(vec![ip(1), ip(3)], 3)).unwrap();
        let mut deliveries_by_tick: Vec<(u64, u64)> = Vec::new();
        for t in 0..6 {
            sim.offer(&[rec(t * 60, 1, 2), rec(t * 60, 3, 2), rec(t * 60, 5, 2)]);
            let mut n = 0u64;
            sim.step(|d| n += d.records.len() as u64);
            deliveries_by_tick.push((t, n));
        }
        sim.drain(|_| {});
        // Unpartitioned host 5 delivers every tick; 1 and 3 hold ticks 1-3
        // and release the backlog at tick 4.
        assert_eq!(deliveries_by_tick[1], (1, 1));
        assert_eq!(deliveries_by_tick[3], (3, 1));
        assert_eq!(deliveries_by_tick[4], (4, 9), "backlog of 3 ticks × 2 hosts + current");
        assert_eq!(sim.stats().delivered_records, 18, "nothing is lost, only late");
    }

    #[test]
    fn clock_skew_rewrites_buffered_timestamps() {
        let mut sim = NetSim::new(NetConfig::clean(), scripts::clock_skew(ip(1), -50)).unwrap();
        let out = collect(&mut sim, 3, |t| vec![rec(100 + t * 60, 1, 2)]);
        let ts: Vec<u64> = out.iter().flat_map(|d| d.records.iter().map(|r| r.ts)).collect();
        // Offers precede the tick's scripted events, so the skew set at
        // tick 1 first touches records offered at tick 2.
        assert_eq!(ts, vec![100, 160, 170]);
    }

    #[test]
    fn latency_jitter_reorders_and_is_detected() {
        let cfg = NetConfig { latency_ticks: (0, 3), seed: 11, ..NetConfig::default() };
        let mut sim = NetSim::new(cfg, FaultScript::new()).unwrap();
        let out = collect(&mut sim, 40, |t| vec![rec(t * 60, 1, 2)]);
        assert_eq!(out.len(), 40, "jitter never loses packets");
        assert!(sim.stats().reordered_packets > 0, "a 4-tick spread must reorder eventually");
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "delivery order differs from send order");
        assert_eq!(sorted, (0..40).collect::<Vec<_>>(), "every flush delivered exactly once");
    }

    #[test]
    fn script_grammar_round_trips() {
        let text = "
            # warm-up is clean
            at 2 crash 10.0.0.1 for 3 replay
            at 4 delay 10.0.0.2 for 2; at 5 skew 10.0.0.3 -40
            at 6 partition 10.0.0.1,10.0.0.4 for 3
        ";
        let parsed = FaultScript::parse(text).unwrap();
        let built = FaultScript::new()
            .at(
                2,
                FaultEvent::Crash { host: ip(1), down_ticks: 3, mode: CrashMode::ReplayLastFlush },
            )
            .at(4, FaultEvent::DelayFlush { host: ip(2), ticks: 2 })
            .at(5, FaultEvent::SkewClock { host: ip(3), skew_secs: -40 })
            .at(6, FaultEvent::Partition { hosts: vec![ip(1), ip(4)], heal_after_ticks: 3 });
        assert_eq!(parsed, built);
        assert_eq!(parsed.len(), 4);
        assert!(FaultScript::parse("at 2 reboot 10.0.0.1").is_err());
        assert!(FaultScript::parse("crash 10.0.0.1 for 3 lose").is_err());
        assert!(FaultScript::parse("at 2 crash nothost for 3 lose").is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = |cfg: NetConfig| NetSim::new(cfg, FaultScript::new()).is_err();
        assert!(bad(NetConfig { drop_rate: 1.5, ..NetConfig::default() }));
        assert!(bad(NetConfig { duplicate_rate: -0.1, ..NetConfig::default() }));
        assert!(bad(NetConfig { flush_every: 0, ..NetConfig::default() }));
        assert!(bad(NetConfig { latency_ticks: (3, 1), ..NetConfig::default() }));
    }
}
