//! Attack injection with labeled ground truth.
//!
//! The paper evaluates µserviceBench with "a wide range of attacks"
//! injected by a breach-and-attack-simulation tool. This module reproduces
//! the four archetypes that matter for communication-graph security — each
//! produces flows through the same telemetry path as benign traffic, plus a
//! ground-truth label so detection and containment can be scored:
//!
//! * **Lateral movement** — a breached VM probes peers it never normally
//!   talks to, and each newly "infected" VM probes further (the blast-radius
//!   scenario micro-segmentation exists to contain).
//! * **Port scan** — one source sweeps many (ip, port) pairs with tiny flows.
//! * **Exfiltration** — a breached VM streams data to an outside endpoint.
//! * **C2 beacon** — low-and-slow periodic call-outs to a command server.

use crate::error::{Error, Result};
use flowlog::record::{FlowKey, Protocol};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The attack archetypes the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Breach spreads from VM to VM over admin/service ports.
    LateralMovement,
    /// Fast sweep of many ports across many targets.
    PortScan,
    /// Bulk data push to an external endpoint.
    Exfiltration,
    /// Periodic small call-outs to an external command server.
    C2Beacon,
}

/// Configuration of one injected attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// Which archetype to run.
    pub kind: AttackKind,
    /// Minute (from simulation start) the attack begins.
    pub start_min: u64,
    /// How many minutes it stays active.
    pub duration_min: u64,
    /// The initially breached internal IP.
    pub breached: Ipv4Addr,
    /// Archetype intensity: targets/min for movement & scans, bytes/min for
    /// exfiltration, minutes between beacons for C2.
    pub intensity: u64,
}

impl AttackScenario {
    /// Minutes during which the attack is active (half-open).
    pub fn active_at(&self, minute: u64) -> bool {
        (self.start_min..self.start_min + self.duration_min).contains(&minute)
    }
}

/// One attack-generated flow for a single minute, with its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackFlow {
    /// Flow identity from the attacker-side vantage.
    pub key: FlowKey,
    /// Bytes the attacker side sends this minute.
    pub fwd_bytes: u64,
    /// Bytes returned this minute.
    pub rev_bytes: u64,
    /// Which attack produced it.
    pub kind: AttackKind,
}

/// Ports lateral movement and scans probe: SSH, RDP, WinRM, SMB, plus a few
/// service ports attackers commonly target.
const PROBE_PORTS: [u16; 8] = [22, 3389, 5985, 445, 8080, 9200, 6379, 2379];

/// External endpoints used by exfiltration / C2 (outside both simulator
/// pools, so they are unambiguously "new external peers" to the analyses).
fn external_endpoint(salt: u64) -> Ipv4Addr {
    Ipv4Addr::new(203, 0, 113, (salt % 254 + 1) as u8)
}

/// Stateful executor for one scenario. Created by the simulator at attack
/// start; stepped every minute while active.
#[derive(Debug)]
pub struct AttackState {
    scenario: AttackScenario,
    /// Lateral movement: the set of currently-infected internal IPs.
    infected: BTreeSet<Ipv4Addr>,
    /// Port-scan cursor so successive minutes sweep different ports.
    scan_cursor: u64,
    /// Ephemeral-port counter for attacker-side sockets.
    eph_port: u16,
}

impl AttackState {
    /// Initialize state for a scenario; the breached IP must belong to the
    /// simulated population.
    pub fn new(scenario: AttackScenario, population: &[Ipv4Addr]) -> Result<Self> {
        if !population.contains(&scenario.breached) {
            return Err(Error::UnknownIp(scenario.breached));
        }
        if scenario.intensity == 0 {
            return Err(Error::InvalidConfig("attack intensity must be positive".into()));
        }
        let mut infected = BTreeSet::new();
        infected.insert(scenario.breached);
        Ok(AttackState { scenario, infected, scan_cursor: 0, eph_port: 50_000 })
    }

    /// The scenario being executed.
    pub fn scenario(&self) -> &AttackScenario {
        &self.scenario
    }

    /// IPs currently compromised (ground truth for containment scoring).
    pub fn infected(&self) -> &BTreeSet<Ipv4Addr> {
        &self.infected
    }

    fn next_eph(&mut self) -> u16 {
        self.eph_port = if self.eph_port >= 60_000 { 50_000 } else { self.eph_port + 1 };
        self.eph_port
    }

    /// Generate this minute's attack flows. `population` is the current set
    /// of internal IPs (lateral movement picks victims from it).
    pub fn step<R: RngExt + ?Sized>(
        &mut self,
        minute: u64,
        population: &[Ipv4Addr],
        rng: &mut R,
    ) -> Vec<AttackFlow> {
        if !self.scenario.active_at(minute) {
            return Vec::new();
        }
        match self.scenario.kind {
            AttackKind::LateralMovement => self.step_lateral(population, rng),
            AttackKind::PortScan => self.step_scan(population, rng),
            AttackKind::Exfiltration => self.step_exfil(),
            AttackKind::C2Beacon => self.step_beacon(minute),
        }
    }

    fn step_lateral<R: RngExt + ?Sized>(
        &mut self,
        population: &[Ipv4Addr],
        rng: &mut R,
    ) -> Vec<AttackFlow> {
        let mut out = Vec::new();
        let sources: Vec<Ipv4Addr> = self.infected.iter().copied().collect();
        let mut newly_infected = Vec::new();
        for src in sources {
            for _ in 0..self.scenario.intensity {
                if population.is_empty() {
                    break;
                }
                let victim = population[rng.random_range(0..population.len())];
                if victim == src {
                    continue;
                }
                let port = PROBE_PORTS[rng.random_range(0..PROBE_PORTS.len())];
                let eph = self.next_eph();
                out.push(AttackFlow {
                    key: FlowKey {
                        local_ip: src,
                        local_port: eph,
                        remote_ip: victim,
                        remote_port: port,
                        proto: Protocol::Tcp,
                    },
                    // Probe + exploit payload: a few KB each way.
                    fwd_bytes: rng.random_range(500..8_000),
                    rev_bytes: rng.random_range(100..2_000),
                    kind: AttackKind::LateralMovement,
                });
                // A probe succeeds (infects) with 30% probability.
                if !self.infected.contains(&victim) && rng.random_range(0.0..1.0) < 0.3 {
                    newly_infected.push(victim);
                }
            }
        }
        self.infected.extend(newly_infected);
        out
    }

    fn step_scan<R: RngExt + ?Sized>(
        &mut self,
        population: &[Ipv4Addr],
        rng: &mut R,
    ) -> Vec<AttackFlow> {
        let mut out = Vec::new();
        let src = self.scenario.breached;
        for _ in 0..self.scenario.intensity {
            if population.is_empty() {
                break;
            }
            let victim = population[rng.random_range(0..population.len())];
            if victim == src {
                continue;
            }
            // Sequential port sweep: characteristic scanner signature.
            let port = 1 + (self.scan_cursor % 10_000) as u16;
            self.scan_cursor += 1;
            let eph = self.next_eph();
            out.push(AttackFlow {
                key: FlowKey {
                    local_ip: src,
                    local_port: eph,
                    remote_ip: victim,
                    remote_port: port,
                    proto: Protocol::Tcp,
                },
                // SYN probe: one or two packets worth of bytes, tiny reply.
                fwd_bytes: 120,
                rev_bytes: 60,
                kind: AttackKind::PortScan,
            });
        }
        out
    }

    fn step_exfil(&mut self) -> Vec<AttackFlow> {
        let eph = self.next_eph();
        vec![AttackFlow {
            key: FlowKey {
                local_ip: self.scenario.breached,
                local_port: eph,
                remote_ip: external_endpoint(self.scenario.start_min),
                remote_port: 443,
                proto: Protocol::Tcp,
            },
            // intensity = bytes/min pushed out; small ACK stream back.
            fwd_bytes: self.scenario.intensity,
            rev_bytes: self.scenario.intensity / 50,
            kind: AttackKind::Exfiltration,
        }]
    }

    fn step_beacon(&mut self, minute: u64) -> Vec<AttackFlow> {
        // intensity = beacon period in minutes.
        if !(minute - self.scenario.start_min).is_multiple_of(self.scenario.intensity) {
            return Vec::new();
        }
        let eph = self.next_eph();
        vec![AttackFlow {
            key: FlowKey {
                local_ip: self.scenario.breached,
                local_port: eph,
                remote_ip: external_endpoint(self.scenario.start_min.wrapping_add(7)),
                remote_port: 443,
                proto: Protocol::Tcp,
            },
            fwd_bytes: 900,
            rev_bytes: 400,
            kind: AttackKind::C2Beacon,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop(n: usize) -> Vec<Ipv4Addr> {
        (0..n).map(|i| Ipv4Addr::new(10, 0, 0, (i + 1) as u8)).collect()
    }

    fn scenario(kind: AttackKind, intensity: u64) -> AttackScenario {
        AttackScenario {
            kind,
            start_min: 5,
            duration_min: 10,
            breached: Ipv4Addr::new(10, 0, 0, 1),
            intensity,
        }
    }

    #[test]
    fn breached_ip_must_exist() {
        let mut s = scenario(AttackKind::PortScan, 10);
        s.breached = Ipv4Addr::new(9, 9, 9, 9);
        assert!(matches!(AttackState::new(s, &pop(5)), Err(Error::UnknownIp(_))));
    }

    #[test]
    fn zero_intensity_rejected() {
        assert!(AttackState::new(scenario(AttackKind::PortScan, 0), &pop(5)).is_err());
    }

    #[test]
    fn inactive_minutes_are_silent() {
        let mut st = AttackState::new(scenario(AttackKind::PortScan, 10), &pop(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(st.step(4, &pop(5), &mut rng).is_empty(), "before start");
        assert!(!st.step(5, &pop(5), &mut rng).is_empty(), "at start");
        assert!(st.step(15, &pop(5), &mut rng).is_empty(), "after end");
    }

    #[test]
    fn lateral_movement_spreads() {
        let population = pop(30);
        let mut st =
            AttackState::new(scenario(AttackKind::LateralMovement, 8), &population).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for m in 5..15 {
            st.step(m, &population, &mut rng);
        }
        assert!(
            st.infected().len() > 3,
            "infection should spread beyond patient zero, got {}",
            st.infected().len()
        );
        assert!(st.infected().contains(&Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn port_scan_sweeps_distinct_ports() {
        let population = pop(10);
        let mut st = AttackState::new(scenario(AttackKind::PortScan, 50), &population).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let flows = st.step(5, &population, &mut rng);
        let ports: std::collections::HashSet<u16> =
            flows.iter().map(|f| f.key.remote_port).collect();
        assert!(ports.len() > 40, "sequential sweep yields distinct ports, got {}", ports.len());
        assert!(flows.iter().all(|f| f.fwd_bytes <= 200), "scan probes are tiny");
    }

    #[test]
    fn exfiltration_targets_external_endpoint() {
        let population = pop(5);
        let mut st =
            AttackState::new(scenario(AttackKind::Exfiltration, 5_000_000), &population).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let flows = st.step(6, &population, &mut rng);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].fwd_bytes, 5_000_000);
        assert_eq!(flows[0].key.remote_ip.octets()[0], 203, "staging box is external");
    }

    #[test]
    fn beacon_fires_on_period() {
        let population = pop(5);
        let mut st = AttackState::new(scenario(AttackKind::C2Beacon, 3), &population).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let fired: Vec<u64> =
            (5..15).filter(|&m| !st.step(m, &population, &mut rng).is_empty()).collect();
        assert_eq!(fired, vec![5, 8, 11, 14], "every third minute from start");
    }
}
