//! The minute-stepped simulation engine.
//!
//! Each simulated minute the engine: applies churn events, spawns new
//! connections per role-edge (Poisson arrivals scaled by the load schedule),
//! emits one connection summary per *monitored vantage point* of every live
//! flow — two records when both endpoints are inside the subscription, one
//! when the peer is external, exactly as real per-NIC collection behaves —
//! steps any active attacks, and retires finished flows.
//!
//! All randomness flows from one seeded [`StdRng`], so a `(topology, config)`
//! pair reproduces its record stream bit-for-bit. Ground truth (IP → role,
//! attack-flow labels, infected set) is maintained as the simulation runs.

use crate::attack::{AttackKind, AttackScenario, AttackState};
use crate::churn::ChurnPlan;
use crate::error::Result;
use crate::load::LoadSchedule;
use crate::randx::{geometric_extra, poisson, Zipf};
use crate::roles::RoleId;
use crate::topology::Topology;
use crate::traffic::{packets_for_bytes, Fanout};
use flowlog::record::{ConnSummary, FlowKey, Protocol};
use flowlog::time::MINUTE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; same seed ⇒ identical record stream.
    pub seed: u64,
    /// Cluster-wide load modulation.
    pub load: LoadSchedule,
    /// Scheduled replica churn.
    pub churn: ChurnPlan,
    /// Attacks to inject.
    pub attacks: Vec<AttackScenario>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            load: LoadSchedule::steady(),
            churn: ChurnPlan::none(),
            attacks: Vec::new(),
        }
    }
}

/// What the simulator knows that a real operator would not: exact roles and
/// attack labels. Downstream experiments score against this.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Role names indexed by `RoleId`.
    pub role_names: Vec<String>,
    /// Every IP that ever existed, with its role.
    pub ip_roles: HashMap<Ipv4Addr, RoleId>,
    /// Canonical flow keys of attack flows, with the attack kind.
    pub attack_flows: HashMap<FlowKey, AttackKind>,
    /// IPs compromised by lateral movement (includes patient zero).
    pub infected: BTreeSet<Ipv4Addr>,
}

impl GroundTruth {
    /// The role of an IP, if it is part of the simulated population.
    pub fn role_of(&self, ip: Ipv4Addr) -> Option<RoleId> {
        self.ip_roles.get(&ip).copied()
    }

    /// True if the canonicalized key belongs to an injected attack.
    pub fn is_attack(&self, key: &FlowKey) -> bool {
        self.attack_flows.contains_key(&key.canonical())
    }
}

/// A connection that persists across minutes.
#[derive(Debug, Clone, Copy)]
struct ActiveFlow {
    key: FlowKey,
    fwd_bytes_per_min: u64,
    rev_bytes_per_min: u64,
    remaining_min: u64,
    src_monitored: bool,
    dst_monitored: bool,
}

/// The engine. See module docs for the per-minute cycle.
pub struct Simulator {
    topo: Topology,
    cfg: SimConfig,
    rng: StdRng,
    minute: u64,
    /// Live replica addresses per role.
    replicas: Vec<Vec<Ipv4Addr>>,
    /// Next index in the dynamic address range (churn scale-outs draw fresh
    /// addresses from `10.x.240.0` upward so they can never collide with
    /// the static role-major assignment; addresses are never reused).
    next_dynamic: usize,
    /// Long-lived flows carried across minutes.
    active: Vec<ActiveFlow>,
    /// Per-source ephemeral port allocators.
    eph: HashMap<Ipv4Addr, u16>,
    /// Zipf samplers per edge, invalidated on churn of the dst role.
    zipf_cache: Vec<Option<Zipf>>,
    /// Live attack executors (created lazily at each attack's start minute).
    attacks: Vec<Option<AttackState>>,
    truth: GroundTruth,
}

impl Simulator {
    /// Build a simulator over a validated topology.
    pub fn new(topo: Topology, cfg: SimConfig) -> Result<Self> {
        topo.validate()?;
        let mut truth = GroundTruth {
            role_names: topo.roles.iter().map(|r| r.name.clone()).collect(),
            ..GroundTruth::default()
        };
        let mut replicas: Vec<Vec<Ipv4Addr>> = Vec::with_capacity(topo.roles.len());
        for r in &topo.roles {
            let mut v = Vec::with_capacity(r.replicas);
            for slot in 0..r.replicas {
                let ip = topo.ip_of(r.id, slot)?;
                truth.ip_roles.insert(ip, r.id);
                v.push(ip);
            }
            replicas.push(v);
        }
        let zipf_cache = vec![None; topo.edges.len()];
        let attacks = vec![];
        let mut sim = Simulator {
            rng: StdRng::seed_from_u64(cfg.seed),
            minute: 0,
            replicas,
            next_dynamic: 0,
            active: Vec::new(),
            eph: HashMap::new(),
            zipf_cache,
            attacks,
            truth,
            topo,
            cfg,
        };
        sim.attacks = sim.cfg.attacks.iter().map(|_| None).collect();
        Ok(sim)
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Ground truth accumulated so far.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The next minute to be simulated.
    pub fn minute(&self) -> u64 {
        self.minute
    }

    /// Count of currently live long-lived flows (diagnostics).
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Current live internal (monitored) population.
    pub fn internal_population(&self) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for (role, ips) in self.replicas.iter().enumerate() {
            if self.topo.roles[role].is_monitored() {
                out.extend_from_slice(ips);
            }
        }
        out
    }

    fn next_eph(&mut self, src: Ipv4Addr) -> u16 {
        let p = self.eph.entry(src).or_insert(32_768);
        *p = if *p >= 60_999 { 32_768 } else { *p + 1 };
        *p
    }

    /// Simulate one minute; returns that minute's records sorted by key.
    pub fn step(&mut self) -> Vec<ConnSummary> {
        let minute = self.minute;
        let ts = minute * MINUTE;
        self.apply_churn(minute);

        let mut out: Vec<ConnSummary> = Vec::new();

        // 1. Emit for flows that survived from previous minutes.
        for f in &self.active {
            emit_flow(&mut out, ts, f);
        }
        // Retire flows that just emitted their last minute.
        for f in &mut self.active {
            f.remaining_min -= 1;
        }
        self.active.retain(|f| f.remaining_min > 0);

        // 2. Spawn this minute's new connections, edge by edge.
        let load = self.cfg.load.factor_at(minute);
        for e in 0..self.topo.edges.len() {
            self.spawn_edge(e, ts, load, &mut out);
        }

        // 3. Attacks.
        self.step_attacks(minute, ts, &mut out);

        self.minute += 1;
        out.sort_unstable_by_key(|s| s.key);
        out
    }

    /// Run `minutes` minutes, handing each minute's batch to `sink`.
    pub fn run(&mut self, minutes: u64, mut sink: impl FnMut(u64, &[ConnSummary])) {
        for _ in 0..minutes {
            let m = self.minute;
            let batch = self.step();
            sink(m, &batch);
        }
    }

    /// Run `minutes` minutes and collect every record. Convenient for tests
    /// and small clusters; prefer [`Simulator::run`] for KQuery-scale streams.
    pub fn collect(&mut self, minutes: u64) -> Vec<ConnSummary> {
        let mut all = Vec::new();
        self.run(minutes, |_, batch| all.extend_from_slice(batch));
        all
    }

    /// A fresh internal address from the dynamic range `10.x.240.0` …
    /// `10.x.255.249` (4000 addresses), disjoint from the static role-major
    /// pool. Returns `None` when the range is exhausted.
    fn dynamic_ip(&mut self) -> Option<Ipv4Addr> {
        let d = self.next_dynamic;
        let (hi, lo) = (240 + d / 250, d % 250 + 1);
        if hi > 255 {
            return None;
        }
        self.next_dynamic += 1;
        Some(Ipv4Addr::new(10, self.topo.internal_octet, hi as u8, lo as u8))
    }

    fn apply_churn(&mut self, minute: u64) {
        let events: Vec<_> = self.cfg.churn.events_at(minute).copied().collect();
        for ev in events {
            let role_idx = ev.role.0 as usize;
            if role_idx >= self.topo.roles.len() {
                continue; // tolerate plans referencing foreign roles
            }
            if ev.delta >= 0 {
                for _ in 0..ev.delta {
                    if let Some(ip) = self.dynamic_ip() {
                        self.truth.ip_roles.insert(ip, ev.role);
                        self.replicas[role_idx].push(ip);
                    }
                }
            } else {
                let keep_at_least = 1;
                for _ in 0..(-ev.delta) {
                    if self.replicas[role_idx].len() > keep_at_least {
                        if let Some(gone) = self.replicas[role_idx].pop() {
                            // Kill flows touching the retired address.
                            self.active
                                .retain(|f| f.key.local_ip != gone && f.key.remote_ip != gone);
                        }
                    }
                }
            }
            // Replica set changed: drop cached Zipf samplers over this role.
            for (i, edge) in self.topo.edges.iter().enumerate() {
                if edge.dst == ev.role {
                    self.zipf_cache[i] = None;
                }
            }
        }
    }

    fn spawn_edge(&mut self, edge_idx: usize, ts: u64, load: f64, out: &mut Vec<ConnSummary>) {
        let edge = self.topo.edges[edge_idx].clone();
        let src_role = &self.topo.roles[edge.src.0 as usize];
        let dst_role = &self.topo.roles[edge.dst.0 as usize];
        let (src_mon, dst_mon) = (src_role.is_monitored(), dst_role.is_monitored());
        let srcs = self.replicas[edge.src.0 as usize].clone();
        let dsts = self.replicas[edge.dst.0 as usize].clone();
        if dsts.is_empty() {
            return;
        }
        let fwd = edge.profile.fwd_dist();
        let rev = edge.profile.rev_dist();
        let ports = dst_role.service_ports.clone();
        let mut conn_ordinal = 0u64;

        for (s_idx, &src) in srcs.iter().enumerate() {
            let n = match edge.profile.fanout {
                Fanout::All => {
                    // One expected connection batch per destination.
                    let per_dst = edge.profile.conns_per_min * load;
                    let mut total = 0u64;
                    for (d_idx, &dst) in dsts.iter().enumerate() {
                        if dst == src {
                            continue;
                        }
                        let k = poisson(per_dst, &mut self.rng);
                        for _ in 0..k {
                            self.spawn_one(
                                ts,
                                src,
                                dst,
                                &ports,
                                conn_ordinal,
                                edge.profile.proto,
                                &fwd,
                                &rev,
                                edge.profile.continue_p,
                                src_mon,
                                dst_mon,
                                out,
                            );
                            conn_ordinal += 1;
                            total += 1;
                        }
                        let _ = d_idx;
                    }
                    let _ = total;
                    continue;
                }
                _ => poisson(edge.profile.conns_per_min * load, &mut self.rng),
            };
            for _ in 0..n {
                let dst = match edge.profile.fanout {
                    Fanout::Uniform => dsts[self.rng.random_range(0..dsts.len())],
                    Fanout::Sticky => dsts[s_idx % dsts.len()],
                    Fanout::Zipf(s) => {
                        if self.zipf_cache[edge_idx]
                            .as_ref()
                            .map(|z| z.len() != dsts.len())
                            .unwrap_or(true)
                        {
                            self.zipf_cache[edge_idx] = Some(Zipf::new(dsts.len(), s));
                        }
                        let z = self.zipf_cache[edge_idx]
                            .get_or_insert_with(|| Zipf::new(dsts.len(), s));
                        dsts[z.sample(&mut self.rng)]
                    }
                    // All-fanout already drew every destination above.
                    Fanout::All => continue,
                };
                if dst == src {
                    continue; // self-loops carry no network traffic
                }
                self.spawn_one(
                    ts,
                    src,
                    dst,
                    &ports,
                    conn_ordinal,
                    edge.profile.proto,
                    &fwd,
                    &rev,
                    edge.profile.continue_p,
                    src_mon,
                    dst_mon,
                    out,
                );
                conn_ordinal += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_one(
        &mut self,
        ts: u64,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ports: &[u16],
        ordinal: u64,
        proto: Protocol,
        fwd: &crate::randx::LogNormal,
        rev: &crate::randx::LogNormal,
        continue_p: f64,
        src_mon: bool,
        dst_mon: bool,
        out: &mut Vec<ConnSummary>,
    ) {
        let port = ports[(ordinal % ports.len() as u64) as usize];
        let key = FlowKey {
            local_ip: src,
            local_port: self.next_eph(src),
            remote_ip: dst,
            remote_port: port,
            proto,
        };
        let flow = ActiveFlow {
            key,
            fwd_bytes_per_min: fwd.sample(&mut self.rng).max(1.0) as u64,
            rev_bytes_per_min: rev.sample(&mut self.rng).max(1.0) as u64,
            remaining_min: 1 + geometric_extra(continue_p, &mut self.rng),
            src_monitored: src_mon,
            dst_monitored: dst_mon,
        };
        emit_flow(out, ts, &flow);
        if flow.remaining_min > 1 {
            self.active.push(ActiveFlow { remaining_min: flow.remaining_min - 1, ..flow });
        }
    }

    fn step_attacks(&mut self, minute: u64, ts: u64, out: &mut Vec<ConnSummary>) {
        if self.cfg.attacks.is_empty() {
            return;
        }
        let population = self.internal_population();
        for i in 0..self.cfg.attacks.len() {
            let scenario = self.cfg.attacks[i].clone();
            if !scenario.active_at(minute) {
                continue;
            }
            if self.attacks[i].is_none() {
                match AttackState::new(scenario.clone(), &population) {
                    Ok(st) => self.attacks[i] = Some(st),
                    Err(_) => continue, // breached IP churned away before start
                }
            }
            let Some(st) = self.attacks[i].as_mut() else { continue };
            let flows = st.step(minute, &population, &mut self.rng);
            self.truth.infected.extend(st.infected().iter().copied());
            for af in flows {
                self.truth.attack_flows.insert(af.key.canonical(), af.kind);
                let victim_monitored = self.truth.ip_roles.contains_key(&af.key.remote_ip)
                    && af.key.remote_ip.octets()[0] == 10;
                let flow = ActiveFlow {
                    key: af.key,
                    fwd_bytes_per_min: af.fwd_bytes,
                    rev_bytes_per_min: af.rev_bytes,
                    remaining_min: 1,
                    src_monitored: true,
                    dst_monitored: victim_monitored,
                };
                emit_flow(out, ts, &flow);
            }
        }
    }
}

/// Emit one record per monitored vantage point of a flow-minute.
fn emit_flow(out: &mut Vec<ConnSummary>, ts: u64, f: &ActiveFlow) {
    let initiator = ConnSummary {
        ts,
        key: f.key,
        pkts_sent: packets_for_bytes(f.fwd_bytes_per_min),
        pkts_rcvd: packets_for_bytes(f.rev_bytes_per_min),
        bytes_sent: f.fwd_bytes_per_min,
        bytes_rcvd: f.rev_bytes_per_min,
    };
    if f.src_monitored {
        out.push(initiator);
    }
    if f.dst_monitored {
        out.push(initiator.mirrored());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadShape;
    use crate::roles::RoleKind;
    use crate::topology::TopologyBuilder;
    use crate::traffic::TrafficProfile;

    fn small_topo() -> Topology {
        let mut b = TopologyBuilder::new("unit", 3);
        let fe = b.role("frontend", RoleKind::Frontend, 3, vec![443]);
        let be = b.role("backend", RoleKind::Service, 2, vec![8080]);
        let db = b.role("db", RoleKind::Datastore, 1, vec![5432]);
        let ext = b.role("clients", RoleKind::ExternalClient, 20, vec![]);
        b.connect(ext, fe, TrafficProfile::rpc(2.0, 500.0, 12_000.0));
        b.connect(fe, be, TrafficProfile::rpc(10.0, 600.0, 4_000.0));
        b.connect(be, db, TrafficProfile::bulk(1.0, 50_000.0, 200_000.0));
        b.build().unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig { seed: 99, ..SimConfig::default() };
        let a = Simulator::new(small_topo(), cfg.clone()).unwrap().collect(10);
        let b = Simulator::new(small_topo(), cfg).unwrap().collect(10);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulator::new(small_topo(), SimConfig { seed: 1, ..Default::default() })
            .unwrap()
            .collect(5);
        let b = Simulator::new(small_topo(), SimConfig { seed: 2, ..Default::default() })
            .unwrap()
            .collect(5);
        assert_ne!(a, b);
    }

    #[test]
    fn all_records_are_well_formed_and_bucketed() {
        let mut sim = Simulator::new(small_topo(), SimConfig::default()).unwrap();
        sim.run(15, |minute, batch| {
            for r in batch {
                assert!(r.is_well_formed(), "{r:?}");
                assert_eq!(r.ts, minute * MINUTE);
            }
        });
    }

    #[test]
    fn internal_flows_produce_two_vantage_records() {
        // backend -> db are both monitored: every flow-minute must appear
        // exactly twice (once per vantage), mirrored.
        let mut sim = Simulator::new(small_topo(), SimConfig::default()).unwrap();
        let recs = sim.collect(5);
        let truth = sim.ground_truth();
        let mut by_canonical: HashMap<FlowKey, Vec<ConnSummary>> = HashMap::new();
        for r in &recs {
            by_canonical.entry(r.key.canonical()).or_default().push(*r);
        }
        let mut checked = 0;
        for (k, group) in by_canonical {
            let both_internal = k.local_ip.octets()[0] == 10 && k.remote_ip.octets()[0] == 10;
            if both_internal {
                // Group contains per-minute pairs: even count, and pairs mirror.
                assert_eq!(group.len() % 2, 0, "internal flow must have paired records");
                checked += 1;
            }
        }
        assert!(checked > 0, "test topology must exercise internal flows");
        let _ = truth;
    }

    #[test]
    fn external_clients_never_report() {
        let mut sim = Simulator::new(small_topo(), SimConfig::default()).unwrap();
        let recs = sim.collect(5);
        for r in &recs {
            assert_eq!(
                r.key.local_ip.octets()[0],
                10,
                "only monitored (internal) NICs produce records: {r:?}"
            );
        }
        // But external peers do appear on the remote side.
        assert!(recs.iter().any(|r| r.key.remote_ip.octets()[0] != 10));
    }

    #[test]
    fn ground_truth_covers_population() {
        let sim = Simulator::new(small_topo(), SimConfig::default()).unwrap();
        let t = sim.ground_truth();
        assert_eq!(t.ip_roles.len(), 26, "3+2+1 internal + 20 external");
        assert_eq!(t.role_names.len(), 4);
    }

    #[test]
    fn load_spike_increases_traffic() {
        let steady = Simulator::new(small_topo(), SimConfig { seed: 5, ..Default::default() })
            .unwrap()
            .collect(10)
            .len();
        let spiky = Simulator::new(
            small_topo(),
            SimConfig {
                seed: 5,
                load: LoadSchedule::steady().with(LoadShape::Spike {
                    start_min: 0,
                    duration_min: 10,
                    factor: 5.0,
                }),
                ..Default::default()
            },
        )
        .unwrap()
        .collect(10)
        .len();
        assert!(
            spiky as f64 > steady as f64 * 2.0,
            "5x load should raise record count well past 2x: {steady} -> {spiky}"
        );
    }

    #[test]
    fn churn_scale_out_adds_new_ips() {
        let cfg =
            SimConfig { churn: ChurnPlan::none().with(3, RoleId(0), 5), ..Default::default() };
        let mut sim = Simulator::new(small_topo(), cfg).unwrap();
        let before = sim.internal_population().len();
        sim.run(5, |_, _| {});
        let after = sim.internal_population().len();
        assert_eq!(after, before + 5);
        // New IPs are in ground truth with the right role.
        let fe_count = sim.ground_truth().ip_roles.values().filter(|r| **r == RoleId(0)).count();
        assert_eq!(fe_count, 8);
    }

    #[test]
    fn churn_scale_in_removes_flows() {
        let cfg =
            SimConfig { churn: ChurnPlan::none().with(5, RoleId(1), -1), ..Default::default() };
        let mut sim = Simulator::new(small_topo(), cfg).unwrap();
        sim.run(4, |_, _| {});
        let before = sim.internal_population().len();
        sim.run(2, |_, _| {});
        assert_eq!(sim.internal_population().len(), before - 1);
    }

    #[test]
    fn scale_in_never_eliminates_a_role() {
        let cfg =
            SimConfig { churn: ChurnPlan::none().with(1, RoleId(2), -10), ..Default::default() };
        let mut sim = Simulator::new(small_topo(), cfg).unwrap();
        sim.run(3, |_, _| {});
        assert!(sim.replicas_of(RoleId(2)) >= 1, "db role must keep its last replica");
    }

    impl Simulator {
        fn replicas_of(&self, role: RoleId) -> usize {
            self.replicas[role.0 as usize].len()
        }
    }

    #[test]
    fn attacks_are_labeled_in_ground_truth() {
        let breached = small_topo().ip_of(RoleId(0), 0).unwrap();
        let cfg = SimConfig {
            attacks: vec![AttackScenario {
                kind: AttackKind::LateralMovement,
                start_min: 2,
                duration_min: 5,
                breached,
                intensity: 5,
            }],
            ..Default::default()
        };
        let mut sim = Simulator::new(small_topo(), cfg).unwrap();
        let recs = sim.collect(10);
        let truth = sim.ground_truth();
        assert!(!truth.attack_flows.is_empty(), "attack must generate labeled flows");
        assert!(truth.infected.contains(&breached));
        let attack_recs = recs.iter().filter(|r| truth.is_attack(&r.key)).count();
        assert!(attack_recs > 0, "attack flows must appear in the record stream");
    }

    #[test]
    fn long_lived_flows_persist_across_minutes() {
        // db edge has continue_p=0.85: the same flow key should appear in
        // multiple minutes.
        let mut sim =
            Simulator::new(small_topo(), SimConfig { seed: 11, ..Default::default() }).unwrap();
        let recs = sim.collect(10);
        let mut minutes_per_flow: HashMap<FlowKey, BTreeSet<u64>> = HashMap::new();
        for r in &recs {
            if r.key.remote_port == 5432 {
                minutes_per_flow.entry(r.key.canonical()).or_default().insert(r.ts);
            }
        }
        let max_span = minutes_per_flow.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max_span >= 3, "bulk flows should span several minutes, max {max_span}");
    }
}
