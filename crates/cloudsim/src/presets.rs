//! The four reference clusters of Table 1.
//!
//! Each preset builds a topology whose *shape* matches the corresponding
//! production cluster in the paper: the number of monitored IPs, the rough
//! record rate, and the structural patterns (hub-and-spoke control planes,
//! chatty all-to-all cliques, heavy-tailed client populations) that drive
//! every downstream analysis. Absolute numbers are calibrated, not copied:
//! see EXPERIMENTS.md for paper-vs-measured tables.
//!
//! | Cluster         | #IPs monitored | records/min (paper) |
//! |-----------------|----------------|---------------------|
//! | Portal          | 4              | 332                 |
//! | µserviceBench   | 16             | 48 K                |
//! | K8s PaaS        | 390            | 68 K                |
//! | KQuery          | 1400           | 2.3 M               |

use crate::load::{LoadSchedule, LoadShape};
use crate::roles::RoleKind;
use crate::sim::SimConfig;
use crate::topology::{Topology, TopologyBuilder};
use crate::traffic::{Fanout, TrafficProfile};
use flowlog::record::Protocol;

/// Selector for the four reference clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterPreset {
    /// A geo-distributed web portal: 4 servers, thousands of external
    /// clients, tiny internal footprint.
    Portal,
    /// The microservices shopping-site benchmark with synthetic load
    /// generators (modeled on the public "Online Boutique" demo).
    MicroserviceBench,
    /// A production kubernetes-as-a-service cluster: control-plane hubs plus
    /// multi-tenant app stacks. The default cluster for the paper's analyses.
    K8sPaas,
    /// An in-memory SQL query engine: coordinator/worker architecture with
    /// all-to-all shuffle traffic.
    KQuery,
}

impl ClusterPreset {
    /// All four presets in Table 1 order.
    pub fn all() -> [ClusterPreset; 4] {
        [
            ClusterPreset::Portal,
            ClusterPreset::MicroserviceBench,
            ClusterPreset::K8sPaas,
            ClusterPreset::KQuery,
        ]
    }

    /// The cluster's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ClusterPreset::Portal => "Portal",
            ClusterPreset::MicroserviceBench => "uServiceBench",
            ClusterPreset::K8sPaas => "K8s PaaS",
            ClusterPreset::KQuery => "KQuery",
        }
    }

    /// Paper's reported monitored-IP count, for EXPERIMENTS.md comparisons.
    pub fn paper_monitored_ips(self) -> usize {
        match self {
            ClusterPreset::Portal => 4,
            ClusterPreset::MicroserviceBench => 16,
            ClusterPreset::K8sPaas => 390,
            ClusterPreset::KQuery => 1400,
        }
    }

    /// Paper's reported records/minute, for EXPERIMENTS.md comparisons.
    pub fn paper_records_per_min(self) -> f64 {
        match self {
            ClusterPreset::Portal => 332.0,
            ClusterPreset::MicroserviceBench => 48_000.0,
            ClusterPreset::K8sPaas => 68_000.0,
            ClusterPreset::KQuery => 2_300_000.0,
        }
    }

    /// Full-scale topology.
    pub fn topology(self) -> Topology {
        self.topology_scaled(1.0)
    }

    /// Topology with replica counts multiplied by `scale` (floored at 1).
    /// Tests use small scales; experiments use 1.0.
    pub fn topology_scaled(self, scale: f64) -> Topology {
        assert!(scale > 0.0, "scale must be positive");
        let n = |full: usize| ((full as f64 * scale).round() as usize).max(1);
        match self {
            ClusterPreset::Portal => portal(n),
            ClusterPreset::MicroserviceBench => microservice_bench(n),
            ClusterPreset::K8sPaas => k8s_paas(n),
            ClusterPreset::KQuery => kquery(n),
        }
    }

    /// A simulation config with this cluster's characteristic load pattern
    /// and a fixed seed.
    pub fn default_sim_config(self) -> SimConfig {
        let load = match self {
            // Interactive clusters breathe with the day; batch engines don't.
            ClusterPreset::Portal | ClusterPreset::K8sPaas => LoadSchedule::steady()
                .with(LoadShape::Diurnal { period_min: 1440.0, amplitude: 0.3, phase_min: 0.0 }),
            _ => LoadSchedule::steady(),
        };
        SimConfig { seed: 0x5EED ^ self.name().len() as u64, load, ..SimConfig::default() }
    }

    /// The paper's evaluation setting: like [`Self::default_sim_config`],
    /// but µserviceBench additionally carries the breach-and-attack
    /// injection the paper describes ("we use synthetic load generators and
    /// inject a wide range of attacks"). The attack traffic is what gives
    /// that cluster's IP graph its near-clique edge density.
    pub fn paper_sim_config(self, topo: &Topology) -> SimConfig {
        use crate::attack::{AttackKind, AttackScenario};
        let mut cfg = self.default_sim_config();
        if self == ClusterPreset::MicroserviceBench {
            // Slot 0 of every preset role exists at any scale, so all four
            // breach points resolve; if a foreign topology is passed in,
            // the attacks are simply not injected rather than panicking.
            let breach = |role: u16| topo.ip_of(crate::roles::RoleId(role), 0).ok();
            if let (Some(frontend), Some(loadgen), Some(payment), Some(cart)) =
                (breach(0), breach(11), breach(4), breach(1))
            {
                cfg.attacks = vec![
                    // Lateral movement from a compromised frontend replica.
                    AttackScenario {
                        kind: AttackKind::LateralMovement,
                        start_min: 5,
                        duration_min: 50,
                        breached: frontend,
                        intensity: 4,
                    },
                    // Port sweep from the (attacker-controlled) load generator.
                    AttackScenario {
                        kind: AttackKind::PortScan,
                        start_min: 10,
                        duration_min: 30,
                        breached: loadgen,
                        intensity: 120,
                    },
                    // Exfiltration from the payment service.
                    AttackScenario {
                        kind: AttackKind::Exfiltration,
                        start_min: 20,
                        duration_min: 25,
                        breached: payment,
                        intensity: 4_000_000,
                    },
                    // Low-and-slow C2 beacon from the cart service.
                    AttackScenario {
                        kind: AttackKind::C2Beacon,
                        start_min: 0,
                        duration_min: 60,
                        breached: cart,
                        intensity: 5,
                    },
                ];
            }
        }
        cfg
    }
}

/// Portal: 4 web servers, a sea of external clients.
///
/// Most clients stick to one geo-routed server (Sticky); a minority roam.
/// This yields an IP graph with thousands of nodes but only ~1.2 edges per
/// node, matching Table 1's 4K-node / 5K-edge row.
fn portal(n: impl Fn(usize) -> usize) -> Topology {
    let mut b = TopologyBuilder::new("Portal", 20);
    let fe = b.role("portal-frontend", RoleKind::Frontend, n(4), vec![443]);
    let sticky = b.role("clients-sticky", RoleKind::ExternalClient, n(4500), vec![]);
    let roaming = b.role("clients-roaming", RoleKind::ExternalClient, n(400), vec![]);
    let api = b.role("upstream-api", RoleKind::ExternalService, n(3), vec![443]);
    // The portal ships telemetry to a managed (external) ingestion endpoint,
    // so the monitored inventory is exactly the 4 web servers, as in Table 1.
    let tele = b.role("telemetry-ingest", RoleKind::ExternalService, n(1), vec![9090]);

    b.connect(sticky, fe, TrafficProfile::rpc(0.066, 600.0, 18_000.0).with_fanout(Fanout::Sticky));
    b.connect(roaming, fe, TrafficProfile::rpc(0.08, 600.0, 18_000.0));
    b.connect(fe, api, TrafficProfile::rpc(2.0, 900.0, 5_000.0));
    b.connect(fe, tele, TrafficProfile::bulk(0.3, 40_000.0, 500.0));
    b.build_unvalidated()
}

/// µserviceBench: the Online-Boutique-style microservice mesh, 16 VMs.
///
/// Dense east-west RPC traffic: far more edges than nodes in the IP graph
/// and a very high record rate relative to cluster size.
fn microservice_bench(n: impl Fn(usize) -> usize) -> Topology {
    let mut b = TopologyBuilder::new("uServiceBench", 21);
    let frontend = b.role("frontend", RoleKind::Frontend, n(2), vec![8080]);
    let cart = b.role("cartservice", RoleKind::Service, n(1), vec![7070]);
    let catalog = b.role("productcatalog", RoleKind::Service, n(2), vec![3550]);
    let currency = b.role("currencyservice", RoleKind::Service, n(2), vec![7000]);
    let payment = b.role("paymentservice", RoleKind::Service, n(1), vec![50051]);
    let shipping = b.role("shippingservice", RoleKind::Service, n(1), vec![50052]);
    let email = b.role("emailservice", RoleKind::Service, n(1), vec![5000]);
    let checkout = b.role("checkoutservice", RoleKind::Service, n(1), vec![5050]);
    let reco = b.role("recommendation", RoleKind::Service, n(2), vec![8081]);
    let ad = b.role("adservice", RoleKind::Service, n(1), vec![9555]);
    let redis = b.role("redis-cart", RoleKind::Datastore, n(1), vec![6379]);
    let loadgen = b.role("loadgenerator", RoleKind::LoadGenerator, n(1), vec![]);
    let clients = b.role("ext-clients", RoleKind::ExternalClient, n(16), vec![]);
    let extsvc = b.role("ext-apis", RoleKind::ExternalService, n(7), vec![443]);

    // User-facing entry points.
    b.connect(loadgen, frontend, TrafficProfile::rpc(2_000.0, 700.0, 24_000.0));
    b.connect(clients, frontend, TrafficProfile::rpc(10.0, 900.0, 80_000.0));
    // The boutique call graph, rates per source replica per minute.
    b.connect(frontend, catalog, TrafficProfile::rpc(2_500.0, 300.0, 3_000.0));
    b.connect(frontend, currency, TrafficProfile::rpc(2_000.0, 200.0, 400.0));
    b.connect(frontend, cart, TrafficProfile::rpc(1_500.0, 250.0, 1_200.0));
    b.connect(frontend, reco, TrafficProfile::rpc(1_000.0, 250.0, 2_000.0));
    b.connect(frontend, ad, TrafficProfile::rpc(800.0, 200.0, 900.0));
    b.connect(frontend, shipping, TrafficProfile::rpc(400.0, 300.0, 500.0));
    b.connect(frontend, checkout, TrafficProfile::rpc(300.0, 900.0, 1_500.0));
    b.connect(checkout, cart, TrafficProfile::rpc(300.0, 250.0, 1_200.0));
    b.connect(checkout, catalog, TrafficProfile::rpc(300.0, 300.0, 3_000.0));
    b.connect(checkout, currency, TrafficProfile::rpc(300.0, 200.0, 400.0));
    b.connect(checkout, payment, TrafficProfile::rpc(200.0, 600.0, 400.0));
    b.connect(checkout, shipping, TrafficProfile::rpc(200.0, 300.0, 500.0));
    b.connect(checkout, email, TrafficProfile::rpc(100.0, 1_500.0, 300.0));
    b.connect(reco, catalog, TrafficProfile::rpc(500.0, 300.0, 3_000.0));
    b.connect(cart, redis, TrafficProfile::rpc(2_000.0, 400.0, 800.0).with_continue_p(0.5));
    // Outbound dependencies (payment gateways, geo APIs, …).
    b.connect(payment, extsvc, TrafficProfile::rpc(150.0, 1_200.0, 900.0));
    b.connect(shipping, extsvc, TrafficProfile::rpc(80.0, 800.0, 1_000.0));
    b.build_unvalidated()
}

/// K8s PaaS: the paper's default cluster. Control-plane hubs every pod talks
/// to, eight tenant app stacks, shared middleware, external client traffic.
fn k8s_paas(n: impl Fn(usize) -> usize) -> Topology {
    let mut b = TopologyBuilder::new("K8s PaaS", 22);
    let apiserver = b.role("k8s-apiserver", RoleKind::ControlPlane, n(3), vec![6443]);
    let etcd = b.role("etcd", RoleKind::Datastore, n(3), vec![2379]);
    let coredns = b.role("coredns", RoleKind::ControlPlane, n(2), vec![53]);
    let ingress = b.role("ingress", RoleKind::Frontend, n(2), vec![443]);
    let telemetry = b.role("telemetry-sink", RoleKind::TelemetrySink, n(2), vec![9090]);
    let registry = b.role("registry", RoleKind::Datastore, n(2), vec![5000]);
    let queue = b.role("shared-queue", RoleKind::Datastore, n(8), vec![5672]);
    let storage = b.role("shared-storage", RoleKind::Datastore, n(32), vec![8111]);
    // Two client populations: a head of heavy API consumers (partners,
    // batch integrations) that individually clear the heavy-hitter
    // threshold, and a long tail of light interactive users that collapse
    // into OTHER — together reproducing Table 1's ~150 surviving externals.
    let heavy_clients = b.role("ext-clients-heavy", RoleKind::ExternalClient, n(150), vec![]);
    let clients = b.role("ext-clients", RoleKind::ExternalClient, n(350), vec![]);
    let extapis = b.role("ext-apis", RoleKind::ExternalService, n(12), vec![443]);

    // Eight tenants, each a web/api/db/cache stack.
    let mut tenant_roles = Vec::new();
    for t in 0..8 {
        let web = b.role(format!("tenant{t}-web"), RoleKind::Frontend, n(12), vec![8080]);
        let api = b.role(format!("tenant{t}-api"), RoleKind::Service, n(18), vec![9000]);
        let db = b.role(format!("tenant{t}-db"), RoleKind::Datastore, n(8), vec![5432]);
        let cache = b.role(format!("tenant{t}-cache"), RoleKind::Datastore, n(4), vec![6379]);
        tenant_roles.push((web, api, db, cache));
    }

    // Control-plane hub-and-spoke: every pod keeps an apiserver watch and
    // ships telemetry; this is what creates the hub rows/columns in the
    // adjacency matrix (Figure 4).
    let all_pod_roles: Vec<_> = tenant_roles
        .iter()
        .flat_map(|&(w, a, d, c)| [w, a, d, c])
        .chain([ingress, queue, storage, registry])
        .collect();
    for &r in &all_pod_roles {
        b.connect(r, apiserver, TrafficProfile::bulk(0.05, 2_000.0, 6_000.0).with_continue_p(0.9));
        b.connect(r, telemetry, TrafficProfile::rpc(1.0, 15_000.0, 300.0));
        b.connect(r, coredns, TrafficProfile::rpc(2.0, 120.0, 240.0).with_proto(Protocol::Udp));
    }
    b.connect(apiserver, etcd, TrafficProfile::bulk(5.0, 30_000.0, 60_000.0));

    // Tenant data paths.
    for &(web, api, db, cache) in &tenant_roles {
        b.connect(web, api, TrafficProfile::rpc(70.0, 800.0, 6_000.0));
        // Steady per-minute volumes on the heavy data paths (the paper's
        // production bands are minute-aggregates of many requests, so their
        // per-pair noise is small — this is what makes the byte matrix
        // low-rank enough for k≈25 reconstruction, §2.2).
        b.connect(
            api,
            db,
            TrafficProfile {
                conns_per_min: 35.0,
                fanout: Fanout::Uniform,
                fwd_bytes_per_min: (600.0, 0.3),
                rev_bytes_per_min: (9_000.0, 0.3),
                continue_p: 0.4,
                proto: Protocol::Tcp,
            },
        );
        b.connect(api, cache, TrafficProfile::rpc(65.0, 300.0, 2_500.0));
        b.connect(api, queue, TrafficProfile::rpc(6.0, 1_500.0, 300.0));
        b.connect(
            api,
            storage,
            TrafficProfile {
                conns_per_min: 10.0,
                fanout: Fanout::Uniform,
                fwd_bytes_per_min: (2_000.0, 0.3),
                rev_bytes_per_min: (40_000.0, 0.3),
                continue_p: 0.0,
                proto: Protocol::Tcp,
            },
        );
        b.connect(api, extapis, TrafficProfile::rpc(2.0, 900.0, 3_000.0));
        b.connect(
            ingress,
            web,
            TrafficProfile {
                conns_per_min: 100.0,
                fanout: Fanout::Uniform,
                fwd_bytes_per_min: (700.0, 0.3),
                rev_bytes_per_min: (15_000.0, 0.3),
                continue_p: 0.0,
                proto: Protocol::Tcp,
            },
        );
    }
    // External clients reach tenants through the ingress tier.
    b.connect(
        heavy_clients,
        ingress,
        TrafficProfile::rpc(25.0, 1_200.0, 80_000.0).with_fanout(Fanout::Zipf(0.4)),
    );
    b.connect(
        clients,
        ingress,
        TrafficProfile::rpc(0.3, 600.0, 6_000.0).with_fanout(Fanout::Zipf(0.8)),
    );
    b.build_unvalidated()
}

/// KQuery: in-memory SQL. Workers shuffle all-to-all (chatty clique),
/// coordinators fan out query fragments, storage is Zipf-hot.
fn kquery(n: impl Fn(usize) -> usize) -> Topology {
    let mut b = TopologyBuilder::new("KQuery", 23);
    let coord = b.role("coordinator", RoleKind::ControlPlane, n(8), vec![8000]);
    let workers = b.role("worker", RoleKind::Worker, n(1308), vec![9000]);
    let storage = b.role("storage", RoleKind::Datastore, n(40), vec![8111]);
    let meta = b.role("metadata", RoleKind::ControlPlane, n(4), vec![7000]);
    let tele = b.role("telemetry-sink", RoleKind::TelemetrySink, n(40), vec![9090]);
    let analysts = b.role("analysts", RoleKind::ExternalClient, n(4800), vec![]);

    // The all-to-all shuffle: the dominant traffic and the chatty clique of
    // Figure 4(d)/2(d). Sub-minute exchanges, megabytes each.
    b.connect(
        workers,
        workers,
        TrafficProfile {
            conns_per_min: 0.62,
            fanout: Fanout::All,
            fwd_bytes_per_min: (400_000.0, 1.2),
            rev_bytes_per_min: (8_000.0, 0.8),
            continue_p: 0.0,
            proto: Protocol::Tcp,
        },
    );
    b.connect(coord, workers, TrafficProfile::rpc(120.0, 4_000.0, 90_000.0));
    b.connect(
        workers,
        storage,
        TrafficProfile::rpc(2.0, 1_000.0, 2_000_000.0).with_fanout(Fanout::Zipf(1.1)),
    );
    b.connect(workers, meta, TrafficProfile::rpc(1.0, 400.0, 1_500.0));
    b.connect(workers, tele, TrafficProfile::rpc(0.5, 20_000.0, 200.0).with_fanout(Fanout::Sticky));
    b.connect(
        analysts,
        coord,
        TrafficProfile::rpc(0.25, 2_000.0, 500_000.0).with_fanout(Fanout::Zipf(0.7)),
    );
    b.build_unvalidated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn all_presets_validate_at_every_scale() {
        // Presets finish through the unvalidated builder path, so this test
        // (plus Simulator::new's own validate) is what keeps them honest.
        for p in ClusterPreset::all() {
            for scale in [0.02, 0.1, 0.25, 1.0] {
                let t = p.topology_scaled(scale);
                t.validate().unwrap();
                assert!(t.monitored_count() > 0, "{} at scale {scale}", p.name());
            }
        }
    }

    #[test]
    fn paper_sim_config_injects_attacks_on_usvc_only() {
        for p in ClusterPreset::all() {
            let topo = p.topology_scaled(0.1);
            let cfg = p.paper_sim_config(&topo);
            if p == ClusterPreset::MicroserviceBench {
                assert_eq!(cfg.attacks.len(), 4);
            } else {
                assert!(cfg.attacks.is_empty());
            }
        }
    }

    #[test]
    fn monitored_counts_match_table1() {
        assert_eq!(ClusterPreset::Portal.topology().monitored_count(), 4);
        assert_eq!(ClusterPreset::MicroserviceBench.topology().monitored_count(), 16);
        assert_eq!(ClusterPreset::K8sPaas.topology().monitored_count(), 390);
        assert_eq!(ClusterPreset::KQuery.topology().monitored_count(), 1400);
    }

    #[test]
    fn scaled_topologies_shrink_but_keep_structure() {
        for p in ClusterPreset::all() {
            let full = p.topology();
            let small = p.topology_scaled(0.1);
            assert_eq!(full.roles.len(), small.roles.len(), "same roles");
            assert_eq!(full.edges.len(), small.edges.len(), "same edges");
            assert!(small.monitored_count() <= full.monitored_count());
            assert!(small.monitored_count() >= full.roles.len() / 4, "no role vanishes");
        }
    }

    #[test]
    fn presets_have_distinct_address_spaces() {
        let mut octets = std::collections::HashSet::new();
        for p in ClusterPreset::all() {
            assert!(octets.insert(p.topology().internal_octet), "octet collision");
        }
    }

    #[test]
    fn small_scale_simulation_runs_for_every_preset() {
        for p in ClusterPreset::all() {
            let topo = p.topology_scaled(0.02);
            let mut sim = Simulator::new(topo, p.default_sim_config()).unwrap();
            let recs = sim.collect(3);
            assert!(!recs.is_empty(), "{} must generate traffic", p.name());
            assert!(recs.iter().all(|r| r.is_well_formed()));
        }
    }

    #[test]
    fn microservice_bench_record_rate_shape() {
        // At 25% scale the mesh still produces a very high record rate
        // relative to its VM count — the defining trait of this cluster.
        let p = ClusterPreset::MicroserviceBench;
        let topo = p.topology_scaled(0.25);
        let vms = topo.monitored_count();
        let mut sim = Simulator::new(topo, p.default_sim_config()).unwrap();
        let recs = sim.collect(2);
        let per_min = recs.len() as f64 / 2.0;
        assert!(
            per_min / vms as f64 > 200.0,
            "records/min/VM should be high, got {per_min} for {vms} VMs"
        );
    }
}
