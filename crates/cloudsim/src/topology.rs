//! Deployment topologies: roles, replicas, and who talks to whom.

use crate::error::{Error, Result};
use crate::roles::{Role, RoleId, RoleKind};
use crate::traffic::TrafficProfile;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A directed communication relationship between two roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleEdge {
    /// Initiating role.
    pub src: RoleId,
    /// Accepting role.
    pub dst: RoleId,
    /// Traffic shape of the conversation.
    pub profile: TrafficProfile,
}

/// A named deployment: the static description a simulator executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Cluster name (e.g. `"K8s PaaS"`).
    pub name: String,
    /// Second octet of the internal `10.x.0.0/16` range, so different
    /// clusters in one process never collide.
    pub internal_octet: u8,
    /// Role table; `RoleId(i)` indexes it.
    pub roles: Vec<Role>,
    /// Directed role-to-role conversations.
    pub edges: Vec<RoleEdge>,
}

/// Incrementally constructs a validated [`Topology`].
#[derive(Debug)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Start a topology with the given name and internal address octet.
    pub fn new(name: impl Into<String>, internal_octet: u8) -> Self {
        TopologyBuilder {
            topo: Topology {
                name: name.into(),
                internal_octet,
                roles: Vec::new(),
                edges: Vec::new(),
            },
        }
    }

    /// Add a role; returns its id for wiring edges.
    pub fn role(
        &mut self,
        name: impl Into<String>,
        kind: RoleKind,
        replicas: usize,
        service_ports: Vec<u16>,
    ) -> RoleId {
        let id = RoleId(self.topo.roles.len() as u16);
        self.topo.roles.push(Role { id, name: name.into(), kind, replicas, service_ports });
        id
    }

    /// Declare that `src` initiates connections to `dst` with `profile`.
    pub fn connect(&mut self, src: RoleId, dst: RoleId, profile: TrafficProfile) -> &mut Self {
        self.topo.edges.push(RoleEdge { src, dst, profile });
        self
    }

    /// Validate and finish.
    pub fn build(self) -> Result<Topology> {
        self.topo.validate()?;
        Ok(self.topo)
    }

    /// Finish without validating — a panic-free path for statically
    /// known-good construction sites (the built-in presets), whose output
    /// is re-validated by every consumer anyway ([`crate::sim::Simulator::new`]
    /// runs [`Topology::validate`] before simulating). Prefer
    /// [`TopologyBuilder::build`] for user-assembled topologies.
    pub fn build_unvalidated(self) -> Topology {
        self.topo
    }
}

impl Topology {
    /// Look up a role.
    pub fn role(&self, id: RoleId) -> Result<&Role> {
        self.roles.get(id.0 as usize).ok_or(Error::UnknownRole(id.0))
    }

    /// Find a role by its name.
    pub fn role_named(&self, name: &str) -> Option<&Role> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// Check internal consistency: edges reference existing roles, every
    /// destination accepts connections, every role has at least one replica.
    pub fn validate(&self) -> Result<()> {
        for (i, r) in self.roles.iter().enumerate() {
            if r.id.0 as usize != i {
                return Err(Error::InvalidConfig(format!(
                    "role {} has id {} but sits at index {i}",
                    r.name, r.id.0
                )));
            }
            if r.replicas == 0 {
                return Err(Error::InvalidConfig(format!("role {} has zero replicas", r.name)));
            }
        }
        for e in &self.edges {
            let dst = self.role(e.dst)?;
            self.role(e.src)?;
            if dst.service_ports.is_empty() {
                return Err(Error::InvalidConfig(format!(
                    "edge targets role {} which accepts no connections",
                    dst.name
                )));
            }
            if !(e.profile.conns_per_min.is_finite() && e.profile.conns_per_min >= 0.0) {
                return Err(Error::InvalidConfig(format!(
                    "edge {} -> {} has invalid rate {}",
                    self.role(e.src)?.name,
                    dst.name,
                    e.profile.conns_per_min
                )));
            }
            if !(0.0..1.0).contains(&e.profile.continue_p) {
                return Err(Error::InvalidConfig(format!(
                    "edge {} -> {} has continue_p {} outside [0, 1)",
                    self.role(e.src)?.name,
                    dst.name,
                    e.profile.continue_p
                )));
            }
        }
        Ok(())
    }

    /// Total replicas whose telemetry is collected (the "#IPs monitored"
    /// column of Table 1).
    pub fn monitored_count(&self) -> usize {
        self.roles.iter().filter(|r| r.is_monitored()).map(|r| r.replicas).sum()
    }

    /// Total replicas including external, unmonitored roles.
    pub fn total_replicas(&self) -> usize {
        self.roles.iter().map(|r| r.replicas).sum()
    }

    /// The address of a role's replica slot.
    ///
    /// Monitored roles draw from the cluster's `10.x.0.0/16`; external roles
    /// from the `198.18.0.0/15` benchmark range. Assignment is deterministic:
    /// slots are numbered role-major, so address ↔ (role, slot) is stable
    /// across runs with the same topology.
    pub fn ip_of(&self, role: RoleId, slot: usize) -> Result<Ipv4Addr> {
        let r = self.role(role)?;
        // Role-major slot numbering within the internal or external pool.
        let mut index = 0usize;
        for other in &self.roles {
            if other.id == role {
                break;
            }
            if other.is_monitored() == r.is_monitored() {
                index += other.replicas;
            }
        }
        index += slot;
        if r.is_monitored() {
            // 10.<octet>.hi.lo with lo in 1..=250 — 62 500 usable addresses.
            let (hi, lo) = (index / 250, index % 250 + 1);
            if hi > 255 {
                return Err(Error::IpPoolExhausted { capacity: 256 * 250 });
            }
            Ok(Ipv4Addr::new(10, self.internal_octet, hi as u8, lo as u8))
        } else {
            // 198.18.0.0/15 for external endpoints: 2 * 65536 addresses.
            let (b, hi, lo) = (index / 65_536, (index / 256) % 256, index % 256);
            if b > 1 {
                return Err(Error::IpPoolExhausted { capacity: 2 * 65_536 });
            }
            Ok(Ipv4Addr::new(198, 18 + b as u8, hi as u8, lo as u8))
        }
    }

    /// All initial `(ip, role)` assignments — the simulator's ground truth.
    pub fn initial_assignments(&self) -> Result<Vec<(Ipv4Addr, RoleId)>> {
        let mut out = Vec::with_capacity(self.total_replicas());
        for r in &self.roles {
            for slot in 0..r.replicas {
                out.push((self.ip_of(r.id, slot)?, r.id));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> Topology {
        let mut b = TopologyBuilder::new("test", 7);
        let fe = b.role("frontend", RoleKind::Frontend, 3, vec![443]);
        let be = b.role("backend", RoleKind::Service, 2, vec![8080]);
        let ext = b.role("clients", RoleKind::ExternalClient, 10, vec![]);
        b.connect(ext, fe, TrafficProfile::rpc(5.0, 400.0, 8000.0));
        b.connect(fe, be, TrafficProfile::rpc(20.0, 300.0, 1500.0));
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_ids() {
        let t = two_tier();
        for (i, r) in t.roles.iter().enumerate() {
            assert_eq!(r.id.0 as usize, i);
        }
        assert_eq!(t.roles.len(), 3);
        assert_eq!(t.edges.len(), 2);
    }

    #[test]
    fn monitored_count_excludes_externals() {
        let t = two_tier();
        assert_eq!(t.monitored_count(), 5);
        assert_eq!(t.total_replicas(), 15);
    }

    #[test]
    fn ips_are_unique_and_deterministic() {
        let t = two_tier();
        let a = t.initial_assignments().unwrap();
        let b = t.initial_assignments().unwrap();
        assert_eq!(a, b, "assignment must be deterministic");
        let mut ips: Vec<_> = a.iter().map(|(ip, _)| *ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), t.total_replicas(), "no duplicate addresses");
    }

    #[test]
    fn internal_and_external_pools_are_disjoint() {
        let t = two_tier();
        for (ip, role) in t.initial_assignments().unwrap() {
            let monitored = t.role(role).unwrap().is_monitored();
            assert_eq!(ip.octets()[0] == 10, monitored, "{ip} vs role monitoring");
        }
    }

    #[test]
    fn large_role_spans_subnets() {
        let mut b = TopologyBuilder::new("big", 1);
        let w = b.role("workers", RoleKind::Worker, 1400, vec![9000]);
        b.connect(w, w, TrafficProfile::rpc(1.0, 100.0, 100.0));
        let t = b.build().unwrap();
        let ips = t.initial_assignments().unwrap();
        assert_eq!(ips.len(), 1400);
        let third_octets: std::collections::HashSet<u8> =
            ips.iter().map(|(ip, _)| ip.octets()[2]).collect();
        assert!(third_octets.len() >= 6, "1400 replicas must span several /24s");
    }

    #[test]
    fn validation_rejects_portless_destination() {
        let mut b = TopologyBuilder::new("bad", 0);
        let a = b.role("a", RoleKind::Service, 1, vec![80]);
        let c = b.role("clients", RoleKind::ExternalClient, 1, vec![]);
        b.connect(a, c, TrafficProfile::rpc(1.0, 10.0, 10.0));
        assert!(matches!(b.build(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn validation_rejects_zero_replicas() {
        let mut b = TopologyBuilder::new("bad", 0);
        b.role("a", RoleKind::Service, 0, vec![80]);
        assert!(b.build().is_err());
    }

    #[test]
    fn validation_rejects_bad_continue_p() {
        let mut b = TopologyBuilder::new("bad", 0);
        let a = b.role("a", RoleKind::Service, 1, vec![80]);
        b.connect(a, a, TrafficProfile::rpc(1.0, 10.0, 10.0).with_continue_p(1.0));
        assert!(b.build().is_err());
    }

    #[test]
    fn ip_pool_exhaustion_is_an_error() {
        let mut b = TopologyBuilder::new("huge", 0);
        b.role("w", RoleKind::Worker, 70_000, vec![1]);
        let t = b.topo; // skip validate; we only probe addressing
        assert!(matches!(t.ip_of(RoleId(0), 69_999), Err(Error::IpPoolExhausted { .. })));
    }
}
