//! Role-based cloud workload simulator.
//!
//! The paper analyzes production flow telemetry from four clusters (Table 1:
//! `Portal`, `µserviceBench`, `K8s PaaS`, `KQuery`). Those traces are
//! proprietary, so this crate synthesizes the closest equivalent: a
//! deterministic, seeded simulator that models a cloud deployment as a set of
//! **roles** (front-ends, caches, databases, control-plane hubs, external
//! clients, …) with replica counts and per-role-pair **traffic profiles**,
//! and emits exactly the connection-summary schema that real NSG/VPC flow
//! logs carry ([`flowlog::ConnSummary`]).
//!
//! Why this substitution preserves the paper's behaviour: every analysis in
//! the paper consumes only the Table 2 record stream, and the patterns those
//! analyses exploit — multiple replicas playing the same role, chatty
//! cliques, hub-and-spoke control planes, heavy-tailed traffic skew — are
//! properties of *software structure*, which the role model reproduces by
//! construction. Crucially, the simulator also knows its own ground truth
//! (which IP plays which role, which flows belong to an injected attack), so
//! segmentation quality and detection can be *scored*, not just eyeballed.
//!
//! Modules:
//! * [`roles`] — role identities and kinds.
//! * [`traffic`] — per-edge traffic profiles (rates, sizes, durations, fanout).
//! * [`topology`] — a named set of roles, replicas, and role-to-role edges.
//! * [`load`] — time-of-day modulation: diurnal curves, flash crowds, steps.
//! * [`churn`] — autoscaling and pod-migration events.
//! * [`net`] — seeded delivery-network simulation: per-host agents, latency,
//!   loss, duplication, and scripted faults (crashes, partitions, skew).
//! * [`attack`] — breach and attack-simulation injectors with labeled flows.
//! * [`sim`] — the minute-stepped engine that turns all of the above into a
//!   connection-summary stream plus ground truth.
//! * [`presets`] — the four reference clusters scaled to Table 1.
//! * [`randx`] — the distribution samplers (Poisson, log-normal, Zipf) the
//!   engine needs, built on `rand`'s uniform source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod churn;
pub mod error;
pub mod load;
pub mod net;
pub mod presets;
pub mod randx;
pub mod roles;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use error::{Error, Result};
pub use presets::ClusterPreset;
pub use sim::{GroundTruth, SimConfig, Simulator};
pub use topology::Topology;
