//! Traffic profiles: how two roles talk.
//!
//! A profile describes one directed role-to-role conversation pattern — the
//! connection arrival rate, how a source replica picks among destination
//! replicas, the distribution of bytes each way, and how long connections
//! live. These few knobs reproduce the canonical patterns the paper observes
//! in real adjacency matrices (§2.2): chatty cliques, hub-and-spoke, and
//! heavy-tailed per-node traffic shares.

use crate::randx::LogNormal;
use flowlog::record::Protocol;
use serde::{Deserialize, Serialize};

/// How a source replica chooses destination replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fanout {
    /// Every connection picks a destination uniformly at random — the load-
    /// balanced service call pattern.
    Uniform,
    /// Replica *i* talks (mostly) to replica *i mod n* — sticky partnering,
    /// e.g. local sidecars or shard-affine clients.
    Sticky,
    /// Each source talks to **all** destination replicas each interval — the
    /// all-to-all shuffle of query engines; creates chatty cliques.
    All,
    /// Zipf-skewed choice with the given exponent — popularity skew, e.g.
    /// hot partitions or popular backends.
    Zipf(f64),
}

/// Average packet payload+header size used to derive packet counts from byte
/// counts. Cloud east-west traffic mixes full MSS data packets with ACKs;
/// ~900 B/packet is a reasonable blended average.
pub const AVG_PACKET_BYTES: f64 = 900.0;

/// A directed traffic pattern from every replica of a source role to the
/// replicas of a destination role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Mean new connections per minute *per source replica* at load 1.0.
    pub conns_per_min: f64,
    /// Destination-choice policy.
    pub fanout: Fanout,
    /// Distribution of bytes sent by the connection initiator, per minute of
    /// flow lifetime (median, sigma).
    pub fwd_bytes_per_min: (f64, f64),
    /// Distribution of bytes sent back by the acceptor, per minute.
    pub rev_bytes_per_min: (f64, f64),
    /// Probability a live connection survives into the next minute.
    /// 0 ⇒ all connections are sub-minute; 0.9 ⇒ mean lifetime 10 minutes.
    pub continue_p: f64,
    /// Transport protocol of the conversation (TCP for almost everything in
    /// a cloud; UDP for DNS and some telemetry).
    pub proto: Protocol,
}

impl TrafficProfile {
    /// A short request/response RPC profile (`conns_per_min` calls of roughly
    /// `req`/`resp` bytes each, all sub-minute).
    pub fn rpc(conns_per_min: f64, req: f64, resp: f64) -> Self {
        TrafficProfile {
            conns_per_min,
            fanout: Fanout::Uniform,
            fwd_bytes_per_min: (req, 0.8),
            rev_bytes_per_min: (resp, 1.0),
            continue_p: 0.0,
            proto: Protocol::Tcp,
        }
    }

    /// A persistent bulk-transfer profile (long-lived connections moving
    /// roughly `bytes_per_min` each way per minute).
    pub fn bulk(conns_per_min: f64, fwd_per_min: f64, rev_per_min: f64) -> Self {
        TrafficProfile {
            conns_per_min,
            fanout: Fanout::Uniform,
            fwd_bytes_per_min: (fwd_per_min, 0.6),
            rev_bytes_per_min: (rev_per_min, 0.6),
            continue_p: 0.85,
            proto: Protocol::Tcp,
        }
    }

    /// Override the fanout policy (builder style).
    pub fn with_fanout(mut self, fanout: Fanout) -> Self {
        self.fanout = fanout;
        self
    }

    /// Override the continuation probability (builder style).
    pub fn with_continue_p(mut self, p: f64) -> Self {
        self.continue_p = p;
        self
    }

    /// Override the transport protocol (builder style).
    pub fn with_proto(mut self, proto: Protocol) -> Self {
        self.proto = proto;
        self
    }

    /// Log-normal sampler for initiator bytes per minute.
    pub fn fwd_dist(&self) -> LogNormal {
        LogNormal::new(self.fwd_bytes_per_min.0.max(1.0), self.fwd_bytes_per_min.1)
    }

    /// Log-normal sampler for acceptor bytes per minute.
    pub fn rev_dist(&self) -> LogNormal {
        LogNormal::new(self.rev_bytes_per_min.0.max(1.0), self.rev_bytes_per_min.1)
    }

    /// Expected new connections per minute from one source replica toward
    /// `n_dst` destination replicas (the `All` fanout multiplies by fan-out
    /// width; the others are per-connection policies).
    pub fn expected_conns(&self, n_dst: usize) -> f64 {
        match self.fanout {
            Fanout::All => self.conns_per_min * n_dst as f64,
            _ => self.conns_per_min,
        }
    }
}

/// Derive a packet count from a byte count: at least one packet for any
/// non-zero byte volume, otherwise bytes divided by the blended average
/// packet size.
pub fn packets_for_bytes(bytes: u64) -> u64 {
    if bytes == 0 {
        0
    } else {
        ((bytes as f64 / AVG_PACKET_BYTES).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_scale_with_bytes() {
        assert_eq!(packets_for_bytes(0), 0);
        assert_eq!(packets_for_bytes(1), 1);
        assert_eq!(packets_for_bytes(900), 1);
        assert_eq!(packets_for_bytes(901), 2);
        assert!(packets_for_bytes(1_000_000) >= 1000);
    }

    #[test]
    fn rpc_profile_is_short_lived() {
        let p = TrafficProfile::rpc(10.0, 500.0, 2000.0);
        assert_eq!(p.continue_p, 0.0);
        assert_eq!(p.expected_conns(50), 10.0, "uniform fanout ignores dst count");
    }

    #[test]
    fn all_fanout_multiplies_by_width() {
        let p = TrafficProfile::bulk(2.0, 1e6, 1e4).with_fanout(Fanout::All);
        assert_eq!(p.expected_conns(30), 60.0);
    }

    #[test]
    fn builders_compose() {
        let p = TrafficProfile::rpc(1.0, 100.0, 100.0)
            .with_fanout(Fanout::Zipf(1.1))
            .with_continue_p(0.5);
        assert_eq!(p.fanout, Fanout::Zipf(1.1));
        assert_eq!(p.continue_p, 0.5);
    }

    #[test]
    fn distributions_guard_against_zero_median() {
        let p = TrafficProfile::rpc(1.0, 0.0, 0.0);
        // Must not panic; medians are clamped to at least one byte.
        let _ = p.fwd_dist();
        let _ = p.rev_dist();
    }

    #[test]
    fn proto_override_applies() {
        let p = TrafficProfile::rpc(1.0, 100.0, 100.0).with_proto(Protocol::Udp);
        assert_eq!(p.proto, Protocol::Udp);
        assert_eq!(TrafficProfile::bulk(1.0, 1e6, 1e4).proto, Protocol::Tcp);
    }

    #[test]
    fn non_all_fanouts_are_per_connection_policies() {
        // Sticky and Zipf shape *which* destination is picked, not how many
        // connections exist — expected_conns must ignore the replica count.
        for fanout in [Fanout::Uniform, Fanout::Sticky, Fanout::Zipf(1.2)] {
            let p = TrafficProfile::rpc(7.0, 100.0, 100.0).with_fanout(fanout);
            assert_eq!(p.expected_conns(1), 7.0);
            assert_eq!(p.expected_conns(64), 7.0);
        }
    }

    #[test]
    fn packet_derivation_is_monotone() {
        let mut last = 0;
        for bytes in [0u64, 1, 899, 900, 901, 9000, 1 << 20, 1 << 30] {
            let pkts = packets_for_bytes(bytes);
            assert!(pkts >= last, "packets must not decrease as bytes grow");
            last = pkts;
        }
        // A full packet's worth of bytes is never more than one packet off
        // the exact ratio.
        let pkts = packets_for_bytes(90_000);
        assert_eq!(pkts, 100);
    }

    #[test]
    fn profiles_round_trip_through_serde() {
        let p = TrafficProfile::bulk(3.0, 5e5, 2e4)
            .with_fanout(Fanout::Zipf(1.01))
            .with_proto(Protocol::Udp);
        let json = serde_json::to_string_pretty(&p).expect("serializes");
        let back: TrafficProfile = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, p);
    }
}
