//! Distribution samplers built on `rand`'s uniform source.
//!
//! The sanctioned dependency set includes `rand` but not `rand_distr`, so the
//! handful of distributions the simulator needs — normal, log-normal,
//! Poisson, geometric, Zipf — are implemented here. Each sampler is small,
//! deterministic under a seeded RNG, and unit-tested against its analytic
//! moments.

use rand::RngExt;

/// Draw a standard normal via the Box–Muller transform.
pub fn std_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution parameterized by the *median* and the shape
/// `sigma` (standard deviation of the underlying normal).
///
/// Flow sizes in datacenters are famously heavy-tailed; log-normal captures
/// the "most flows are mice, a few are elephants" regime the paper's CCDF
/// (Figure 6) depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Median of the distribution (`exp(mu)`).
    pub median: f64,
    /// Shape parameter; 0 collapses to the constant `median`.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from median and sigma.
    pub fn new(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "log-normal median must be positive");
        assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
        LogNormal { median, sigma }
    }

    /// Sample one value.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.median;
        }
        self.median * (self.sigma * std_normal(rng)).exp()
    }

    /// Analytic mean: `median * exp(sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        self.median * (self.sigma * self.sigma / 2.0).exp()
    }
}

/// Sample a Poisson count with the given mean.
///
/// Uses Knuth's product method for small means and a clamped normal
/// approximation for large ones, keeping the per-sample cost O(1) even for
/// the multi-thousand-flows-per-minute rates of the KQuery preset.
pub fn poisson<R: RngExt + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "Poisson mean must be finite and >= 0");
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut prod: f64 = rng.random_range(0.0..1.0);
        let mut count = 0u64;
        while prod > limit {
            prod *= rng.random_range(0.0..1.0_f64);
            count += 1;
        }
        count
    } else {
        // Normal approximation with continuity correction.
        let draw = mean + mean.sqrt() * std_normal(rng) + 0.5;
        draw.max(0.0) as u64
    }
}

/// Geometric number of *additional* intervals a flow stays alive, from the
/// per-interval continuation probability. `continue_p = 0` means every flow
/// lives exactly one interval.
pub fn geometric_extra<R: RngExt + ?Sized>(continue_p: f64, rng: &mut R) -> u64 {
    assert!((0.0..1.0).contains(&continue_p), "continuation probability must be in [0, 1)");
    if continue_p == 0.0 {
        return 0;
    }
    let mut extra = 0u64;
    // Cap to keep adversarial probabilities from spinning forever.
    while extra < 10_000 && rng.random_range(0.0..1.0) < continue_p {
        extra += 1;
    }
    extra
}

/// Zipf-distributed index in `[0, n)`: index 0 is most popular.
///
/// Used for client-popularity and query-target skew. Implemented by
/// precomputing the CDF, O(log n) per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` items with exponent `s` (s=0 → uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler covers no items (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample an index.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        // `total_cmp` is a total order over f64, so NaN (which `new` cannot
        // produce anyway) degrades to an ordinary comparison, not a panic.
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC10D)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::new(1000.0, 1.0);
        let mut r = rng();
        let n = 30_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median / 1000.0 - 1.0).abs() < 0.1, "median {median}");
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean / d.mean() - 1.0).abs() < 0.15, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::new(42.0, 0.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 42.0);
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(3.5, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_path() {
        let mut r = rng();
        let n = 5_000;
        let total: u64 = (0..n).map(|_| poisson(5000.0, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean / 5000.0 - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(0.0, &mut r), 0);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = rng();
        let p = 0.75;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| geometric_extra(p, &mut r)).sum();
        let mean = total as f64 / n as f64;
        let expect = p / (1.0 - p); // mean of geometric counting failures before success
        assert!((mean - expect).abs() < 0.15, "mean {mean} expect {expect}");
    }

    #[test]
    fn geometric_zero_p_is_zero() {
        let mut r = rng();
        assert_eq!(geometric_extra(0.0, &mut r), 0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            let i = z.sample(&mut r);
            assert!(i < 100);
            counts[i] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50], "head must dominate tail");
    }

    #[test]
    fn zipf_s0_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "uniform within 20%: {counts:?}");
    }
}
