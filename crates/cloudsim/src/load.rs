//! Time-varying load modulation.
//!
//! Real cloud traffic is not stationary: the paper's hourly timelapse
//! (Figure 5) shows bands growing, shrinking, and appearing across hours,
//! and its proportionality-based policies (§2.1) hinge on telling a flash
//! crowd (all tiers scale together) from a compromised VM (one edge grows
//! alone). [`LoadShape`]s multiply a profile's connection rate as a function
//! of simulation time.

use serde::{Deserialize, Serialize};

/// A multiplicative load modifier over time (minutes from simulation start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadShape {
    /// No variation.
    Constant,
    /// Sinusoidal day: `1 + amplitude * sin(2π (t - phase)/period)`,
    /// clamped at ≥ 0.05 so traffic never fully stops.
    Diurnal {
        /// Period in minutes (1440 = a day; tests often use 60).
        period_min: f64,
        /// Relative swing, e.g. 0.5 for ±50%.
        amplitude: f64,
        /// Phase offset in minutes.
        phase_min: f64,
    },
    /// A flash crowd: multiply by `factor` during `[start, start+duration)`.
    Spike {
        /// First minute of the surge.
        start_min: u64,
        /// Length of the surge in minutes.
        duration_min: u64,
        /// Load multiplier while active (e.g. 5.0).
        factor: f64,
    },
    /// A permanent step change at `at_min` (e.g. a code rollout that doubles
    /// chatter): multiply by `factor` from then on.
    Step {
        /// Minute the change takes effect.
        at_min: u64,
        /// Multiplier after the change.
        factor: f64,
    },
}

impl LoadShape {
    /// The multiplier at minute `t`.
    pub fn factor_at(&self, t: u64) -> f64 {
        match *self {
            LoadShape::Constant => 1.0,
            LoadShape::Diurnal { period_min, amplitude, phase_min } => {
                let x = (t as f64 - phase_min) / period_min * std::f64::consts::TAU;
                (1.0 + amplitude * x.sin()).max(0.05)
            }
            LoadShape::Spike { start_min, duration_min, factor } => {
                if (start_min..start_min + duration_min).contains(&t) {
                    factor
                } else {
                    1.0
                }
            }
            LoadShape::Step { at_min, factor } => {
                if t >= at_min {
                    factor
                } else {
                    1.0
                }
            }
        }
    }
}

/// A stack of shapes applied multiplicatively.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadSchedule {
    shapes: Vec<LoadShape>,
}

impl LoadSchedule {
    /// The identity schedule (factor 1.0 forever).
    pub fn steady() -> Self {
        LoadSchedule::default()
    }

    /// Add a shape (builder style).
    pub fn with(mut self, shape: LoadShape) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Combined multiplier at minute `t`.
    pub fn factor_at(&self, t: u64) -> f64 {
        self.shapes.iter().map(|s| s.factor_at(t)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LoadShape::Constant.factor_at(0), 1.0);
        assert_eq!(LoadShape::Constant.factor_at(10_000), 1.0);
    }

    #[test]
    fn diurnal_oscillates_and_stays_positive() {
        let d = LoadShape::Diurnal { period_min: 1440.0, amplitude: 0.9, phase_min: 0.0 };
        let peak = d.factor_at(360); // quarter period: sin = 1
        let trough = d.factor_at(1080); // three quarters: sin = -1
        assert!((peak - 1.9).abs() < 1e-6, "peak {peak}");
        assert!((trough - 0.1).abs() < 1e-6, "trough {trough}");
        let extreme = LoadShape::Diurnal { period_min: 1440.0, amplitude: 2.0, phase_min: 0.0 };
        assert!(extreme.factor_at(1080) >= 0.05, "clamped at a positive floor");
    }

    #[test]
    fn spike_is_half_open() {
        let s = LoadShape::Spike { start_min: 10, duration_min: 5, factor: 4.0 };
        assert_eq!(s.factor_at(9), 1.0);
        assert_eq!(s.factor_at(10), 4.0);
        assert_eq!(s.factor_at(14), 4.0);
        assert_eq!(s.factor_at(15), 1.0);
    }

    #[test]
    fn step_persists() {
        let s = LoadShape::Step { at_min: 100, factor: 2.0 };
        assert_eq!(s.factor_at(99), 1.0);
        assert_eq!(s.factor_at(100), 2.0);
        assert_eq!(s.factor_at(100_000), 2.0);
    }

    #[test]
    fn schedule_multiplies_shapes() {
        let sched = LoadSchedule::steady()
            .with(LoadShape::Step { at_min: 0, factor: 2.0 })
            .with(LoadShape::Spike { start_min: 5, duration_min: 1, factor: 3.0 });
        assert_eq!(sched.factor_at(0), 2.0);
        assert_eq!(sched.factor_at(5), 6.0);
        assert_eq!(LoadSchedule::steady().factor_at(3), 1.0);
    }
}
