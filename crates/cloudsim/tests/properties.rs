//! Property-based tests for the workload simulator.

use cloudsim::load::{LoadSchedule, LoadShape};
use cloudsim::roles::RoleKind;
use cloudsim::topology::TopologyBuilder;
use cloudsim::traffic::{Fanout, TrafficProfile};
use cloudsim::{SimConfig, Simulator, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        1usize..5,
        1usize..8,
        1usize..20,
        0.5f64..30.0,
        prop_oneof![
            Just(Fanout::Uniform),
            Just(Fanout::Sticky),
            (0.1f64..2.0).prop_map(Fanout::Zipf),
        ],
        0.0f64..0.9,
    )
        .prop_map(|(fe_n, be_n, ext_n, rate, fanout, continue_p)| {
            let mut b = TopologyBuilder::new("prop", 44);
            let fe = b.role("fe", RoleKind::Frontend, fe_n, vec![443]);
            let be = b.role("be", RoleKind::Service, be_n, vec![8080, 8443]);
            let ext = b.role("ext", RoleKind::ExternalClient, ext_n, vec![]);
            b.connect(ext, fe, TrafficProfile::rpc(1.5, 300.0, 5_000.0));
            b.connect(
                fe,
                be,
                TrafficProfile::rpc(rate, 400.0, 2_000.0)
                    .with_fanout(fanout)
                    .with_continue_p(continue_p),
            );
            b.build().expect("generated topology is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ephemeral source ports always come from the ephemeral range, service
    /// ports always from the role's declared set.
    #[test]
    fn port_discipline(topo in arb_topology(), seed in 0u64..500) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid");
        let records = sim.collect(3);
        for r in &records {
            // The local side reported; one side must be a service port.
            let sp = [443u16, 8080, 8443];
            let local_svc = sp.contains(&r.key.local_port);
            let remote_svc = sp.contains(&r.key.remote_port);
            prop_assert!(local_svc || remote_svc, "no service port in {:?}", r.key);
            if !local_svc {
                prop_assert!(
                    (32_768..=60_999).contains(&r.key.local_port),
                    "ephemeral out of range: {}",
                    r.key.local_port
                );
            }
        }
    }

    /// Both-monitored flows appear exactly twice per minute (mirrored);
    /// external flows exactly once, from the monitored side.
    #[test]
    fn vantage_discipline(topo in arb_topology(), seed in 0u64..500) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid");
        let records = sim.collect(2);
        use std::collections::HashMap;
        let mut groups: HashMap<_, Vec<&flowlog::ConnSummary>> = HashMap::new();
        for r in &records {
            groups.entry((r.ts, r.key.canonical())).or_default().push(r);
        }
        for ((_, key), group) in groups {
            let internal = |ip: std::net::Ipv4Addr| ip.octets()[0] == 10;
            if internal(key.local_ip) && internal(key.remote_ip) {
                prop_assert_eq!(group.len(), 2, "internal flows report twice: {:?}", key);
                prop_assert_eq!(*group[0], group[1].mirrored(), "and mirror exactly");
            } else {
                prop_assert_eq!(group.len(), 1, "external flows report once: {:?}", key);
                prop_assert!(internal(group[0].key.local_ip), "from the monitored side");
            }
        }
    }

    /// Scaling load up never reduces expected traffic (checked with the
    /// same seed so the comparison is paired).
    #[test]
    fn load_monotonicity(topo in arb_topology(), seed in 0u64..200) {
        let run = |factor: f64| {
            let cfg = SimConfig {
                seed,
                load: LoadSchedule::steady()
                    .with(LoadShape::Step { at_min: 0, factor }),
                ..Default::default()
            };
            Simulator::new(topo.clone(), cfg).expect("valid").collect(3).len()
        };
        let low = run(0.5);
        let high = run(4.0);
        prop_assert!(
            high as f64 >= low as f64,
            "8x the load must not shrink traffic: {low} -> {high}"
        );
    }

    /// Ground truth covers every IP that ever appears as a reporter, and
    /// external IPs never appear as reporters.
    #[test]
    fn ground_truth_is_complete(topo in arb_topology(), seed in 0u64..500) {
        let mut sim = Simulator::new(topo, SimConfig { seed, ..Default::default() })
            .expect("valid");
        let records = sim.collect(2);
        let truth = sim.ground_truth();
        for r in &records {
            prop_assert!(truth.role_of(r.key.local_ip).is_some(), "{}", r.key.local_ip);
            prop_assert_eq!(r.key.local_ip.octets()[0], 10, "only monitored VMs report");
        }
    }
}

#[test]
fn dns_traffic_is_udp() {
    // The K8s PaaS preset's coredns edges speak UDP; everything else TCP.
    use cloudsim::ClusterPreset;
    use flowlog::record::Protocol;
    let preset = ClusterPreset::K8sPaas;
    let mut sim = Simulator::new(preset.topology_scaled(0.1), preset.default_sim_config())
        .expect("valid preset");
    let records = sim.collect(3);
    let udp: Vec<_> = records.iter().filter(|r| r.key.proto == Protocol::Udp).collect();
    assert!(!udp.is_empty(), "DNS lookups must appear as UDP");
    assert!(
        udp.iter().all(|r| r.key.remote_port == 53 || r.key.local_port == 53),
        "UDP traffic is DNS"
    );
    assert!(records.iter().any(|r| r.key.proto == Protocol::Tcp));
}

#[test]
fn churned_in_replicas_get_fresh_addresses() {
    // Regression: scale-out addresses must never collide with another
    // role's static assignment (they once did, silently corrupting ground
    // truth by re-labeling existing VMs).
    use cloudsim::churn::ChurnPlan;
    use cloudsim::ClusterPreset;
    let preset = ClusterPreset::K8sPaas;
    let topo = preset.topology_scaled(0.3);
    let web = topo.role_named("tenant0-web").expect("role").id;
    let mut cfg = preset.default_sim_config();
    cfg.churn = ChurnPlan::none().with(2, web, 6);
    let mut sim = Simulator::new(topo, cfg).expect("valid");
    let truth_before = sim.ground_truth().ip_roles.len();
    let _ = sim.collect(5);
    let truth_after = sim.ground_truth().ip_roles.len();
    assert_eq!(truth_after, truth_before + 6, "every new replica is a new IP");
    // And the new addresses live in the dynamic range.
    let dynamic: Vec<_> =
        sim.ground_truth().ip_roles.keys().filter(|ip| ip.octets()[2] >= 240).collect();
    assert_eq!(dynamic.len(), 6);
}
