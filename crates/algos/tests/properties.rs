//! Property-based tests for the graph algorithms.
#![allow(clippy::needless_range_loop)] // index pairs are clearest for symmetry checks

use algos::jaccard::{
    jaccard_matrix_of_sets, jaccard_matrix_of_sets_with, jaccard_of_sets, MinHasher,
};
use algos::louvain::{
    aggregate, hierarchical_louvain, hierarchical_louvain_with, louvain, louvain_with, modularity,
    HierarchicalConfig,
};
use algos::metrics::{adjusted_rand_index, normalized_mutual_information, purity};
use algos::simrank::{simrank_pp_with, simrank_with, SimRankConfig};
use algos::wgraph::WeightedGraph;
use algos::{Parallelism, SymMatrix};
use proptest::prelude::*;

/// Arbitrary undirected weighted graph with n ≤ 24 nodes.
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..100.0);
        prop::collection::vec(edge, 0..60)
            .prop_map(move |edges| WeightedGraph::from_edges(n, &edges))
    })
}

fn arb_labels(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Jaccard is symmetric, bounded, and 1 on identical non-empty sets.
    #[test]
    fn jaccard_axioms(
        a in prop::collection::btree_set(0u32..50, 0..20),
        b in prop::collection::btree_set(0u32..50, 0..20),
    ) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        let s = jaccard_of_sets(&av, &bv);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, jaccard_of_sets(&bv, &av));
        if !av.is_empty() {
            prop_assert_eq!(jaccard_of_sets(&av, &av), 1.0);
        }
    }

    /// The similarity matrix is symmetric with a unit diagonal.
    #[test]
    fn jaccard_matrix_axioms(
        sets in prop::collection::vec(
            prop::collection::btree_set(0u32..40, 0..12)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..12,
        )
    ) {
        let m = jaccard_matrix_of_sets(&sets);
        for i in 0..sets.len() {
            prop_assert_eq!(m[(i, i)], 1.0);
            for j in 0..sets.len() {
                prop_assert_eq!(m[(i, j)], m[(j, i)]);
                prop_assert!((0.0..=1.0).contains(&m[(i, j)]));
            }
        }
    }

    /// Parallel Jaccard (exact and sketched) is bit-for-bit identical to the
    /// serial kernel at 1, 2, and NCPU workers.
    #[test]
    fn parallel_jaccard_matches_serial_bitwise(
        sets in prop::collection::vec(
            prop::collection::btree_set(0u32..40, 0..12)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..16,
        )
    ) {
        let serial = jaccard_matrix_of_sets_with(&sets, Parallelism::serial());
        let mh = MinHasher::new(32, 17);
        let mh_serial = mh.similarity_matrix_of_sets_with(&sets, Parallelism::serial());
        let ncpu = Parallelism::default().workers();
        for workers in [1, 2, ncpu] {
            let p = Parallelism::new(workers);
            prop_assert_eq!(&jaccard_matrix_of_sets_with(&sets, p), &serial);
            prop_assert_eq!(&mh.similarity_matrix_of_sets_with(&sets, p), &mh_serial);
        }
    }

    /// Parallel SimRank / SimRank++ are bit-for-bit identical to the serial
    /// kernels at 1, 2, and NCPU workers.
    #[test]
    fn parallel_simrank_matches_serial_bitwise(g in arb_graph()) {
        let cfg = SimRankConfig { decay: 0.8, iterations: 3 };
        let serial = simrank_with(&g, cfg, Parallelism::serial());
        let serial_pp = simrank_pp_with(&g, cfg, Parallelism::serial());
        let ncpu = Parallelism::default().workers();
        for workers in [1, 2, ncpu] {
            let p = Parallelism::new(workers);
            prop_assert_eq!(&simrank_with(&g, cfg, p), &serial);
            prop_assert_eq!(&simrank_pp_with(&g, cfg, p), &serial_pp);
        }
    }

    /// Writing either triangle of a SymMatrix leaves it exactly symmetric.
    #[test]
    fn symmatrix_set_preserves_symmetry(
        n in 1usize..20,
        writes in prop::collection::vec((0usize..20, 0usize..20, -100.0f64..100.0), 0..40),
    ) {
        let mut m = SymMatrix::zeros(n);
        for (i, j, v) in writes {
            let (i, j) = (i % n, j % n);
            m.set(i, j, v);
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    /// MinHash estimates stay within sketch error of exact Jaccard.
    #[test]
    fn minhash_tracks_exact(
        a in prop::collection::btree_set(0u32..60, 1..25),
        b in prop::collection::btree_set(0u32..60, 1..25),
    ) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        let exact = jaccard_of_sets(&av, &bv);
        let mh = MinHasher::new(512, 99);
        let est = mh.estimate(&mh.signature(&av), &mh.signature(&bv));
        // 512 hashes ⇒ σ ≈ 0.044; allow 4σ.
        prop_assert!((exact - est).abs() < 0.18, "exact {exact} vs est {est}");
    }

    /// Louvain output is a valid, compact labeling whose modularity is at
    /// least that of the trivial partitions.
    #[test]
    fn louvain_validity(g in arb_graph()) {
        let r = louvain(&g);
        prop_assert_eq!(r.labels.len(), g.node_count());
        if !r.labels.is_empty() {
            let max = *r.labels.iter().max().expect("non-empty");
            let distinct: std::collections::HashSet<_> = r.labels.iter().collect();
            prop_assert_eq!(distinct.len(), max + 1, "labels are compact");
        }
        let singletons: Vec<usize> = (0..g.node_count()).collect();
        let one = vec![0usize; g.node_count()];
        prop_assert!(r.modularity + 1e-9 >= modularity(&g, &singletons, 1.0));
        if g.node_count() > 0 {
            prop_assert!(r.modularity + 1e-9 >= modularity(&g, &one, 1.0));
        }
        // Modularity is always in [-1, 1].
        prop_assert!((-1.0..=1.0).contains(&r.modularity));
    }

    /// Hierarchical refinement never loses modularity-relevant validity and
    /// never coarsens below the flat partition.
    #[test]
    fn hierarchical_louvain_validity(g in arb_graph()) {
        let flat = louvain(&g);
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        prop_assert_eq!(hier.labels.len(), g.node_count());
        let n_flat = flat.labels.iter().copied().max().map_or(0, |m| m + 1);
        let n_hier = hier.labels.iter().copied().max().map_or(0, |m| m + 1);
        prop_assert!(n_hier >= n_flat, "refinement only splits");
    }

    /// Parallel Louvain is bit-for-bit identical to the serial path at 1, 2,
    /// and NCPU workers — labels, modularity bits, and level count — for both
    /// the flat and the hierarchical variants.
    #[test]
    fn parallel_louvain_matches_serial_bitwise(g in arb_graph()) {
        let serial = louvain_with(&g, 1.0, Parallelism::serial());
        let hier_serial =
            hierarchical_louvain_with(&g, HierarchicalConfig::default(), Parallelism::serial());
        let ncpu = Parallelism::default().workers();
        for workers in [1, 2, ncpu] {
            let p = Parallelism::new(workers);
            let r = louvain_with(&g, 1.0, p);
            prop_assert_eq!(&r.labels, &serial.labels, "{} workers", workers);
            prop_assert_eq!(r.modularity.to_bits(), serial.modularity.to_bits());
            prop_assert_eq!(r.levels, serial.levels);
            let h = hierarchical_louvain_with(&g, HierarchicalConfig::default(), p);
            prop_assert_eq!(&h.labels, &hier_serial.labels, "hier, {} workers", workers);
            prop_assert_eq!(h.modularity.to_bits(), hier_serial.modularity.to_bits());
            prop_assert_eq!(h.levels, hier_serial.levels);
        }
    }

    /// Modularity is invariant under any relabeling bijection: renaming
    /// communities cannot change the score.
    #[test]
    fn modularity_label_permutation_invariant(
        (g, labels) in arb_graph().prop_flat_map(|g| {
            let n = g.node_count();
            (Just(g), prop::collection::vec(0usize..6, n))
        })
    ) {
        let q = modularity(&g, &labels, 1.0);
        // `l -> 5 - l` is a bijection on the 0..6 label alphabet.
        let flipped: Vec<usize> = labels.iter().map(|&l| 5 - l).collect();
        prop_assert!((q - modularity(&g, &flipped, 1.0)).abs() < 1e-9);
        // Cyclic shift is another bijection.
        let shifted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 6).collect();
        prop_assert!((q - modularity(&g, &shifted, 1.0)).abs() < 1e-9);
    }

    /// Aggregation conserves mass: the community graph's total edge weight
    /// equals the original's (intra-community weight becomes self-loops).
    #[test]
    fn aggregate_preserves_total_weight(
        (g, labels) in arb_graph().prop_flat_map(|g| {
            let n = g.node_count();
            (Just(g), prop::collection::vec(0usize..5, n))
        })
    ) {
        let agg = aggregate(&g, &labels);
        let scale = g.total_weight().max(1.0);
        prop_assert!(
            (agg.total_weight() - g.total_weight()).abs() <= 1e-9 * scale,
            "{} vs {}", agg.total_weight(), g.total_weight()
        );
    }

    /// Partition metrics: identical labelings score 1, scores are bounded,
    /// metrics are symmetric where they should be.
    #[test]
    fn metric_axioms(labels in arb_labels(12), other in arb_labels(12)) {
        prop_assert!((adjusted_rand_index(&labels, &labels).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!(
            (normalized_mutual_information(&labels, &labels).unwrap() - 1.0).abs() < 1e-9
        );
        let ari = adjusted_rand_index(&labels, &other).unwrap();
        let ari_sym = adjusted_rand_index(&other, &labels).unwrap();
        prop_assert!((ari - ari_sym).abs() < 1e-9, "ARI is symmetric");
        prop_assert!(ari <= 1.0 + 1e-9);
        let nmi = normalized_mutual_information(&labels, &other).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi));
        let p = purity(&labels, &other).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
    }

    /// Relabeling a partition never changes ARI/NMI against a reference.
    #[test]
    fn metrics_are_relabel_invariant(labels in arb_labels(10), reference in arb_labels(10)) {
        let relabeled: Vec<usize> = labels.iter().map(|&l| 7 - l).collect();
        let a1 = adjusted_rand_index(&labels, &reference).unwrap();
        let a2 = adjusted_rand_index(&relabeled, &reference).unwrap();
        prop_assert!((a1 - a2).abs() < 1e-9);
        let n1 = normalized_mutual_information(&labels, &reference).unwrap();
        let n2 = normalized_mutual_information(&relabeled, &reference).unwrap();
        prop_assert!((n1 - n2).abs() < 1e-9);
    }
}
