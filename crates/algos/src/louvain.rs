//! Louvain community detection (Blondel et al. \[33\]).
//!
//! Two uses in the paper: (a) as the clustering stage of its own
//! segmentation — run on the Jaccard-scored *clique*, where communities are
//! groups of mutually-similar nodes, i.e. roles; and (b) directly on the
//! communication graph with connection- or byte-weighted edges, as the
//! Figure 3(c)/(d) baselines — which group nodes that *talk to each other*,
//! precisely the wrong notion for role inference, as the experiments show.
//!
//! The implementation is the standard two-phase hierarchy: greedy local
//! moves to the neighboring community with the best modularity gain, then
//! aggregation of communities into super-nodes, repeated until the gain is
//! negligible. Deterministic: nodes are visited in index order and ties
//! break toward the smallest community id.
//!
//! # Parallel execution
//!
//! [`louvain_with`] runs the local-move phase under a [`Parallelism`] knob
//! on the `linalg::par` scoped-thread scheduler. The sweep is decomposed
//! with [`par::independent_runs`] — maximal consecutive runs of pairwise
//! non-adjacent nodes (a greedy interval coloring) — so the expensive
//! neighbor-community scans run concurrently while moves are *applied* by a
//! deterministic serial reduction in index order. Within a run no member is
//! adjacent to another, so a member's neighbor-community weights computed
//! at run start are exactly what the serial sweep would see at that
//! member's turn; across runs, a speculative sweep-start prefetch is reused
//! unless a neighbor moved first (tracked with dirty flags). The result:
//! **labels are bit-for-bit identical to the serial path at any worker
//! count**, and [`Parallelism::serial`] dispatches to the untouched legacy
//! loop. Sweeps, moves, and levels are reported through the process-global
//! `obs` registry (`commgraph_louvain_*_total{mode}`), inert until
//! `obs::install_global`.

use crate::wgraph::WeightedGraph;
use linalg::par::{self, Parallelism};
use std::collections::BTreeMap;

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community label per node, compacted to `0..n_communities`.
    pub labels: Vec<usize>,
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Number of aggregation levels performed.
    pub levels: usize,
}

/// Modularity of a labeling on `g` at the given resolution (1.0 = classic).
///
/// Uses the convention: `Q = Σ_c [ w_in(c)/m − γ (Σ_tot(c) / 2m)² ]` with
/// `m` the total edge weight (undirected edges once), `Σ_tot` the weighted
/// degree sum (self-loops twice).
pub fn modularity(g: &WeightedGraph, labels: &[usize], resolution: f64) -> f64 {
    assert_eq!(labels.len(), g.node_count(), "one label per node");
    let m = g.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let n_comm = labels.iter().copied().max().map_or(0, |x| x + 1);
    let mut w_in = vec![0.0; n_comm];
    let mut sigma = vec![0.0; n_comm];
    for u in 0..g.node_count() as u32 {
        sigma[labels[u as usize]] += g.weighted_degree(u);
        for &(v, w) in g.neighbors(u) {
            if labels[u as usize] == labels[v as usize] {
                if v == u {
                    w_in[labels[u as usize]] += w; // self-loop stored once
                } else if v > u {
                    w_in[labels[u as usize]] += w; // count undirected edge once
                }
            }
        }
    }
    let two_m = 2.0 * m;
    (0..n_comm).map(|c| w_in[c] / m - resolution * (sigma[c] / two_m) * (sigma[c] / two_m)).sum()
}

/// Run Louvain at resolution 1.0 on the exact single-threaded path.
///
/// ```
/// use algos::louvain::louvain;
/// use algos::WeightedGraph;
///
/// // Two triangles joined by one weak edge.
/// let g = WeightedGraph::from_edges(6, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
///     (2, 3, 0.1),
/// ]);
/// let r = louvain(&g);
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[4]);
/// ```
pub fn louvain(g: &WeightedGraph) -> LouvainResult {
    louvain_with(g, 1.0, Parallelism::serial())
}

/// Run Louvain at a custom resolution (γ > 1 yields more, smaller
/// communities; γ < 1 fewer, larger ones) on the single-threaded path.
pub fn louvain_with_resolution(g: &WeightedGraph, resolution: f64) -> LouvainResult {
    louvain_with(g, resolution, Parallelism::serial())
}

/// Run Louvain at a custom resolution with an explicit worker count for the
/// local-move sweeps.
///
/// Labels, modularity, and level count are bit-for-bit identical at any
/// worker count (see the module docs for the batching scheme);
/// [`Parallelism::serial`] runs the legacy single-threaded loop.
///
/// ```
/// use algos::louvain::louvain_with;
/// use algos::{Parallelism, WeightedGraph};
///
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
/// let serial = louvain_with(&g, 1.0, Parallelism::serial());
/// let parallel = louvain_with(&g, 1.0, Parallelism::new(4));
/// assert_eq!(serial.labels, parallel.labels);
/// ```
pub fn louvain_with(g: &WeightedGraph, resolution: f64, parallelism: Parallelism) -> LouvainResult {
    louvain_impl(g, resolution, parallelism, None)
}

/// Run Louvain with the first level's local-move sweeps *seeded* from a
/// prior partition instead of singletons — the incremental-maintenance
/// warm start. When consecutive windows barely differ (the paper's Figure 5
/// observation), the seed is already at or near the optimum and the first
/// level converges in one move-free sweep instead of rebuilding the whole
/// hierarchy.
///
/// `seed` assigns a community per node (any dense-ish labeling; it is
/// compacted internally). Aggregation levels after the first proceed
/// exactly as in [`louvain_with`]. Labels, modularity, and level count are
/// bit-for-bit identical at any worker count, and
/// [`Parallelism::serial`] runs the single-threaded sweep.
pub fn louvain_seeded_with(
    g: &WeightedGraph,
    resolution: f64,
    parallelism: Parallelism,
    seed: &[usize],
) -> LouvainResult {
    assert_eq!(seed.len(), g.node_count(), "one seed label per node");
    louvain_impl(g, resolution, parallelism, Some(seed))
}

fn louvain_impl(
    g: &WeightedGraph,
    resolution: f64,
    parallelism: Parallelism,
    seed: Option<&[usize]>,
) -> LouvainResult {
    assert!(resolution > 0.0, "resolution must be positive");
    let n = g.node_count();
    if n == 0 {
        return LouvainResult { labels: Vec::new(), modularity: 0.0, levels: 0 };
    }
    let lobs = LouvainObs::resolve(parallelism);
    // labels[i] maps original node -> current community id.
    let mut labels: Vec<usize> = (0..n).collect();
    let mut level_graph = g.clone();
    let mut levels = 0usize;
    const MIN_GAIN: f64 = 1e-9;

    // The first level starts from the seed partition when given, singletons
    // otherwise; later levels always start from the aggregated singletons.
    let mut seed_comm: Option<Vec<usize>> = seed.map(|s| compact(s.to_vec()));

    // Q of `level_graph` under its starting labeling, maintained across
    // levels: aggregation preserves modularity (intra-community weight
    // becomes self-loops, Σ_tot carries over), so each level's `after` is
    // the next level's `before` — no need to rebuild the identity label
    // vector and rescore the whole graph every level.
    let mut before = match &seed_comm {
        Some(s) => modularity(&level_graph, s, resolution),
        None => modularity(&level_graph, &labels, resolution),
    };
    loop {
        let level = one_level_with(&level_graph, resolution, parallelism, seed_comm.take());
        levels += 1;
        lobs.sweeps.add(level.sweeps);
        lobs.moves.add(level.moves);
        // Thread this level's assignment through to original nodes.
        for l in labels.iter_mut() {
            *l = level.comm[*l];
        }
        if !level.improved {
            break;
        }
        let after = modularity(&level_graph, &level.comm, resolution);
        level_graph = aggregate(&level_graph, &level.comm);
        if after - before < MIN_GAIN {
            break;
        }
        before = after;
    }
    lobs.levels.add(levels as u64);
    let labels = compact(labels);
    let q = modularity(g, &labels, resolution);
    LouvainResult { labels, modularity: q, levels }
}

/// Configuration for top-down hierarchical refinement.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalConfig {
    /// Do not attempt to split communities smaller than this.
    pub min_split_size: usize,
    /// A community is split only if the Louvain run on its induced subgraph
    /// achieves at least this modularity (separates structure from noise).
    pub min_split_modularity: f64,
    /// Maximum recursion depth.
    pub max_depth: usize,
    /// Resolution passed to every Louvain invocation.
    pub resolution: f64,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            min_split_size: 4,
            min_split_modularity: 0.05,
            max_depth: 4,
            resolution: 1.0,
        }
    }
}

/// Hierarchical Louvain (the clustering of the paper's Figure 1 caption)
/// on the single-threaded path: run Louvain, then recursively re-run it on
/// each community's induced subgraph, accepting a split when the
/// sub-partition has real modularity.
///
/// Plain Louvain on a similarity clique merges *kinds* of roles — every
/// web tier of every tenant shares the same control-plane hubs, so weak
/// cross-tenant similarity edges glue them together. The recursion
/// separates them: within the merged community, intra-tenant similarity is
/// far stronger than cross-tenant similarity.
pub fn hierarchical_louvain(g: &WeightedGraph, cfg: HierarchicalConfig) -> LouvainResult {
    hierarchical_louvain_with(g, cfg, Parallelism::serial())
}

/// [`hierarchical_louvain`] with an explicit worker count threaded into
/// every Louvain invocation (the base run and each subgraph re-run).
/// Results are bit-for-bit identical at any worker count.
///
/// `levels` counts the base run's aggregation levels plus one per
/// refinement pass that actually split something; a final pass that finds
/// nothing to split does not deepen the hierarchy.
pub fn hierarchical_louvain_with(
    g: &WeightedGraph,
    cfg: HierarchicalConfig,
    parallelism: Parallelism,
) -> LouvainResult {
    hierarchical_impl(g, cfg, parallelism, None)
}

/// [`hierarchical_louvain_with`] with the **base run** seeded from a prior
/// partition (see [`louvain_seeded_with`]). Only the base run is seeded;
/// the refinement passes are untouched, so `levels` keeps the
/// only-splitting-passes-count semantics: the seeded base run's aggregation
/// levels plus one per refinement pass that actually split something.
pub fn hierarchical_louvain_seeded_with(
    g: &WeightedGraph,
    cfg: HierarchicalConfig,
    parallelism: Parallelism,
    seed: &[usize],
) -> LouvainResult {
    hierarchical_impl(g, cfg, parallelism, Some(seed))
}

fn hierarchical_impl(
    g: &WeightedGraph,
    cfg: HierarchicalConfig,
    parallelism: Parallelism,
    seed: Option<&[usize]>,
) -> LouvainResult {
    let base = match seed {
        Some(s) => louvain_seeded_with(g, cfg.resolution, parallelism, s),
        None => louvain_with(g, cfg.resolution, parallelism),
    };
    let mut labels = base.labels;
    let mut levels = base.levels;
    let mut next_label = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut depth = 0;
    loop {
        if depth >= cfg.max_depth {
            break;
        }
        let n_comm = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut any_split = false;
        for c in 0..n_comm {
            let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
            if members.len() < cfg.min_split_size {
                continue;
            }
            let sub = induced_subgraph(g, &members);
            let sub_result = louvain_with(&sub, cfg.resolution, parallelism);
            let n_sub = sub_result.labels.iter().copied().max().map_or(0, |m| m + 1);
            if n_sub <= 1 || sub_result.modularity < cfg.min_split_modularity {
                continue;
            }
            // Relabel: sub-community 0 keeps label c, the rest get fresh ids.
            for (local, &orig) in members.iter().enumerate() {
                let s = sub_result.labels[local];
                if s > 0 {
                    labels[orig] = next_label + s - 1;
                }
            }
            next_label += n_sub - 1;
            any_split = true;
        }
        if !any_split {
            // The pass refined nothing — it added no hierarchy level.
            break;
        }
        levels += 1;
        depth += 1;
    }
    let labels = compact(labels);
    let q = modularity(g, &labels, cfg.resolution);
    LouvainResult { labels, modularity: q, levels }
}

/// Subgraph induced by `members` (given in ascending original order), with
/// nodes renumbered `0..members.len()`.
fn induced_subgraph(g: &WeightedGraph, members: &[usize]) -> WeightedGraph {
    let mut index = std::collections::HashMap::with_capacity(members.len());
    for (local, &orig) in members.iter().enumerate() {
        index.insert(orig as u32, local as u32);
    }
    let mut sub = WeightedGraph::new(members.len());
    for (local, &orig) in members.iter().enumerate() {
        for &(v, w) in g.neighbors(orig as u32) {
            if let Some(&lv) = index.get(&v) {
                // Add each undirected edge once (self-loops included).
                if lv as usize >= local {
                    sub.add_edge(local as u32, lv, w);
                }
            }
        }
    }
    sub
}

/// Louvain run counters, resolved from the process-global `obs` registry
/// (noop until `obs::install_global`), labeled by execution mode.
struct LouvainObs {
    /// `commgraph_louvain_sweeps_total{mode}` — local-move sweeps executed.
    sweeps: obs::Counter,
    /// `commgraph_louvain_moves_total{mode}` — node moves applied.
    moves: obs::Counter,
    /// `commgraph_louvain_levels_total{mode}` — aggregation levels run.
    levels: obs::Counter,
}

impl LouvainObs {
    fn resolve(par: Parallelism) -> LouvainObs {
        let mode = if par.is_serial() { "serial" } else { "parallel" };
        let o = obs::global();
        LouvainObs {
            sweeps: o.counter(
                "commgraph_louvain_sweeps_total",
                "Local-move sweeps executed by Louvain clustering.",
                &[("mode", mode)],
            ),
            moves: o.counter(
                "commgraph_louvain_moves_total",
                "Node moves applied by Louvain's local-move phase.",
                &[("mode", mode)],
            ),
            levels: o.counter(
                "commgraph_louvain_levels_total",
                "Aggregation levels performed by Louvain runs.",
                &[("mode", mode)],
            ),
        }
    }
}

/// Outcome of one local-moving pass.
struct LevelOutcome {
    /// Community per node, compacted.
    comm: Vec<usize>,
    /// Whether any node moved.
    improved: bool,
    /// Full sweeps over the node set.
    sweeps: u64,
    /// Moves applied.
    moves: u64,
}

/// Weights from `u` to each neighboring community (self-loops and internal
/// orientation excluded — they don't change with a move). The `BTreeMap`
/// iteration order makes ties deterministic: smallest community id wins.
fn neighbor_comm_weights(g: &WeightedGraph, u: usize, comm: &[usize]) -> BTreeMap<usize, f64> {
    let mut to_comm: BTreeMap<usize, f64> = BTreeMap::new();
    for &(v, w) in g.neighbors(u as u32) {
        if v as usize != u {
            *to_comm.entry(comm[v as usize]).or_insert(0.0) += w;
        }
    }
    to_comm
}

/// Greedy move decision for `u`: remove it from its community, pick the
/// best neighboring community by modularity gain (ties toward the smallest
/// id), re-add, and report whether it moved. This is the one copy of the
/// decision arithmetic — the serial and parallel sweeps both call it, which
/// is what makes them bit-for-bit comparable.
#[inline]
fn apply_best_move(
    u: usize,
    to_comm: &BTreeMap<usize, f64>,
    comm: &mut [usize],
    sigma_tot: &mut [f64],
    k: &[f64],
    resolution: f64,
    two_m: f64,
) -> bool {
    let cu = comm[u];
    // Remove u from its community.
    sigma_tot[cu] -= k[u];
    let w_u_cu = to_comm.get(&cu).copied().unwrap_or(0.0);
    let base_gain = w_u_cu - resolution * k[u] * sigma_tot[cu] / two_m;
    let (mut best_c, mut best_gain) = (cu, base_gain);
    for (&c, &w_uc) in to_comm {
        if c == cu {
            continue;
        }
        let gain = w_uc - resolution * k[u] * sigma_tot[c] / two_m;
        if gain > best_gain + 1e-12 {
            best_gain = gain;
            best_c = c;
        }
    }
    sigma_tot[best_c] += k[u];
    if best_c != cu {
        comm[u] = best_c;
        true
    } else {
        false
    }
}

/// One pass of greedy local moving under the given worker count. `seed`
/// optionally provides the starting community assignment (already
/// compacted); `None` starts from singletons.
fn one_level_with(
    g: &WeightedGraph,
    resolution: f64,
    par: Parallelism,
    seed: Option<Vec<usize>>,
) -> LevelOutcome {
    if par.is_serial() {
        one_level_serial(g, resolution, seed)
    } else {
        one_level_parallel(g, resolution, par, seed)
    }
}

/// Starting state of a local-move pass: the community assignment (seeded or
/// singleton) and each community's Σ_tot. For the singleton start the
/// per-community sums are exactly `k`, reproducing the legacy
/// initialization bit-for-bit (each slot receives one addend).
fn level_start(n: usize, k: &[f64], seed: Option<Vec<usize>>) -> (Vec<usize>, Vec<f64>) {
    let comm = match seed {
        Some(s) => s,
        None => (0..n).collect(),
    };
    let mut sigma_tot = vec![0.0; n];
    for u in 0..n {
        sigma_tot[comm[u]] += k[u];
    }
    (comm, sigma_tot)
}

/// The legacy single-threaded sweep: nodes in index order, neighbor scans
/// against the live community assignment.
fn one_level_serial(g: &WeightedGraph, resolution: f64, seed: Option<Vec<usize>>) -> LevelOutcome {
    let n = g.node_count();
    let m = g.total_weight();
    if m == 0.0 {
        let comm = seed.unwrap_or_else(|| (0..n).collect());
        return LevelOutcome { comm, improved: false, sweeps: 0, moves: 0 };
    }
    let k: Vec<f64> = (0..n as u32).map(|u| g.weighted_degree(u)).collect();
    let (mut comm, mut sigma_tot) = level_start(n, &k, seed);
    let two_m = 2.0 * m;
    let (mut sweeps, mut moves) = (0u64, 0u64);

    loop {
        let mut moved = false;
        sweeps += 1;
        for u in 0..n {
            let to_comm = neighbor_comm_weights(g, u, &comm);
            if apply_best_move(u, &to_comm, &mut comm, &mut sigma_tot, &k, resolution, two_m) {
                moved = true;
                moves += 1;
            }
        }
        if !moved {
            break;
        }
    }
    LevelOutcome { comm: compact(comm), improved: moves > 0, sweeps, moves }
}

/// The parallel sweep: conflict-avoiding batches + deterministic reduction.
///
/// Scheduling shape (see the module docs for why this reproduces the serial
/// sweep exactly):
///
/// 1. Partition `0..n` once per level into [`par::independent_runs`] —
///    consecutive runs of pairwise non-adjacent nodes.
/// 2. Per sweep, speculatively prefetch every node's neighbor-community
///    weights against the sweep-start state in parallel (skipped on the
///    first sweep, where nearly every node moves and the prefetch would be
///    wasted).
/// 3. Per run, rebuild in parallel the entries invalidated by earlier moves
///    (`dirty`), then apply moves serially in index order with the shared
///    [`apply_best_move`] arithmetic. A run member's weights cannot be
///    invalidated by the other members — they are not adjacent — so the
///    state each node sees is exactly the serial sweep's.
fn one_level_parallel(
    g: &WeightedGraph,
    resolution: f64,
    par: Parallelism,
    seed: Option<Vec<usize>>,
) -> LevelOutcome {
    let n = g.node_count();
    let m = g.total_weight();
    if m == 0.0 {
        let comm = seed.unwrap_or_else(|| (0..n).collect());
        return LevelOutcome { comm, improved: false, sweeps: 0, moves: 0 };
    }
    let k: Vec<f64> = (0..n as u32).map(|u| g.weighted_degree(u)).collect();
    let (mut comm, mut sigma_tot) = level_start(n, &k, seed);
    let two_m = 2.0 * m;
    let (mut sweeps, mut moves) = (0u64, 0u64);

    // The level graph is immutable here, so the coloring is computed once.
    let runs = par::independent_runs(n, |u| g.neighbors(u as u32).iter().map(|&(v, _)| v as usize));
    let idx: Vec<usize> = (0..n).collect();
    let mut first_sweep = true;

    loop {
        let mut moved = false;
        sweeps += 1;
        let mut cache: Vec<Option<BTreeMap<usize, f64>>> = if first_sweep {
            (0..n).map(|_| None).collect()
        } else {
            let comm_ref = &comm;
            par::par_map(par, &idx, |&u| Some(neighbor_comm_weights(g, u, comm_ref)))
        };
        first_sweep = false;
        let mut dirty = vec![false; n];
        for run in &runs {
            let need: Vec<usize> =
                run.clone().filter(|&u| dirty[u] || cache[u].is_none()).collect();
            if need.len() == 1 {
                cache[need[0]] = Some(neighbor_comm_weights(g, need[0], &comm));
            } else if !need.is_empty() {
                let comm_ref = &comm;
                let rebuilt = par::par_map(par, &need, |&u| neighbor_comm_weights(g, u, comm_ref));
                for (&u, map) in need.iter().zip(rebuilt) {
                    cache[u] = Some(map);
                }
            }
            for u in run.clone() {
                let Some(to_comm) = cache[u].take() else {
                    continue; // refreshed above; a miss would just skip the node this sweep
                };
                if apply_best_move(u, &to_comm, &mut comm, &mut sigma_tot, &k, resolution, two_m) {
                    moved = true;
                    moves += 1;
                    for &(v, _) in g.neighbors(u as u32) {
                        // Later nodes must rescan: their cached weights
                        // were computed before this move.
                        if v as usize > u {
                            dirty[v as usize] = true;
                        }
                    }
                }
            }
        }
        if !moved {
            break;
        }
    }
    LevelOutcome { comm: compact(comm), improved: moves > 0, sweeps, moves }
}

/// Build the aggregated graph: one node per community, intra-community
/// weight becomes a self-loop. Aggregation preserves total edge weight and
/// the modularity of the induced identity labeling.
pub fn aggregate(g: &WeightedGraph, comm: &[usize]) -> WeightedGraph {
    let n_comm = comm.iter().copied().max().map_or(0, |x| x + 1);
    let mut edge_acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for u in 0..g.node_count() as u32 {
        for &(v, w) in g.neighbors(u) {
            if v < u {
                continue; // visit each undirected edge once; self-loop v==u kept
            }
            let (a, b) = (comm[u as usize] as u32, comm[v as usize] as u32);
            let key = if a <= b { (a, b) } else { (b, a) };
            *edge_acc.entry(key).or_insert(0.0) += w;
        }
    }
    let mut out = WeightedGraph::new(n_comm);
    for ((a, b), w) in edge_acc {
        out.add_edge(a, b, w);
    }
    out
}

/// Renumber labels to a dense `0..k` range, preserving first-appearance order.
fn compact(labels: Vec<usize>) -> Vec<usize> {
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    let mut next = 0usize;
    labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by one weak edge.
    fn two_cliques() -> WeightedGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        edges.push((0, 4, 0.1));
        WeightedGraph::from_edges(8, &edges)
    }

    /// Four 5-cliques; cliques {0,1} and {2,3} are strongly bridged, with
    /// one weak edge across the pairs.
    fn nested_cliques() -> WeightedGraph {
        let mut edges = Vec::new();
        let clique = |edges: &mut Vec<(u32, u32, f64)>, base: u32| {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        };
        for c in 0..4 {
            clique(&mut edges, c * 5);
        }
        for k in 0..5 {
            edges.push((k, 5 + k, 0.55));
            edges.push((10 + k, 15 + k, 0.55));
        }
        edges.push((0, 10, 0.05));
        WeightedGraph::from_edges(20, &edges)
    }

    /// A ring of `k` triangles bridged at weight 1.0 — above ~9 cliques the
    /// resolution limit makes flat Louvain merge adjacent triangles, so the
    /// hierarchy has real splitting to do.
    fn triangle_ring(k: u32) -> WeightedGraph {
        let mut edges = Vec::new();
        for c in 0..k {
            let base = c * 3;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
            edges.push((base, ((c + 1) % k) * 3, 1.0));
        }
        WeightedGraph::from_edges(3 * k as usize, &edges)
    }

    #[test]
    fn finds_the_two_cliques() {
        let r = louvain(&two_cliques());
        let labels = &r.labels;
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4], "cliques must separate");
        assert!(r.modularity > 0.4, "Q = {}", r.modularity);
    }

    #[test]
    fn modularity_of_known_partition() {
        // Two equal disconnected cliques, correct split: Q = 0.5.
        let mut edges = Vec::new();
        for base in [0u32, 3] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        let g = WeightedGraph::from_edges(6, &edges);
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1], 1.0);
        assert!((q - 0.5).abs() < 1e-12, "Q = {q}");
        let q_single = modularity(&g, &[0; 6], 1.0);
        assert!(q_single.abs() < 1e-12, "single community has Q = 0, got {q_single}");
    }

    #[test]
    fn louvain_beats_trivial_partitions() {
        let g = two_cliques();
        let r = louvain(&g);
        let singletons: Vec<usize> = (0..8).collect();
        assert!(r.modularity >= modularity(&g, &singletons, 1.0));
        assert!(r.modularity >= modularity(&g, &[0; 8], 1.0));
    }

    #[test]
    fn deterministic() {
        let a = louvain(&two_cliques());
        let b = louvain(&two_cliques());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.modularity, b.modularity);
    }

    /// Pinned against the pre-rework (PR 2) implementation: the convergence
    /// rework (carry `before` across levels instead of rescoring the
    /// identity labeling) and the duplicate-edge coalescing must not change
    /// what the fixtures produce.
    #[test]
    fn fixture_results_pinned_against_legacy() {
        let r = louvain(&two_cliques());
        assert_eq!(r.labels, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!((r.modularity - 0.49173553719008267).abs() < 1e-12, "Q = {}", r.modularity);
        assert_eq!(r.levels, 2);

        let r = louvain(&nested_cliques());
        assert_eq!(r.labels, vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3]);
        assert!((r.modularity - 0.628_155_571_433_907_8).abs() < 1e-12, "Q = {}", r.modularity);
        assert_eq!(r.levels, 2);

        let h = hierarchical_louvain(&two_cliques(), HierarchicalConfig::default());
        assert_eq!(h.labels, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!((h.modularity - 0.49173553719008267).abs() < 1e-12, "Q = {}", h.modularity);
    }

    /// The parallel path must agree with the serial path bit-for-bit at any
    /// worker count (the property test in `tests/properties.rs` covers
    /// random graphs; this pins the named fixtures).
    #[test]
    fn parallel_matches_serial_on_fixtures() {
        for g in [two_cliques(), nested_cliques(), triangle_ring(10)] {
            let serial = louvain_with(&g, 1.0, Parallelism::serial());
            let hs =
                hierarchical_louvain_with(&g, HierarchicalConfig::default(), Parallelism::serial());
            for workers in [2usize, 3, 8] {
                let p = louvain_with(&g, 1.0, Parallelism::new(workers));
                assert_eq!(p.labels, serial.labels, "{workers} workers");
                assert_eq!(p.modularity.to_bits(), serial.modularity.to_bits());
                assert_eq!(p.levels, serial.levels);
                let hp = hierarchical_louvain_with(
                    &g,
                    HierarchicalConfig::default(),
                    Parallelism::new(workers),
                );
                assert_eq!(hp.labels, hs.labels, "hierarchical, {workers} workers");
                assert_eq!(hp.modularity.to_bits(), hs.modularity.to_bits());
                assert_eq!(hp.levels, hs.levels);
            }
        }
    }

    /// Regression (latent duplicate-edge bug): a duplicated edge list must
    /// produce the same partition and modularity as the coalesced one.
    #[test]
    fn duplicate_edge_list_matches_coalesced() {
        let coalesced = two_cliques();
        // Rebuild with every clique edge split into two half-weight parallel
        // edges (halves sum exactly in binary floating point, and every
        // running total stays a multiple of 0.5, so even `total_weight`'s
        // sequential accumulation matches bit-for-bit).
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j, 0.5));
                    edges.push((base + j, base + i, 0.5));
                }
            }
        }
        edges.push((0, 4, 0.1));
        let dup = WeightedGraph::from_edges(8, &edges);

        assert_eq!(dup.total_weight(), coalesced.total_weight());
        for u in 0..8 {
            assert_eq!(dup.neighbors(u), coalesced.neighbors(u), "node {u} adjacency");
        }
        let a = louvain(&dup);
        let b = louvain(&coalesced);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.modularity.to_bits(), b.modularity.to_bits());
    }

    #[test]
    fn resolution_controls_granularity() {
        // A ring of 4 small cliques: high resolution splits them, very low
        // resolution merges neighbors.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 3;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
            edges.push((base, ((c + 1) % 4) * 3, 0.5));
        }
        let g = WeightedGraph::from_edges(12, &edges);
        let fine = louvain_with_resolution(&g, 2.0);
        let coarse = louvain_with_resolution(&g, 0.1);
        let n_fine = fine.labels.iter().max().unwrap() + 1;
        let n_coarse = coarse.labels.iter().max().unwrap() + 1;
        assert!(n_fine >= n_coarse, "higher resolution, at least as many communities");
    }

    #[test]
    fn handles_disconnected_and_empty() {
        let g = WeightedGraph::new(5);
        let r = louvain(&g);
        assert_eq!(r.labels.len(), 5);
        assert_eq!(r.modularity, 0.0);

        let empty = louvain(&WeightedGraph::new(0));
        assert!(empty.labels.is_empty());

        // The parallel path handles them identically.
        let rp = louvain_with(&WeightedGraph::new(5), 1.0, Parallelism::new(4));
        assert_eq!(rp.labels, r.labels);
    }

    #[test]
    fn self_loops_do_not_break_clustering() {
        // A modest self-loop raises the node's degree but must not pull it
        // out of its clique. (A huge self-loop legitimately isolates the
        // node — its degree term dominates any join gain.)
        let mut g = two_cliques();
        g.add_edge(0, 0, 1.0);
        let r = louvain(&g);
        assert_eq!(r.labels[0], r.labels[1], "self-loop keeps node in its clique");
        assert_ne!(r.labels[0], r.labels[4], "cliques still separate");
        let rp = louvain_with(&g, 1.0, Parallelism::new(4));
        assert_eq!(rp.labels, r.labels, "self-loops don't break the parallel batching");
    }

    #[test]
    fn labels_are_compact() {
        let r = louvain(&two_cliques());
        let max = *r.labels.iter().max().unwrap();
        let distinct: std::collections::HashSet<_> = r.labels.iter().collect();
        assert_eq!(distinct.len(), max + 1, "labels form a dense 0..k range");
    }

    #[test]
    fn hierarchical_splits_merged_structure() {
        // Ten triangles in a ring: the resolution limit merges adjacent
        // triangles in the flat run; the hierarchy recovers all ten.
        let g = triangle_ring(10);
        let flat = louvain(&g);
        let n_flat = flat.labels.iter().max().unwrap() + 1;
        assert_eq!(n_flat, 5, "flat run merges triangle pairs");
        let cfg = HierarchicalConfig { min_split_size: 3, ..Default::default() };
        let hier = hierarchical_louvain(&g, cfg);
        let n_hier = hier.labels.iter().max().unwrap() + 1;
        assert_eq!(n_hier, 10, "hierarchy recovers every triangle");
        for c in 0..10usize {
            let base = c * 3;
            assert_eq!(hier.labels[base], hier.labels[base + 1], "triangle {c} split");
            assert_eq!(hier.labels[base], hier.labels[base + 2], "triangle {c} split");
        }
        assert!(hier.modularity >= flat.modularity - 1e-9 || n_hier > n_flat);
    }

    /// Regression (levels over-count bug): a refinement pass that splits
    /// nothing used to increment `levels` anyway, overstating the depth by
    /// one on every hierarchical run.
    #[test]
    fn hierarchical_levels_count_only_splitting_passes() {
        // Nested-cliques fixture: the flat run already finds all four
        // cliques, so no refinement pass splits — levels must equal flat's.
        let g = nested_cliques();
        let flat = louvain(&g);
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        assert_eq!(flat.levels, 2);
        assert_eq!(hier.levels, flat.levels, "no split ⇒ no extra level");

        // Triangle ring: exactly one refinement pass splits (the second
        // finds nothing), so levels is flat's plus one — not plus two.
        let g = triangle_ring(10);
        let flat = louvain(&g);
        let cfg = HierarchicalConfig { min_split_size: 3, ..Default::default() };
        let hier = hierarchical_louvain(&g, cfg);
        assert_eq!(flat.levels, 3);
        assert_eq!(hier.levels, flat.levels + 1, "one splitting pass ⇒ one extra level");
    }

    #[test]
    fn seeded_with_own_labels_converges_immediately() {
        for g in [two_cliques(), nested_cliques(), triangle_ring(10)] {
            let fresh = louvain(&g);
            let seeded = louvain_seeded_with(&g, 1.0, Parallelism::serial(), &fresh.labels);
            assert_eq!(seeded.labels, fresh.labels, "optimum seed must be kept");
            assert_eq!(seeded.modularity.to_bits(), fresh.modularity.to_bits());
            assert_eq!(seeded.levels, 1, "converged seed ⇒ one move-free level");
        }
    }

    #[test]
    fn seeded_parallel_matches_seeded_serial() {
        for g in [two_cliques(), nested_cliques(), triangle_ring(10)] {
            let fresh = louvain(&g);
            // Perturb the seed: displace a few nodes into the wrong community.
            let mut seed = fresh.labels.clone();
            for i in (0..seed.len()).step_by(5) {
                seed[i] = (seed[i] + 1) % (fresh.labels.iter().max().unwrap() + 1);
            }
            let serial = louvain_seeded_with(&g, 1.0, Parallelism::serial(), &seed);
            for workers in [2usize, 3, 8] {
                let p = louvain_seeded_with(&g, 1.0, Parallelism::new(workers), &seed);
                assert_eq!(p.labels, serial.labels, "{workers} workers");
                assert_eq!(p.modularity.to_bits(), serial.modularity.to_bits());
                assert_eq!(p.levels, serial.levels);
            }
        }
    }

    #[test]
    fn seeded_recovers_from_perturbed_seed() {
        // A mildly wrong seed (one node displaced per clique) must converge
        // back to the fixture optimum.
        let g = two_cliques();
        let fresh = louvain(&g);
        let mut seed = fresh.labels.clone();
        seed[0] = 1;
        seed[4] = 0;
        let seeded = louvain_seeded_with(&g, 1.0, Parallelism::serial(), &seed);
        assert_eq!(seeded.labels, fresh.labels);
        assert_eq!(seeded.modularity.to_bits(), fresh.modularity.to_bits());
    }

    /// Regression (satellite of the incremental-maintenance PR): the seeded
    /// hierarchical path must keep the PR 3 semantics — a refinement pass
    /// that splits nothing adds no level — when seeding from a prior
    /// partition.
    #[test]
    fn hierarchical_seeded_levels_count_only_splitting_passes() {
        // Nested cliques: the seed IS the optimum, the seeded base run
        // converges in one move-free level, and no refinement pass splits.
        // levels must be exactly 1 — a regression re-counting non-splitting
        // passes would report 2.
        let g = nested_cliques();
        let fresh = hierarchical_louvain(&g, HierarchicalConfig::default());
        let seeded = hierarchical_louvain_seeded_with(
            &g,
            HierarchicalConfig::default(),
            Parallelism::serial(),
            &fresh.labels,
        );
        assert_eq!(seeded.labels, fresh.labels);
        assert_eq!(seeded.levels, 1, "one seeded base level, zero splitting passes");

        // Triangle ring: seeding from the refined 10-community partition.
        // The base run may re-merge (flat optimum is coarser), then exactly
        // one refinement pass re-splits; the final labels must match the
        // fresh hierarchy and levels must stay consistent across worker
        // counts.
        let g = triangle_ring(10);
        let cfg = HierarchicalConfig { min_split_size: 3, ..Default::default() };
        let fresh = hierarchical_louvain(&g, cfg);
        let serial =
            hierarchical_louvain_seeded_with(&g, cfg, Parallelism::serial(), &fresh.labels);
        assert_eq!(serial.labels, fresh.labels, "seeded hierarchy reaches the same partition");
        for workers in [2usize, 4] {
            let p =
                hierarchical_louvain_seeded_with(&g, cfg, Parallelism::new(workers), &fresh.labels);
            assert_eq!(p.labels, serial.labels, "{workers} workers");
            assert_eq!(p.levels, serial.levels, "{workers} workers");
        }
    }

    #[test]
    fn hierarchical_splits_nested_structure() {
        let g = nested_cliques();
        let flat = louvain(&g);
        let n_flat = flat.labels.iter().max().unwrap() + 1;
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        let n_hier = hier.labels.iter().max().unwrap() + 1;
        assert!(n_hier >= n_flat, "hierarchy never coarsens");
        assert!(n_hier >= 4, "all four cliques found, got {n_hier}");
        // Each original clique stays whole.
        for c in 0..4usize {
            let base = c * 5;
            for k in 1..5 {
                assert_eq!(hier.labels[base], hier.labels[base + k], "clique {c} split");
            }
        }
    }

    #[test]
    fn hierarchical_matches_flat_on_flat_structure() {
        let g = two_cliques();
        let flat = louvain(&g);
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        assert_eq!(flat.labels, hier.labels, "nothing to refine on two plain cliques");
    }

    #[test]
    fn hierarchical_respects_min_split_size() {
        let g = two_cliques();
        let cfg = HierarchicalConfig { min_split_size: 100, ..Default::default() };
        let r = hierarchical_louvain(&g, cfg);
        assert_eq!(r.labels.iter().max().unwrap() + 1, 2, "no community big enough to split");
    }

    #[test]
    fn weighted_star_groups_spokes_with_hub() {
        // A hub with heavy spokes: everything is one community.
        let g = WeightedGraph::from_edges(5, &[(0, 1, 5.0), (0, 2, 5.0), (0, 3, 5.0), (0, 4, 5.0)]);
        let r = louvain(&g);
        // Modularity of a star is maximized by few communities; Louvain
        // should not leave everything singleton.
        let n_comm = r.labels.iter().max().unwrap() + 1;
        assert!(n_comm < 5, "star must merge, got {n_comm} communities");
    }

    #[test]
    fn aggregate_preserves_weight_and_modularity() {
        let g = nested_cliques();
        let r = louvain(&g);
        let agg = aggregate(&g, &r.labels);
        assert_eq!(agg.node_count(), r.labels.iter().max().unwrap() + 1);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-9);
        let identity: Vec<usize> = (0..agg.node_count()).collect();
        let q_agg = modularity(&agg, &identity, 1.0);
        assert!((q_agg - r.modularity).abs() < 1e-9, "{q_agg} vs {}", r.modularity);
    }

    #[test]
    fn sweep_counters_reach_the_global_registry() {
        let r = std::sync::Arc::new(obs::Registry::new());
        // First install wins process-wide; only assert when ours landed.
        if obs::install_global(r.clone()) {
            louvain(&two_cliques());
            let sweeps = r.counter("commgraph_louvain_sweeps_total", "", &[("mode", "serial")]);
            let levels = r.counter("commgraph_louvain_levels_total", "", &[("mode", "serial")]);
            assert!(sweeps.get() >= 2, "at least one sweep per level");
            assert!(levels.get() >= 1, "levels counted");
            louvain_with(&two_cliques(), 1.0, Parallelism::new(2));
            let psweeps = r.counter("commgraph_louvain_sweeps_total", "", &[("mode", "parallel")]);
            assert!(psweeps.get() >= 2, "parallel mode labeled separately");
        }
    }
}
