//! Louvain community detection (Blondel et al. \[33\]).
//!
//! Two uses in the paper: (a) as the clustering stage of its own
//! segmentation — run on the Jaccard-scored *clique*, where communities are
//! groups of mutually-similar nodes, i.e. roles; and (b) directly on the
//! communication graph with connection- or byte-weighted edges, as the
//! Figure 3(c)/(d) baselines — which group nodes that *talk to each other*,
//! precisely the wrong notion for role inference, as the experiments show.
//!
//! The implementation is the standard two-phase hierarchy: greedy local
//! moves to the neighboring community with the best modularity gain, then
//! aggregation of communities into super-nodes, repeated until the gain is
//! negligible. Deterministic: nodes are visited in index order and ties
//! break toward the smallest community id.

use crate::wgraph::WeightedGraph;
use std::collections::BTreeMap;

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community label per node, compacted to `0..n_communities`.
    pub labels: Vec<usize>,
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Number of aggregation levels performed.
    pub levels: usize,
}

/// Modularity of a labeling on `g` at the given resolution (1.0 = classic).
///
/// Uses the convention: `Q = Σ_c [ w_in(c)/m − γ (Σ_tot(c) / 2m)² ]` with
/// `m` the total edge weight (undirected edges once), `Σ_tot` the weighted
/// degree sum (self-loops twice).
pub fn modularity(g: &WeightedGraph, labels: &[usize], resolution: f64) -> f64 {
    assert_eq!(labels.len(), g.node_count(), "one label per node");
    let m = g.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let n_comm = labels.iter().copied().max().map_or(0, |x| x + 1);
    let mut w_in = vec![0.0; n_comm];
    let mut sigma = vec![0.0; n_comm];
    for u in 0..g.node_count() as u32 {
        sigma[labels[u as usize]] += g.weighted_degree(u);
        for &(v, w) in g.neighbors(u) {
            if labels[u as usize] == labels[v as usize] {
                if v == u {
                    w_in[labels[u as usize]] += w; // self-loop stored once
                } else if v > u {
                    w_in[labels[u as usize]] += w; // count undirected edge once
                }
            }
        }
    }
    let two_m = 2.0 * m;
    (0..n_comm).map(|c| w_in[c] / m - resolution * (sigma[c] / two_m) * (sigma[c] / two_m)).sum()
}

/// Run Louvain at resolution 1.0.
///
/// ```
/// use algos::louvain::louvain;
/// use algos::WeightedGraph;
///
/// // Two triangles joined by one weak edge.
/// let g = WeightedGraph::from_edges(6, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
///     (2, 3, 0.1),
/// ]);
/// let r = louvain(&g);
/// assert_eq!(r.labels[0], r.labels[1]);
/// assert_ne!(r.labels[0], r.labels[4]);
/// ```
pub fn louvain(g: &WeightedGraph) -> LouvainResult {
    louvain_with_resolution(g, 1.0)
}

/// Run Louvain at a custom resolution (γ > 1 yields more, smaller
/// communities; γ < 1 fewer, larger ones).
pub fn louvain_with_resolution(g: &WeightedGraph, resolution: f64) -> LouvainResult {
    assert!(resolution > 0.0, "resolution must be positive");
    let n = g.node_count();
    if n == 0 {
        return LouvainResult { labels: Vec::new(), modularity: 0.0, levels: 0 };
    }
    // labels[i] maps original node -> current community id.
    let mut labels: Vec<usize> = (0..n).collect();
    let mut level_graph = g.clone();
    let mut levels = 0usize;
    const MIN_GAIN: f64 = 1e-9;

    loop {
        let (local, improved) = one_level(&level_graph, resolution);
        levels += 1;
        // Thread this level's assignment through to original nodes.
        for l in labels.iter_mut() {
            *l = local[*l];
        }
        if !improved {
            break;
        }
        let before = modularity(
            &level_graph,
            &(0..level_graph.node_count()).collect::<Vec<_>>(),
            resolution,
        );
        let after = modularity(&level_graph, &local, resolution);
        level_graph = aggregate(&level_graph, &local);
        if after - before < MIN_GAIN {
            break;
        }
    }
    let labels = compact(labels);
    let q = modularity(g, &labels, resolution);
    LouvainResult { labels, modularity: q, levels }
}

/// Configuration for top-down hierarchical refinement.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalConfig {
    /// Do not attempt to split communities smaller than this.
    pub min_split_size: usize,
    /// A community is split only if the Louvain run on its induced subgraph
    /// achieves at least this modularity (separates structure from noise).
    pub min_split_modularity: f64,
    /// Maximum recursion depth.
    pub max_depth: usize,
    /// Resolution passed to every Louvain invocation.
    pub resolution: f64,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            min_split_size: 4,
            min_split_modularity: 0.05,
            max_depth: 4,
            resolution: 1.0,
        }
    }
}

/// Hierarchical Louvain (the clustering of the paper's Figure 1 caption):
/// run Louvain, then recursively re-run it on each community's induced
/// subgraph, accepting a split when the sub-partition has real modularity.
///
/// Plain Louvain on a similarity clique merges *kinds* of roles — every
/// web tier of every tenant shares the same control-plane hubs, so weak
/// cross-tenant similarity edges glue them together. The recursion
/// separates them: within the merged community, intra-tenant similarity is
/// far stronger than cross-tenant similarity.
pub fn hierarchical_louvain(g: &WeightedGraph, cfg: HierarchicalConfig) -> LouvainResult {
    let base = louvain_with_resolution(g, cfg.resolution);
    let mut labels = base.labels;
    let mut levels = base.levels;
    let mut next_label = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut depth = 0;
    loop {
        if depth >= cfg.max_depth {
            break;
        }
        let n_comm = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut any_split = false;
        for c in 0..n_comm {
            let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
            if members.len() < cfg.min_split_size {
                continue;
            }
            let sub = induced_subgraph(g, &members);
            let sub_result = louvain_with_resolution(&sub, cfg.resolution);
            let n_sub = sub_result.labels.iter().copied().max().map_or(0, |m| m + 1);
            if n_sub <= 1 || sub_result.modularity < cfg.min_split_modularity {
                continue;
            }
            // Relabel: sub-community 0 keeps label c, the rest get fresh ids.
            for (local, &orig) in members.iter().enumerate() {
                let s = sub_result.labels[local];
                if s > 0 {
                    labels[orig] = next_label + s - 1;
                }
            }
            next_label += n_sub - 1;
            any_split = true;
        }
        levels += 1;
        depth += 1;
        if !any_split {
            break;
        }
    }
    let labels = compact(labels);
    let q = modularity(g, &labels, cfg.resolution);
    LouvainResult { labels, modularity: q, levels }
}

/// Subgraph induced by `members` (given in ascending original order), with
/// nodes renumbered `0..members.len()`.
fn induced_subgraph(g: &WeightedGraph, members: &[usize]) -> WeightedGraph {
    let mut index = std::collections::HashMap::with_capacity(members.len());
    for (local, &orig) in members.iter().enumerate() {
        index.insert(orig as u32, local as u32);
    }
    let mut sub = WeightedGraph::new(members.len());
    for (local, &orig) in members.iter().enumerate() {
        for &(v, w) in g.neighbors(orig as u32) {
            if let Some(&lv) = index.get(&v) {
                // Add each undirected edge once (self-loops included).
                if lv as usize >= local {
                    sub.add_edge(local as u32, lv, w);
                }
            }
        }
    }
    sub
}

/// One pass of greedy local moving. Returns (community per node, any move?).
fn one_level(g: &WeightedGraph, resolution: f64) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let m = g.total_weight();
    let mut comm: Vec<usize> = (0..n).collect();
    if m == 0.0 {
        return (comm, false);
    }
    let k: Vec<f64> = (0..n as u32).map(|u| g.weighted_degree(u)).collect();
    let mut sigma_tot: Vec<f64> = k.clone();
    let two_m = 2.0 * m;
    let mut improved_ever = false;

    loop {
        let mut moved = false;
        for u in 0..n {
            let cu = comm[u];
            // Weights from u to each neighboring community (self-loops and
            // internal orientation excluded — they don't change with a move).
            let mut to_comm: BTreeMap<usize, f64> = BTreeMap::new();
            for &(v, w) in g.neighbors(u as u32) {
                if v as usize != u {
                    *to_comm.entry(comm[v as usize]).or_insert(0.0) += w;
                }
            }
            // Remove u from its community.
            sigma_tot[cu] -= k[u];
            let w_u_cu = to_comm.get(&cu).copied().unwrap_or(0.0);
            let base_gain = w_u_cu - resolution * k[u] * sigma_tot[cu] / two_m;
            // Best candidate (BTreeMap order makes ties deterministic:
            // smallest community id wins).
            let (mut best_c, mut best_gain) = (cu, base_gain);
            for (&c, &w_uc) in &to_comm {
                if c == cu {
                    continue;
                }
                let gain = w_uc - resolution * k[u] * sigma_tot[c] / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sigma_tot[best_c] += k[u];
            if best_c != cu {
                comm[u] = best_c;
                moved = true;
                improved_ever = true;
            }
        }
        if !moved {
            break;
        }
    }
    (compact(comm), improved_ever)
}

/// Build the aggregated graph: one node per community, intra-community
/// weight becomes a self-loop.
fn aggregate(g: &WeightedGraph, comm: &[usize]) -> WeightedGraph {
    let n_comm = comm.iter().copied().max().map_or(0, |x| x + 1);
    let mut edge_acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for u in 0..g.node_count() as u32 {
        for &(v, w) in g.neighbors(u) {
            if v < u {
                continue; // visit each undirected edge once; self-loop v==u kept
            }
            let (a, b) = (comm[u as usize] as u32, comm[v as usize] as u32);
            let key = if a <= b { (a, b) } else { (b, a) };
            *edge_acc.entry(key).or_insert(0.0) += w;
        }
    }
    let mut out = WeightedGraph::new(n_comm);
    for ((a, b), w) in edge_acc {
        out.add_edge(a, b, w);
    }
    out
}

/// Renumber labels to a dense `0..k` range, preserving first-appearance order.
fn compact(labels: Vec<usize>) -> Vec<usize> {
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    let mut next = 0usize;
    labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by one weak edge.
    fn two_cliques() -> WeightedGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        edges.push((0, 4, 0.1));
        WeightedGraph::from_edges(8, &edges)
    }

    #[test]
    fn finds_the_two_cliques() {
        let r = louvain(&two_cliques());
        let labels = &r.labels;
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4], "cliques must separate");
        assert!(r.modularity > 0.4, "Q = {}", r.modularity);
    }

    #[test]
    fn modularity_of_known_partition() {
        // Two equal disconnected cliques, correct split: Q = 0.5.
        let mut edges = Vec::new();
        for base in [0u32, 3] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        let g = WeightedGraph::from_edges(6, &edges);
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1], 1.0);
        assert!((q - 0.5).abs() < 1e-12, "Q = {q}");
        let q_single = modularity(&g, &[0; 6], 1.0);
        assert!(q_single.abs() < 1e-12, "single community has Q = 0, got {q_single}");
    }

    #[test]
    fn louvain_beats_trivial_partitions() {
        let g = two_cliques();
        let r = louvain(&g);
        let singletons: Vec<usize> = (0..8).collect();
        assert!(r.modularity >= modularity(&g, &singletons, 1.0));
        assert!(r.modularity >= modularity(&g, &[0; 8], 1.0));
    }

    #[test]
    fn deterministic() {
        let a = louvain(&two_cliques());
        let b = louvain(&two_cliques());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.modularity, b.modularity);
    }

    #[test]
    fn resolution_controls_granularity() {
        // A ring of 4 small cliques: high resolution splits them, very low
        // resolution merges neighbors.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let base = c * 3;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
            edges.push((base, ((c + 1) % 4) * 3, 0.5));
        }
        let g = WeightedGraph::from_edges(12, &edges);
        let fine = louvain_with_resolution(&g, 2.0);
        let coarse = louvain_with_resolution(&g, 0.1);
        let n_fine = fine.labels.iter().max().unwrap() + 1;
        let n_coarse = coarse.labels.iter().max().unwrap() + 1;
        assert!(n_fine >= n_coarse, "higher resolution, at least as many communities");
    }

    #[test]
    fn handles_disconnected_and_empty() {
        let g = WeightedGraph::new(5);
        let r = louvain(&g);
        assert_eq!(r.labels.len(), 5);
        assert_eq!(r.modularity, 0.0);

        let empty = louvain(&WeightedGraph::new(0));
        assert!(empty.labels.is_empty());
    }

    #[test]
    fn self_loops_do_not_break_clustering() {
        // A modest self-loop raises the node's degree but must not pull it
        // out of its clique. (A huge self-loop legitimately isolates the
        // node — its degree term dominates any join gain.)
        let mut g = two_cliques();
        g.add_edge(0, 0, 1.0);
        let r = louvain(&g);
        assert_eq!(r.labels[0], r.labels[1], "self-loop keeps node in its clique");
        assert_ne!(r.labels[0], r.labels[4], "cliques still separate");
    }

    #[test]
    fn labels_are_compact() {
        let r = louvain(&two_cliques());
        let max = *r.labels.iter().max().unwrap();
        let distinct: std::collections::HashSet<_> = r.labels.iter().collect();
        assert_eq!(distinct.len(), max + 1, "labels form a dense 0..k range");
    }

    #[test]
    fn hierarchical_splits_nested_structure() {
        // Four 5-cliques; cliques {0,1} and {2,3} are strongly bridged into
        // two super-communities, with one weak edge across. Plain Louvain
        // settles for the two super-communities; the hierarchy recovers all
        // four cliques.
        let mut edges = Vec::new();
        let clique = |edges: &mut Vec<(u32, u32, f64)>, base: u32| {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        };
        for c in 0..4 {
            clique(&mut edges, c * 5);
        }
        // Strong bridges within each pair (many, so plain Louvain merges).
        for k in 0..5 {
            edges.push((k, 5 + k, 0.55));
            edges.push((10 + k, 15 + k, 0.55));
        }
        edges.push((0, 10, 0.05));
        let g = WeightedGraph::from_edges(20, &edges);

        let flat = louvain(&g);
        let n_flat = flat.labels.iter().max().unwrap() + 1;
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        let n_hier = hier.labels.iter().max().unwrap() + 1;
        assert!(n_hier >= n_flat, "hierarchy never coarsens");
        assert!(n_hier >= 4, "all four cliques found, got {n_hier}");
        // Each original clique stays whole.
        for c in 0..4usize {
            let base = c * 5;
            for k in 1..5 {
                assert_eq!(hier.labels[base], hier.labels[base + k], "clique {c} split");
            }
        }
    }

    #[test]
    fn hierarchical_matches_flat_on_flat_structure() {
        let g = two_cliques();
        let flat = louvain(&g);
        let hier = hierarchical_louvain(&g, HierarchicalConfig::default());
        assert_eq!(flat.labels, hier.labels, "nothing to refine on two plain cliques");
    }

    #[test]
    fn hierarchical_respects_min_split_size() {
        let g = two_cliques();
        let cfg = HierarchicalConfig { min_split_size: 100, ..Default::default() };
        let r = hierarchical_louvain(&g, cfg);
        assert_eq!(r.labels.iter().max().unwrap() + 1, 2, "no community big enough to split");
    }

    #[test]
    fn weighted_star_groups_spokes_with_hub() {
        // A hub with heavy spokes: everything is one community.
        let g = WeightedGraph::from_edges(5, &[(0, 1, 5.0), (0, 2, 5.0), (0, 3, 5.0), (0, 4, 5.0)]);
        let r = louvain(&g);
        // Modularity of a star is maximized by few communities; Louvain
        // should not leave everything singleton.
        let n_comm = r.labels.iter().max().unwrap() + 1;
        assert!(n_comm < 5, "star must merge, got {n_comm} communities");
    }
}
