//! A minimal weighted undirected graph shared by the clustering algorithms.

use commgraph_graph::CommGraph;
use linalg::sym::SymMatrix;

/// Undirected weighted graph with dense `0..n` node ids.
///
/// Each edge is stored in both endpoint lists (self-loops once). Weights
/// must be non-negative; zero-weight edges are dropped at construction.
///
/// Adjacency lists are kept sorted by neighbor id with **at most one entry
/// per neighbor**: re-adding an existing edge coalesces the weights into
/// the stored entry. (Storing parallel edges separately used to
/// double-count weight in modularity accumulation and yield the same
/// neighbor twice in Louvain's neighbor-community scan.)
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    adj: Vec<Vec<(u32, f64)>>,
    total_weight: f64,
}

impl WeightedGraph {
    /// Graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph { adj: vec![Vec::new(); n], total_weight: 0.0 }
    }

    /// Build from an edge list; `(u, v, w)` with `u == v` allowed (self-loop).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative/non-finite weights.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut g = WeightedGraph::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Add an undirected edge. Zero weights are ignored; adding an edge
    /// that already exists coalesces into the stored entry (weights sum),
    /// so `(u, v, a)` then `(u, v, b)` is exactly `(u, v, a + b)`.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "edge weight must be finite and non-negative");
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len(), "endpoint range");
        if w == 0.0 {
            return;
        }
        Self::coalesce_into(&mut self.adj[u as usize], v, w);
        if u != v {
            Self::coalesce_into(&mut self.adj[v as usize], u, w);
        }
        self.total_weight += w;
    }

    /// Merge `(v, w)` into a sorted adjacency list, keeping it sorted and
    /// duplicate-free. Appends (the common construction order) are O(1).
    fn coalesce_into(list: &mut Vec<(u32, f64)>, v: u32, w: f64) {
        match list.last() {
            Some(&(last, _)) if last < v => list.push((v, w)),
            _ => match list.binary_search_by_key(&v, |&(x, _)| x) {
                Ok(pos) => list[pos].1 += w,
                Err(pos) => list.insert(pos, (v, w)),
            },
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Sum of all edge weights (each undirected edge once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Neighbors of `u` with weights, sorted by neighbor id with one entry
    /// per neighbor. A self-loop appears once.
    pub fn neighbors(&self, u: u32) -> &[(u32, f64)] {
        &self.adj[u as usize]
    }

    /// Weighted degree of `u`: sum of incident weights, self-loops counted
    /// twice (the convention modularity expects).
    pub fn weighted_degree(&self, u: u32) -> f64 {
        self.adj[u as usize].iter().map(|&(v, w)| if v == u { 2.0 * w } else { w }).sum()
    }

    /// Neighbor id set (unweighted), excluding self-loops. Sorted and
    /// duplicate-free by the adjacency invariant.
    pub fn neighbor_set(&self, u: u32) -> Vec<u32> {
        self.adj[u as usize].iter().filter(|&&(n, _)| n != u).map(|&(n, _)| n).collect()
    }

    /// Build from a communication graph, weighting each edge with
    /// `weight_of` (e.g. bytes, connections).
    pub fn from_comm_graph(
        g: &CommGraph,
        weight_of: impl Fn(&commgraph_graph::EdgeStats) -> f64,
    ) -> Self {
        let mut out = WeightedGraph::new(g.node_count());
        for i in 0..g.node_count() as u32 {
            for (j, stats) in g.neighbors(i) {
                if *j >= i {
                    out.add_edge(i, *j, weight_of(stats));
                }
            }
        }
        out
    }

    /// Build the *scored clique* of the paper's segmentation: a complete
    /// graph over the same nodes where edge weights are pairwise similarity
    /// scores. Scores below `min_score` are dropped to keep it sparse.
    pub fn from_similarity(scores: &SymMatrix, min_score: f64) -> Self {
        let n = scores.n();
        let mut g = WeightedGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let score = scores[(i, j)];
                if score >= min_score && score > 0.0 {
                    g.add_edge(i as u32, j as u32, score);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_and_totals() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (2, 2, 1.0)]);
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.weighted_degree(0), 2.0);
        assert_eq!(g.weighted_degree(1), 5.0);
        assert_eq!(g.weighted_degree(2), 3.0 + 2.0, "self-loop counts twice");
    }

    #[test]
    fn neighbor_set_excludes_self_and_dedups() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (0, 1, 1.0), (0, 0, 5.0)]);
        assert_eq!(g.neighbor_set(0), vec![1]);
    }

    #[test]
    fn duplicate_edges_coalesce() {
        // Repeated (u, v) in either orientation merges into one entry.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 0.5), (1, 0, 0.25), (0, 1, 0.25)]);
        assert_eq!(g.neighbors(0), &[(1, 1.0)]);
        assert_eq!(g.neighbors(1), &[(0, 1.0)]);
        assert_eq!(g.total_weight(), 1.0);
        assert_eq!(g.weighted_degree(0), 1.0);

        // Duplicate self-loops coalesce too, still stored once.
        let g = WeightedGraph::from_edges(2, &[(1, 1, 2.0), (1, 1, 3.0)]);
        assert_eq!(g.neighbors(1), &[(1, 5.0)]);
        assert_eq!(g.total_weight(), 5.0);
        assert_eq!(g.weighted_degree(1), 10.0, "self-loop counts twice");
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insertion_order() {
        let g = WeightedGraph::from_edges(5, &[(3, 1, 1.0), (3, 4, 1.0), (3, 0, 1.0), (3, 2, 1.0)]);
        let ids: Vec<u32> = g.neighbors(3).iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![0, 1, 2, 4]);
    }

    #[test]
    fn zero_weight_edges_dropped() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 0.0)]);
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        WeightedGraph::from_edges(2, &[(0, 1, -1.0)]);
    }

    #[test]
    fn similarity_clique_thresholds() {
        let mut scores = SymMatrix::zeros(3);
        for (i, j, v) in
            [(0, 0, 1.0), (0, 1, 0.9), (0, 2, 0.05), (1, 1, 1.0), (1, 2, 0.5), (2, 2, 1.0)]
        {
            scores.set(i, j, v);
        }
        let g = WeightedGraph::from_similarity(&scores, 0.1);
        assert_eq!(g.neighbors(0).len(), 1, "0-2 edge filtered by threshold");
        assert_eq!(g.neighbors(1).len(), 2);
    }
}
