//! Deterministic k-means (k-means++ seeding) with automatic k selection —
//! the clustering half of the RolX-style feature baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label per point, dense `0..k`.
    pub labels: Vec<usize>,
    /// Number of clusters actually used (empty clusters are compacted away).
    pub k: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Standard Lloyd iterations with k-means++ seeding from a fixed RNG seed.
///
/// # Panics
/// Panics if `k` is zero or points have inconsistent dimensions.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    let n = points.len();
    if n == 0 {
        return KMeansResult { labels: Vec::new(), k: 0, inertia: 0.0 };
    }
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "consistent dimensions");
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.random_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-18 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let new_center = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, &new_center));
        }
        centers.push(new_center);
    }

    // Lloyd iterations.
    let mut labels = vec![0usize; n];
    for _ in 0..max_iter {
        let mut moved = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centers.len())
                .min_by(|&a, &b| sq_dist(p, &centers[a]).total_cmp(&sq_dist(p, &centers[b])))
                .unwrap_or(0);
            if labels[i] != best {
                labels[i] = best;
                moved = true;
            }
        }
        // Recompute centers.
        let mut sums = vec![vec![0.0; dim]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, p) in points.iter().enumerate() {
            counts[labels[i]] += 1;
            for (s, v) in sums[labels[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (j, s) in sums[c].iter().enumerate() {
                    center[j] = s / counts[c] as f64;
                }
            }
        }
        if !moved {
            break;
        }
    }

    // Compact away empty clusters.
    let mut remap = std::collections::BTreeMap::new();
    let mut next = 0usize;
    let labels: Vec<usize> = labels
        .into_iter()
        .map(|l| {
            *remap.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();
    // Invert the (dense) compaction map so the inertia pass is a lookup.
    let mut orig_of = vec![0usize; next];
    for (&orig, &compact) in &remap {
        orig_of[compact] = orig;
    }
    let inertia: f64 = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| {
            // Labels were compacted; recompute against member means is
            // overkill — use nearest original center distance.
            sq_dist(p, &centers[orig_of[l]])
        })
        .sum();
    KMeansResult { labels, k: next, inertia }
}

/// Pick k by the Calinski–Harabasz criterion over `2..=k_max`, returning
/// the best clustering. Falls back to k = 1 when n < 3.
pub fn kmeans_auto(points: &[Vec<f64>], k_max: usize, seed: u64) -> KMeansResult {
    let n = points.len();
    if n < 3 {
        return kmeans(points, 1, seed, 50);
    }
    let dim = points[0].len();
    let grand: Vec<f64> =
        (0..dim).map(|c| points.iter().map(|p| p[c]).sum::<f64>() / n as f64).collect();
    let total_ss: f64 = points.iter().map(|p| sq_dist(p, &grand)).sum();

    let mut best: Option<(f64, KMeansResult)> = None;
    for k in 2..=k_max.min(n - 1) {
        let r = kmeans(points, k, seed, 100);
        if r.k < 2 {
            continue;
        }
        let between = (total_ss - r.inertia).max(0.0);
        let ch = (between / (r.k as f64 - 1.0)) / (r.inertia.max(1e-12) / (n - r.k) as f64);
        if best.as_ref().map(|(b, _)| ch > *b).unwrap_or(true) {
            best = Some((ch, r));
        }
    }
    best.map(|(_, r)| r).unwrap_or_else(|| kmeans(points, 1, seed, 50))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight blobs in 2D with isotropic pseudo-random jitter.
    fn blobs() -> Vec<Vec<f64>> {
        let mut state = 0xDEADBEEFu64;
        let mut jitter = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f64 / 16_777_216.0 - 0.5) * 0.6
        };
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..10 {
                pts.push(vec![cx + jitter(), cy + jitter()]);
            }
        }
        pts
    }

    #[test]
    fn separates_clear_blobs() {
        let pts = blobs();
        let r = kmeans(&pts, 3, 42, 100);
        assert_eq!(r.k, 3);
        // All members of one blob share a label.
        for blob in 0..3 {
            let base = r.labels[blob * 10];
            for i in 0..10 {
                assert_eq!(r.labels[blob * 10 + i], base, "blob {blob} split");
            }
        }
        assert!(r.inertia < 5.0, "tight blobs, small inertia: {}", r.inertia);
    }

    #[test]
    fn auto_k_finds_blob_structure() {
        let r = kmeans_auto(&blobs(), 8, 42);
        assert!(
            (3..=5).contains(&r.k),
            "CH criterion must find at least the three blobs (mild over-split ok): k = {}",
            r.k
        );
        // Whatever k it picks, a cluster must never mix two true blobs.
        for c in 0..r.k {
            let blobs_in_c: std::collections::HashSet<usize> =
                r.labels.iter().enumerate().filter(|(_, &l)| l == c).map(|(i, _)| i / 10).collect();
            assert_eq!(blobs_in_c.len(), 1, "cluster {c} spans blobs {blobs_in_c:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 7, 100);
        let b = kmeans(&pts, 3, 7, 100);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let r = kmeans(&pts, 10, 1, 50);
        assert!(r.k <= 2);
        assert_eq!(r.labels.len(), 2);
    }

    #[test]
    fn handles_identical_points() {
        let pts = vec![vec![5.0, 5.0]; 12];
        let r = kmeans(&pts, 3, 1, 50);
        assert!(r.labels.iter().all(|&l| l == r.labels[0]), "identical points, one cluster");
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn empty_input() {
        let r = kmeans(&[], 3, 1, 50);
        assert!(r.labels.is_empty());
        assert_eq!(r.k, 0);
    }
}
