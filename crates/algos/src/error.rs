//! Algorithm error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by graph algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A parameter was out of range.
    InvalidArg(String),
    /// Two label vectors being compared had different lengths.
    LengthMismatch {
        /// Length of the first labeling.
        left: usize,
        /// Length of the second labeling.
        right: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidArg(m) => write!(f, "invalid argument: {m}"),
            Error::LengthMismatch { left, right } => {
                write!(f, "labelings have different lengths: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::LengthMismatch { left: 3, right: 5 }.to_string().contains("3 vs 5"));
    }
}
