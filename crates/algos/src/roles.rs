//! Role inference — the auto-segmentation algorithms of §2.1.
//!
//! The paper's own method (Figure 1): score each node pair by the Jaccard
//! overlap of their neighbor sets, then run (hierarchical) Louvain on the
//! *scored clique* — the complete graph whose edge weights are similarity
//! scores. Nodes clustered together play the same role and can share a
//! µsegment.
//!
//! The Figure 3 alternatives are provided for comparison: SimRank and
//! SimRank++ similarity cliques, and connection-/byte-weighted modularity
//! directly on the communication graph. The latter group nodes that *talk*
//! to each other — which is exactly wrong for roles, since two front-end
//! replicas may never exchange a byte.

use crate::jaccard::{jaccard_incremental_with, jaccard_matrix_of_sets_with, MinHasher};
use crate::louvain::{
    hierarchical_louvain_seeded_with, hierarchical_louvain_with, louvain_with, HierarchicalConfig,
    LouvainResult,
};
use crate::simrank::{simrank_pp_with, simrank_with, SimRankConfig};
use crate::wgraph::WeightedGraph;
use commgraph_graph::{CommGraph, NodeId};
use linalg::par::Parallelism;
use linalg::sym::SymMatrix;
use obs::Obs;
use serde::Serialize;

/// Which segmentation algorithm to run.
#[derive(Debug, Clone)]
pub enum SegmentationMethod {
    /// The paper's method: exact Jaccard on neighbor sets + Louvain on the
    /// scored clique. `min_score` drops weak similarity edges (sparsifies
    /// the clique; 0.1 is a reasonable default).
    JaccardLouvain {
        /// Similarity floor below which clique edges are dropped.
        min_score: f64,
    },
    /// MinHash-sketched Jaccard + Louvain — the sub-quadratic-constant
    /// variant addressing the paper's complexity concern.
    MinHashLouvain {
        /// Number of hash permutations (more = tighter estimates).
        hashes: usize,
        /// Similarity floor below which clique edges are dropped.
        min_score: f64,
        /// Sketch seed.
        seed: u64,
    },
    /// SimRank similarity + Louvain on the scored clique (Figure 3a).
    SimRank {
        /// Iteration parameters.
        config: SimRankConfig,
        /// Similarity floor below which clique edges are dropped.
        min_score: f64,
    },
    /// SimRank++ similarity + Louvain on the scored clique (Figure 3b).
    SimRankPP {
        /// Iteration parameters.
        config: SimRankConfig,
        /// Similarity floor below which clique edges are dropped.
        min_score: f64,
    },
    /// Louvain directly on the graph, edges weighted by connection count
    /// (Figure 3c).
    ModularityConns,
    /// Louvain directly on the graph, edges weighted by bytes (Figure 3d).
    ModularityBytes,
    /// RolX-style feature clustering (the paper's \[51\] framing): structural
    /// node features + k-means, with automatic k selection when `k` is
    /// `None`.
    FeatureKMeans {
        /// Fixed cluster count, or `None` for Calinski–Harabasz selection
        /// up to `k_max`.
        k: Option<usize>,
        /// Upper bound for automatic selection.
        k_max: usize,
        /// Seeding for the k-means++ initialization.
        seed: u64,
    },
}

impl SegmentationMethod {
    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            SegmentationMethod::JaccardLouvain { .. } => "jaccard+louvain",
            SegmentationMethod::MinHashLouvain { .. } => "minhash+louvain",
            SegmentationMethod::SimRank { .. } => "simrank",
            SegmentationMethod::SimRankPP { .. } => "simrank++",
            SegmentationMethod::ModularityConns => "modularity-conns",
            SegmentationMethod::ModularityBytes => "modularity-bytes",
            SegmentationMethod::FeatureKMeans { .. } => "feature-kmeans",
        }
    }

    /// The paper's default configuration of its own method.
    pub fn paper_default() -> Self {
        SegmentationMethod::JaccardLouvain { min_score: 0.1 }
    }
}

/// The outcome of role inference on one graph.
#[derive(Debug, Clone, Serialize)]
pub struct RoleInference {
    /// Role label per graph node index (dense `0..n_roles`).
    pub labels: Vec<usize>,
    /// Number of inferred roles.
    pub n_roles: usize,
    /// Method identifier.
    pub method: String,
    /// Modularity achieved by the clustering stage (on whichever graph it
    /// clustered: the scored clique or the raw communication graph).
    pub clustering_modularity: f64,
}

/// Direction-qualified neighbor token sets: each neighbor contributes a
/// token encoding *who* it is and *how the conversation leans* (mostly
/// outbound bytes, mostly inbound, or balanced, from this node's view).
///
/// This is the "nature of the conversation" signal §2.1 says role inference
/// should use: it separates e.g. front-ends (which *pull* from a mid-tier)
/// from databases (which *serve* that same mid-tier) even though their bare
/// neighbor sets are identical.
pub fn directional_neighbor_sets(g: &CommGraph) -> Vec<Vec<u32>> {
    let n = g.node_count();
    let mut sets = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let mut tokens: Vec<u32> = g
            .neighbors(u)
            .iter()
            .filter(|(v, _)| *v != u)
            .map(|(v, stats)| {
                // stats are oriented outward from u.
                let total = stats.bytes();
                let class = if total == 0 {
                    0
                } else {
                    let out_frac = stats.bytes_fwd as f64 / total as f64;
                    if out_frac > 0.7 {
                        1 // mostly outbound
                    } else if out_frac < 0.3 {
                        2 // mostly inbound
                    } else {
                        0 // balanced
                    }
                };
                v * 3 + class
            })
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        sets.push(tokens);
    }
    sets
}

/// Infer roles for every node of `g` with the chosen method, at the default
/// [`Parallelism`].
pub fn infer_roles(g: &CommGraph, method: &SegmentationMethod) -> RoleInference {
    infer_roles_with(g, method, Parallelism::default())
}

/// Infer roles with an explicit worker count for the similarity kernels
/// and the clustering stage.
///
/// The Jaccard/MinHash/SimRank scoring stages run row-partitioned under
/// `parallelism`, and Louvain's local-move sweeps run on the same knob via
/// conflict-avoiding batches (see [`crate::louvain::louvain_with`]). Scores
/// and labels — and therefore the inferred roles — are bit-for-bit
/// identical at any worker count.
pub fn infer_roles_with(
    g: &CommGraph,
    method: &SegmentationMethod,
    parallelism: Parallelism,
) -> RoleInference {
    infer_roles_obs(g, method, parallelism, &Obs::noop())
}

/// [`infer_roles_with`], with the similarity-scoring and clustering stages
/// timed into `o`'s `commgraph_stage_seconds{stage="similarity"|"cluster"}`
/// histograms. A noop handle makes this identical to [`infer_roles_with`] —
/// instrumentation never changes what is computed.
pub fn infer_roles_obs(
    g: &CommGraph,
    method: &SegmentationMethod,
    parallelism: Parallelism,
    o: &Obs,
) -> RoleInference {
    // Unweighted structure view, shared by the SimRank methods.
    let structure = WeightedGraph::from_comm_graph(g, |_| 1.0);
    // Similarity cliques are clustered hierarchically (Figure 1's
    // "hierarchical louvain"): top-level Louvain finds role *kinds*, the
    // recursion separates same-kind roles that only share hub neighbors.
    let hier = HierarchicalConfig::default();
    let method_name = method.name();
    let cluster_scored = |scores, min_score: f64| {
        let mut span = o.stage_span("cluster");
        if span.trace_enabled() {
            span.trace_attr("method", method_name);
        }
        hierarchical_louvain_with(
            &WeightedGraph::from_similarity(&scores, min_score),
            hier,
            parallelism,
        )
    };
    let result: LouvainResult = match method {
        SegmentationMethod::JaccardLouvain { min_score } => {
            let scores = {
                let _span = o.stage_span("similarity");
                jaccard_matrix_of_sets_with(&directional_neighbor_sets(g), parallelism)
            };
            cluster_scored(scores, *min_score)
        }
        SegmentationMethod::MinHashLouvain { hashes, min_score, seed } => {
            let scores = {
                let _span = o.stage_span("similarity");
                let mh = MinHasher::new(*hashes, *seed);
                mh.similarity_matrix_of_sets_with(&directional_neighbor_sets(g), parallelism)
            };
            cluster_scored(scores, *min_score)
        }
        SegmentationMethod::SimRank { config, min_score } => {
            let scores = {
                let _span = o.stage_span("similarity");
                simrank_with(&structure, *config, parallelism)
            };
            cluster_scored(scores, *min_score)
        }
        SegmentationMethod::SimRankPP { config, min_score } => {
            let scores = {
                let _span = o.stage_span("similarity");
                let weighted = WeightedGraph::from_comm_graph(g, |e| e.bytes() as f64);
                simrank_pp_with(&weighted, *config, parallelism)
            };
            cluster_scored(scores, *min_score)
        }
        SegmentationMethod::ModularityConns => {
            let mut span = o.stage_span("cluster");
            if span.trace_enabled() {
                span.trace_attr("method", method_name);
            }
            let _span = span;
            louvain_with(&WeightedGraph::from_comm_graph(g, |e| e.conns as f64), 1.0, parallelism)
        }
        SegmentationMethod::ModularityBytes => {
            let mut span = o.stage_span("cluster");
            if span.trace_enabled() {
                span.trace_attr("method", method_name);
            }
            let _span = span;
            louvain_with(&WeightedGraph::from_comm_graph(g, |e| e.bytes() as f64), 1.0, parallelism)
        }
        SegmentationMethod::FeatureKMeans { k, k_max, seed } => {
            // Feature extraction plays the similarity-scoring part here.
            let feats = {
                let _span = o.stage_span("similarity");
                crate::features::node_features(g)
            };
            let mut span = o.stage_span("cluster");
            if span.trace_enabled() {
                span.trace_attr("method", method_name);
            }
            let _span = span;
            let km = match k {
                Some(k) => crate::kmeans::kmeans(&feats, *k, *seed, 200),
                None => crate::kmeans::kmeans_auto(&feats, *k_max, *seed),
            };
            // k-means has no modularity; report the partition's modularity
            // on the unweighted structure for comparability.
            let q = crate::louvain::modularity(&structure, &km.labels, 1.0);
            LouvainResult { labels: km.labels, modularity: q, levels: 1 }
        }
    };
    let n_roles = result.labels.iter().copied().max().map_or(0, |m| m + 1);
    RoleInference {
        labels: result.labels,
        n_roles,
        method: method.name().to_string(),
        clustering_modularity: result.modularity,
    }
}

/// Carry-over state for incremental role inference across consecutive
/// windows: the previous window's similarity matrix, inferred labels, and
/// node order. Produced and consumed by [`infer_roles_incremental_obs`].
#[derive(Debug, Clone)]
pub struct RoleMemo {
    /// Similarity matrix of the previous window, in its node order.
    pub scores: SymMatrix,
    /// Inferred role label per previous-window node.
    pub labels: Vec<usize>,
    /// The previous window's nodes, sorted (graph node order).
    pub nodes: Vec<NodeId>,
}

/// Incremental variant of the paper's Jaccard+Louvain role inference:
/// similarity rows are recomputed only for `dirty` nodes (clean pairs are
/// copied from the memo's matrix — bit-exact, see
/// [`jaccard_incremental_with`]), and the hierarchical Louvain base run is
/// seeded from the previous window's partition
/// ([`hierarchical_louvain_seeded_with`]).
///
/// `dirty` is the sorted dirty-node set from `commgraph_graph::diff`
/// between the memo's window and `g`. With `memo == None` (first window)
/// the computation is a plain full run. Returns the inference plus the memo
/// for the next window.
///
/// On a converged steady-state window the seeded clustering lands on the
/// same partition as a fresh run, and identical partitions compact to
/// identical label vectors — so labels and modularity match the
/// full-rebuild oracle bit-for-bit (asserted by the pipeline equivalence
/// tests at every window).
pub fn infer_roles_incremental_obs(
    g: &CommGraph,
    dirty: &[NodeId],
    memo: Option<&RoleMemo>,
    min_score: f64,
    parallelism: Parallelism,
    o: &Obs,
) -> (RoleInference, RoleMemo) {
    let n = g.node_count();
    let hier = HierarchicalConfig::default();
    let (scores, seed) = match memo {
        None => {
            let scores = {
                let _span = o.stage_span("similarity");
                jaccard_matrix_of_sets_with(&directional_neighbor_sets(g), parallelism)
            };
            (scores, None)
        }
        Some(memo) => {
            let _span = o.stage_span("similarity");
            let prev_index: Vec<Option<usize>> =
                g.nodes().iter().map(|id| memo.nodes.binary_search(id).ok()).collect();
            let dirty_flags: Vec<bool> =
                g.nodes().iter().map(|id| dirty.binary_search(id).is_ok()).collect();
            let sets = directional_neighbor_sets(g);
            let scores = jaccard_incremental_with(
                &sets,
                &dirty_flags,
                &memo.scores,
                &prev_index,
                parallelism,
            );
            // Seed each persisting node with its previous role; fresh nodes
            // get fresh singleton labels.
            let mut next = memo.labels.iter().copied().max().map_or(0, |m| m + 1);
            let seed: Vec<usize> = prev_index
                .iter()
                .map(|pi| match pi {
                    Some(pi) => memo.labels[*pi],
                    None => {
                        let l = next;
                        next += 1;
                        l
                    }
                })
                .collect();
            (scores, Some(seed))
        }
    };
    let result = {
        let mut span = o.stage_span("cluster");
        if span.trace_enabled() {
            span.trace_attr("method", "jaccard+louvain/incremental");
        }
        let clique = WeightedGraph::from_similarity(&scores, min_score);
        match &seed {
            Some(seed) => hierarchical_louvain_seeded_with(&clique, hier, parallelism, seed),
            None => hierarchical_louvain_with(&clique, hier, parallelism),
        }
    };
    let n_roles = result.labels.iter().copied().max().map_or(0, |m| m + 1);
    debug_assert_eq!(result.labels.len(), n);
    let memo = RoleMemo { scores, labels: result.labels.clone(), nodes: g.nodes().to_vec() };
    let inference = RoleInference {
        labels: result.labels,
        n_roles,
        method: "jaccard+louvain".to_string(),
        clustering_modularity: result.modularity,
    };
    (inference, memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;
    use commgraph_graph::{EdgeStats, NodeId};
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    /// A synthetic three-tier deployment: 4 frontends, 3 backends, 2 DBs.
    /// Frontends all talk to all backends; backends to both DBs. Peers of
    /// the same tier never talk to each other.
    fn three_tier() -> (CommGraph, Vec<usize>) {
        let mut edges = HashMap::new();
        let node = |tier: u8, i: u8| NodeId::Ip(Ipv4Addr::new(10, 0, tier, i));
        let stats = |bytes: u64| EdgeStats {
            bytes_fwd: bytes,
            bytes_rev: bytes / 4,
            pkts_fwd: bytes / 1000,
            pkts_rev: bytes / 4000,
            conns: 10,
        };
        for f in 0..4u8 {
            for b in 0..3u8 {
                edges.insert((node(0, f), node(1, b)), stats(100_000));
            }
        }
        for b in 0..3u8 {
            for d in 0..2u8 {
                edges.insert((node(1, b), node(2, d)), stats(500_000));
            }
        }
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        // Ground truth by tier, in node order (nodes sort by IP → tier-major).
        let truth: Vec<usize> =
            g.nodes().iter().map(|n| n.ip().unwrap().octets()[2] as usize).collect();
        (g, truth)
    }

    #[test]
    fn jaccard_louvain_recovers_tiers() {
        let (g, truth) = three_tier();
        let r = infer_roles(&g, &SegmentationMethod::paper_default());
        let ari = adjusted_rand_index(&r.labels, &truth).unwrap();
        assert!(ari > 0.9, "paper's method should nail a clean 3-tier graph, ARI {ari}");
        assert_eq!(r.n_roles, 3);
    }

    #[test]
    fn minhash_variant_close_to_exact() {
        let (g, truth) = three_tier();
        let r = infer_roles(
            &g,
            &SegmentationMethod::MinHashLouvain { hashes: 256, min_score: 0.1, seed: 1 },
        );
        let ari = adjusted_rand_index(&r.labels, &truth).unwrap();
        assert!(ari > 0.8, "sketched variant should stay close, ARI {ari}");
    }

    #[test]
    fn modularity_methods_group_talkers_not_peers() {
        let (g, truth) = three_tier();
        let m = infer_roles(&g, &SegmentationMethod::ModularityBytes);
        let j = infer_roles(&g, &SegmentationMethod::paper_default());
        let ari_m = adjusted_rand_index(&m.labels, &truth).unwrap();
        let ari_j = adjusted_rand_index(&j.labels, &truth).unwrap();
        assert!(
            ari_j > ari_m,
            "the paper's point: modularity ({ari_m}) loses to jaccard ({ari_j}) on roles"
        );
    }

    #[test]
    fn simrank_methods_run_and_label_everything() {
        let (g, _) = three_tier();
        for method in [
            SegmentationMethod::SimRank { config: SimRankConfig::default(), min_score: 0.05 },
            SegmentationMethod::SimRankPP { config: SimRankConfig::default(), min_score: 0.05 },
        ] {
            let r = infer_roles(&g, &method);
            assert_eq!(r.labels.len(), g.node_count());
            assert!(r.n_roles >= 1);
        }
    }

    #[test]
    fn feature_kmeans_runs_and_separates_tiers() {
        let (g, truth) = three_tier();
        let r =
            infer_roles(&g, &SegmentationMethod::FeatureKMeans { k: Some(3), k_max: 8, seed: 7 });
        assert_eq!(r.labels.len(), g.node_count());
        let ari = adjusted_rand_index(&r.labels, &truth).unwrap();
        assert!(ari > 0.5, "feature clustering should track clean tiers, ARI {ari}");

        let auto =
            infer_roles(&g, &SegmentationMethod::FeatureKMeans { k: None, k_max: 6, seed: 7 });
        assert!(auto.n_roles >= 2, "auto-k must find structure");
    }

    #[test]
    fn methods_have_distinct_names() {
        let names: std::collections::HashSet<&str> = [
            SegmentationMethod::paper_default().name(),
            SegmentationMethod::ModularityConns.name(),
            SegmentationMethod::ModularityBytes.name(),
            SegmentationMethod::SimRank { config: SimRankConfig::default(), min_score: 0.1 }.name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn empty_graph_yields_empty_inference() {
        let g = CommGraph::from_edge_map("ip", 0, 60, HashMap::new());
        let r = infer_roles(&g, &SegmentationMethod::paper_default());
        assert!(r.labels.is_empty());
        assert_eq!(r.n_roles, 0);
    }

    /// The churned second window of [`three_tier`]: one frontend↔backend
    /// conversation changes volume, one frontend is added, one DB removed.
    fn three_tier_churned() -> CommGraph {
        let mut edges = HashMap::new();
        let node = |tier: u8, i: u8| NodeId::Ip(Ipv4Addr::new(10, 0, tier, i));
        let stats = |bytes: u64| EdgeStats {
            bytes_fwd: bytes,
            bytes_rev: bytes / 4,
            pkts_fwd: bytes / 1000,
            pkts_rev: bytes / 4000,
            conns: 10,
        };
        for f in 0..5u8 {
            for b in 0..3u8 {
                let bytes = if f == 0 && b == 0 { 250_000 } else { 100_000 };
                edges.insert((node(0, f), node(1, b)), stats(bytes));
            }
        }
        for b in 0..3u8 {
            edges.insert((node(1, b), node(2, 0)), stats(500_000));
        }
        CommGraph::from_edge_map("ip", 3600, 7200, edges)
    }

    #[test]
    fn incremental_inference_matches_full_rebuild_oracle() {
        let (g1, _) = three_tier();
        let g2 = three_tier_churned();
        let dirty = commgraph_graph::diff::dirty_nodes(&g1, &g2);
        assert!(!dirty.is_empty() && dirty.len() < g2.node_count() + 1);
        let method = SegmentationMethod::paper_default();
        for workers in [1, 2, 8] {
            let p = Parallelism::new(workers);
            let o = Obs::noop();
            // First window: no memo — plain full run.
            let (r1, memo) = infer_roles_incremental_obs(&g1, &[], None, 0.1, p, &o);
            let full1 = infer_roles_with(&g1, &method, p);
            assert_eq!(r1.labels, full1.labels, "first window, {workers} workers");
            assert_eq!(r1.clustering_modularity, full1.clustering_modularity);
            // Second window: dirty-set recompute + seeded clustering must
            // reproduce the full rebuild bit-for-bit.
            let (r2, memo2) = infer_roles_incremental_obs(&g2, &dirty, Some(&memo), 0.1, p, &o);
            let full2 = infer_roles_with(&g2, &method, p);
            assert_eq!(r2.labels, full2.labels, "second window, {workers} workers");
            assert_eq!(r2.n_roles, full2.n_roles);
            assert_eq!(r2.clustering_modularity, full2.clustering_modularity);
            // The memo's matrix must equal a from-scratch similarity matrix.
            let fresh = jaccard_matrix_of_sets_with(&directional_neighbor_sets(&g2), p);
            assert_eq!(memo2.scores, fresh, "incremental scores drifted, {workers} workers");
        }
    }

    #[test]
    fn incremental_inference_is_stable_under_no_churn() {
        let (g, _) = three_tier();
        let p = Parallelism::new(2);
        let o = Obs::noop();
        let (r1, memo) = infer_roles_incremental_obs(&g, &[], None, 0.1, p, &o);
        // Same graph again, empty dirty set: everything reused, labels fixed.
        let (r2, _) = infer_roles_incremental_obs(&g, &[], Some(&memo), 0.1, p, &o);
        assert_eq!(r1.labels, r2.labels);
        assert_eq!(r1.clustering_modularity, r2.clustering_modularity);
    }
}
