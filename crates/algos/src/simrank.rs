//! SimRank and SimRank++ structural similarity (\[54\], \[28, 60\]).
//!
//! SimRank scores two nodes by the similarity of their neighbors,
//! recursively: "two objects are similar if they are referenced by similar
//! objects." Uniquely among the paper's candidates it can discover roles
//! that are not evident from one-hop neighbor overlap — at higher cost, and
//! (per the paper's experiments and ours) without better quality on cloud
//! communication graphs.
//!
//! Implementation: the matrix fixed-point form `S ← C · Wᵀ S W` with
//! column-normalized adjacency `W`, diagonal pinned to 1 each iteration —
//! O(n³) per iteration rather than the naive O(n² d²). SimRank++ adds
//! (a) weighted transition matrices with a *spread* factor `e^{-var}` that
//! discounts high-variance neighbors and (b) an *evidence* factor
//! `1 − 2^{−|common neighbors|}` applied to the converged scores.

use crate::wgraph::WeightedGraph;
use linalg::par::Parallelism;
use linalg::sym::SymMatrix;
use linalg::Matrix;

/// Configuration for SimRank iterations.
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay constant `C` in `(0, 1)`; 0.8 is the literature default.
    pub decay: f64,
    /// Fixed-point iterations; 5 suffices for 1e-3-level convergence.
    pub iterations: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        SimRankConfig { decay: 0.8, iterations: 5 }
    }
}

/// Plain SimRank similarity matrix at the default [`Parallelism`].
pub fn simrank(g: &WeightedGraph, cfg: SimRankConfig) -> SymMatrix {
    simrank_with(g, cfg, Parallelism::default())
}

/// Plain SimRank with an explicit worker count. The matrix products inside
/// the fixed-point iteration are double-buffered and row-partitioned; each
/// output row is computed in the serial loop order, so results are
/// bit-for-bit identical at any worker count.
pub fn simrank_with(g: &WeightedGraph, cfg: SimRankConfig, parallelism: Parallelism) -> SymMatrix {
    let w = transition_matrix(g, false);
    iterate(g.node_count(), &w, cfg, parallelism)
}

/// SimRank++: weight- and spread-aware transitions plus the evidence factor,
/// at the default [`Parallelism`].
pub fn simrank_pp(g: &WeightedGraph, cfg: SimRankConfig) -> SymMatrix {
    simrank_pp_with(g, cfg, Parallelism::default())
}

/// SimRank++ with an explicit worker count (same determinism contract as
/// [`simrank_with`]).
pub fn simrank_pp_with(
    g: &WeightedGraph,
    cfg: SimRankConfig,
    parallelism: Parallelism,
) -> SymMatrix {
    let w = transition_matrix(g, true);
    let mut s = iterate(g.node_count(), &w, cfg, parallelism);
    apply_evidence(g, &mut s, parallelism);
    s
}

/// Column-normalized (optionally weighted+spread) transition matrix:
/// `W[i][a] = spread(i) · w(a,i) / Σ_k w(a,k)` for `i ∈ N(a)`.
fn transition_matrix(g: &WeightedGraph, weighted: bool) -> Matrix {
    let n = g.node_count();
    let mut w = Matrix::zeros(n, n);
    // Spread factor per *neighbor* node i: e^{-variance of weights incident
    // to i}, computed over normalized incident weights. Plain SimRank uses 1.
    let spread: Vec<f64> = if weighted {
        (0..n as u32)
            .map(|i| {
                let nbrs = g.neighbors(i);
                if nbrs.is_empty() {
                    return 1.0;
                }
                let total: f64 = nbrs.iter().map(|&(_, wt)| wt).sum();
                if total == 0.0 {
                    return 1.0;
                }
                let mean = 1.0 / nbrs.len() as f64;
                let var = nbrs
                    .iter()
                    .map(|&(_, wt)| {
                        let p = wt / total;
                        (p - mean) * (p - mean)
                    })
                    .sum::<f64>()
                    / nbrs.len() as f64;
                (-var).exp()
            })
            .collect()
    } else {
        vec![1.0; n]
    };

    for a in 0..n as u32 {
        let nbrs = g.neighbors(a);
        if nbrs.is_empty() {
            continue;
        }
        let denom: f64 =
            if weighted { nbrs.iter().map(|&(_, wt)| wt).sum() } else { nbrs.len() as f64 };
        if denom == 0.0 {
            continue;
        }
        for &(i, wt) in nbrs {
            let p = if weighted { wt / denom } else { 1.0 / denom };
            // Accumulate (parallel edges merge).
            w[(i as usize, a as usize)] += spread[i as usize] * p;
        }
    }
    w
}

/// Fixed-point iteration `S ← C · Wᵀ S W`, diagonal pinned to 1. The two
/// matrix products per iteration run row-partitioned under `parallelism`
/// (double-buffered: each reads the previous iterate, writes a fresh one);
/// the converged upper triangle is packed into a [`SymMatrix`].
fn iterate(n: usize, w: &Matrix, cfg: SimRankConfig, parallelism: Parallelism) -> SymMatrix {
    assert!((0.0..1.0).contains(&cfg.decay) && cfg.decay > 0.0, "decay must be in (0,1)");
    let mut s = Matrix::identity(n);
    let wt = w.transpose();
    for _ in 0..cfg.iterations {
        // Both products are n×n by construction; should a shape mismatch
        // ever slip in, stop iterating and pack the last good iterate
        // instead of panicking mid-pipeline.
        let Ok(mut next) =
            wt.matmul_with(&s, parallelism).and_then(|x| x.matmul_with(w, parallelism))
        else {
            break;
        };
        for i in 0..n {
            for j in 0..n {
                next[(i, j)] *= cfg.decay;
            }
            next[(i, i)] = 1.0;
        }
        s = next;
    }
    let mut out = SymMatrix::zeros(n);
    out.fill_upper(parallelism, |i, j| s[(i, j)]);
    out
}

/// Evidence factor `1 − 2^{−|N(a) ∩ N(b)|}` applied off-diagonal.
fn apply_evidence(g: &WeightedGraph, s: &mut SymMatrix, parallelism: Parallelism) {
    let n = g.node_count();
    let sets: Vec<Vec<u32>> = (0..n as u32).map(|u| g.neighbor_set(u)).collect();
    s.update_upper(parallelism, |a, b, v| {
        if a == b {
            return v;
        }
        let common = intersection_size(&sets[a], &sets[b]);
        v * (1.0 - 0.5f64.powi(common as i32))
    });
}

fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index pairs are clearest for symmetry checks
mod tests {
    use super::*;

    /// Two replicas (0,1) sharing servers (2,3); outsider 4 attached to 3.
    fn replica_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            5,
            &[(0, 2, 1.0), (0, 3, 1.0), (1, 2, 1.0), (1, 3, 1.0), (4, 3, 1.0)],
        )
    }

    #[test]
    fn self_similarity_is_one() {
        let s = simrank(&replica_graph(), SimRankConfig::default());
        for i in 0..s.n() {
            assert_eq!(s[(i, i)], 1.0);
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let s = simrank(&replica_graph(), SimRankConfig::default());
        for i in 0..5 {
            for j in 0..5 {
                assert!((s[(i, j)] - s[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn replicas_more_similar_than_strangers() {
        let s = simrank(&replica_graph(), SimRankConfig::default());
        // Full-overlap replicas can tie with a partially-overlapping node
        // (both reduce to the same neighbor-pair average here) but must
        // never lose to it, and must clearly beat the client-server pair.
        assert!(
            s[(0, 1)] >= s[(0, 4)] - 1e-12,
            "replicas {} must not lose to frontend-vs-outsider {}",
            s[(0, 1)],
            s[(0, 4)]
        );
        assert!(s[(0, 1)] > s[(0, 2)], "replicas must beat client-server similarity");
    }

    #[test]
    fn scores_bounded_by_one() {
        let s = simrank(&replica_graph(), SimRankConfig::default());
        for &v in s.data() {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "score {v} out of range");
        }
    }

    #[test]
    fn known_two_step_value() {
        // Path graph 0-1-2: s(0,2) after convergence = C (they share the
        // single neighbor 1 whose self-similarity is 1).
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let s = simrank(&g, SimRankConfig { decay: 0.8, iterations: 10 });
        assert!((s[(0, 2)] - 0.8).abs() < 1e-6, "s(0,2) = {}", s[(0, 2)]);
    }

    #[test]
    fn isolated_nodes_score_zero() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]);
        let s = simrank(&g, SimRankConfig::default());
        assert_eq!(s[(0, 2)], 0.0);
        assert_eq!(s[(2, 2)], 1.0, "self-similarity still pinned");
    }

    #[test]
    fn simrank_pp_evidence_discounts_thin_overlap() {
        // 0 and 1 share ONE neighbor; 2 and 3 share TWO neighbors.
        let g = WeightedGraph::from_edges(
            8,
            &[(0, 6, 1.0), (1, 6, 1.0), (2, 6, 1.0), (2, 7, 1.0), (3, 6, 1.0), (3, 7, 1.0)],
        );
        let spp = simrank_pp(&g, SimRankConfig::default());
        assert!(
            spp[(2, 3)] > spp[(0, 1)],
            "two shared neighbors ({}) must outscore one ({})",
            spp[(2, 3)],
            spp[(0, 1)]
        );
    }

    #[test]
    fn simrank_pp_respects_weights() {
        // 0 talks almost entirely to 2; 1 talks almost entirely to 3.
        // A third node 4 splits evenly. SimRank++ should rate (0,1) lower
        // than plain structural equivalence would suggest, without crashing
        // on the weighting path.
        let g = WeightedGraph::from_edges(
            5,
            &[(0, 2, 100.0), (0, 3, 1.0), (1, 2, 1.0), (1, 3, 100.0), (4, 2, 50.0), (4, 3, 50.0)],
        );
        let spp = simrank_pp(&g, SimRankConfig::default());
        let s = simrank(&g, SimRankConfig::default());
        // Unweighted SimRank sees 0 and 1 as structurally identical; the
        // weighted variant must not score them higher than it does.
        assert!(spp[(0, 1)] <= s[(0, 1)] + 1e-9);
        for &v in spp.data() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn empty_graph() {
        let s = simrank(&WeightedGraph::new(0), SimRankConfig::default());
        assert_eq!(s.n(), 0);
    }

    #[test]
    fn parallel_simrank_bitwise_matches_serial() {
        let g = replica_graph();
        let cfg = SimRankConfig::default();
        let serial = simrank_with(&g, cfg, Parallelism::serial());
        let serial_pp = simrank_pp_with(&g, cfg, Parallelism::serial());
        for workers in [2, 8] {
            let p = Parallelism::new(workers);
            assert_eq!(simrank_with(&g, cfg, p), serial, "{workers} workers");
            assert_eq!(simrank_pp_with(&g, cfg, p), serial_pp, "{workers} workers (pp)");
        }
    }
}
