//! Structural node features for feature-based role inference.
//!
//! The paper points at the graph-mining role-inference literature (RolX
//! \[51\]) as the natural frame for auto-segmentation. RolX extracts
//! per-node structural features and factorizes them; this module provides
//! the feature-extraction half over communication graphs — degree, traffic
//! volumes, direction balance, egonet shape, neighbor profile — normalized
//! for clustering.

use commgraph_graph::CommGraph;

/// Names of the features [`node_features`] emits, in column order.
pub const FEATURE_NAMES: [&str; 8] = [
    "degree",
    "log_bytes",
    "log_conns",
    "out_byte_fraction",
    "mean_neighbor_degree",
    "egonet_density",
    "bytes_per_conn",
    "top_edge_share",
];

/// Per-node structural feature matrix (`n × 8`), z-score normalized per
/// column so no single feature dominates k-means distances.
pub fn node_features(g: &CommGraph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut raw = vec![vec![0.0f64; FEATURE_NAMES.len()]; n];
    for i in 0..n as u32 {
        let ns = g.node_stats(i);
        let nbrs = g.neighbors(i);
        let degree = ns.degree as f64;

        // Direction balance: bytes sent outward / total.
        let out_bytes: u64 = nbrs.iter().map(|(_, s)| s.bytes_fwd).sum();
        let out_frac = if ns.bytes == 0 { 0.5 } else { out_bytes as f64 / ns.bytes as f64 };

        // Neighbor degree profile.
        let mean_nbr_degree = if nbrs.is_empty() {
            0.0
        } else {
            nbrs.iter().map(|(v, _)| g.node_stats(*v).degree as f64).sum::<f64>()
                / nbrs.len() as f64
        };

        // Egonet density: fraction of neighbor pairs that are themselves
        // connected (the node's local clustering coefficient).
        let egonet_density = {
            let ids: Vec<u32> = nbrs.iter().map(|(v, _)| *v).filter(|v| *v != i).collect();
            let d = ids.len();
            if d < 2 {
                0.0
            } else {
                let mut linked = 0usize;
                for (a_idx, &a) in ids.iter().enumerate() {
                    for &b in &ids[a_idx + 1..] {
                        if g.edge(a, b).is_some() {
                            linked += 1;
                        }
                    }
                }
                linked as f64 / (d * (d - 1) / 2) as f64
            }
        };

        // Heaviest single edge as a share of the node's traffic.
        let top_edge = nbrs.iter().map(|(_, s)| s.bytes()).max().unwrap_or(0);
        let top_share = if ns.bytes == 0 { 0.0 } else { top_edge as f64 / ns.bytes as f64 };

        raw[i as usize] = vec![
            degree,
            (1.0 + ns.bytes as f64).ln(),
            (1.0 + ns.conns as f64).ln(),
            out_frac,
            mean_nbr_degree,
            egonet_density,
            if ns.conns == 0 { 0.0 } else { (ns.bytes as f64 / ns.conns as f64).ln_1p() },
            top_share,
        ];
    }
    zscore_columns(&mut raw);
    raw
}

/// In-place z-score normalization per column; constant columns become 0.
fn zscore_columns(rows: &mut [Vec<f64>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let n = rows.len() as f64;
    for c in 0..cols {
        let mean = rows.iter().map(|r| r[c]).sum::<f64>() / n;
        let var = rows.iter().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for r in rows.iter_mut() {
            r[c] = if sd > 1e-12 { (r[c] - mean) / sd } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::{EdgeStats, NodeId};
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn node(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    /// A hub (1) with 6 spokes, plus a triangle (10, 11, 12).
    fn hub_and_triangle() -> CommGraph {
        let mut edges = HashMap::new();
        for d in 2..=7u8 {
            edges.insert(
                (node(1), node(d)),
                EdgeStats { bytes_fwd: 1_000, bytes_rev: 100_000, conns: 10, ..Default::default() },
            );
        }
        for (a, b) in [(10u8, 11u8), (11, 12), (10, 12)] {
            edges.insert(
                (node(a), node(b)),
                EdgeStats { bytes_fwd: 50_000, bytes_rev: 50_000, conns: 5, ..Default::default() },
            );
        }
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn feature_matrix_shape() {
        let g = hub_and_triangle();
        let f = node_features(&g);
        assert_eq!(f.len(), g.node_count());
        assert!(f.iter().all(|row| row.len() == FEATURE_NAMES.len()));
        assert!(f.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn columns_are_normalized() {
        let g = hub_and_triangle();
        let f = node_features(&g);
        for c in 0..FEATURE_NAMES.len() {
            let mean: f64 = f.iter().map(|r| r[c]).sum::<f64>() / f.len() as f64;
            assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
        }
    }

    #[test]
    fn hub_differs_from_spokes_spokes_match_each_other() {
        let g = hub_and_triangle();
        let f = node_features(&g);
        let idx = |d: u8| g.index_of(&node(d)).expect("node exists") as usize;
        let dist = |a: usize, b: usize| -> f64 {
            f[a].iter().zip(&f[b]).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        let spoke_spoke = dist(idx(2), idx(3));
        let spoke_hub = dist(idx(2), idx(1));
        assert!(
            spoke_spoke < spoke_hub * 0.3,
            "replicas must be near-identical: spoke-spoke {spoke_spoke} vs spoke-hub {spoke_hub}"
        );
    }

    #[test]
    fn triangle_nodes_have_dense_egonets() {
        let g = hub_and_triangle();
        let f = node_features(&g);
        let ego_col = 5;
        let idx = |d: u8| g.index_of(&node(d)).expect("node exists") as usize;
        // Triangle members: egonet density 1.0 (normalized above hub/spokes).
        assert!(
            f[idx(10)][ego_col] > f[idx(1)][ego_col],
            "triangle member must out-density the hub"
        );
    }

    #[test]
    fn empty_graph() {
        let g = CommGraph::from_edge_map("ip", 0, 60, HashMap::new());
        assert!(node_features(&g).is_empty());
    }
}
