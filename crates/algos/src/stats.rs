//! Traffic-distribution statistics and pattern detection.
//!
//! Figure 6 of the paper plots the CCDF of bytes against the fraction of
//! nodes participating, showing that a few nodes account for most traffic —
//! the "where to invest capacity" analysis. §2.2 calls out two visual
//! patterns in adjacency matrices: chatty cliques and hub-and-spoke. This
//! module computes all three.

use commgraph_graph::CommGraph;
use serde::Serialize;

/// One point of the Figure 6 curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CcdfPoint {
    /// Fraction of nodes considered (heaviest first), in `(0, 1]`.
    pub frac_nodes: f64,
    /// Fraction of total bytes *not yet* covered by those nodes (CCDF).
    pub ccdf: f64,
}

/// Byte CCDF over nodes, heaviest-first (Figure 6).
///
/// Point *i* says: the top `frac_nodes` of nodes carry all but `ccdf` of the
/// traffic. A steep initial drop = heavy concentration.
pub fn byte_ccdf(g: &CommGraph) -> Vec<CcdfPoint> {
    let order = g.nodes_by_bytes();
    let total: f64 = order.iter().map(|&i| g.node_stats(i).bytes as f64).sum();
    let n = order.len();
    if n == 0 || total == 0.0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let mut cum = 0.0;
    for (rank, &idx) in order.iter().enumerate() {
        cum += g.node_stats(idx).bytes as f64;
        out.push(CcdfPoint {
            frac_nodes: (rank + 1) as f64 / n as f64,
            ccdf: ((total - cum) / total).max(0.0),
        });
    }
    out
}

/// Share of total byte volume carried by the heaviest `frac` of nodes.
pub fn top_share(g: &CommGraph, frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let order = g.nodes_by_bytes();
    let total: f64 = order.iter().map(|&i| g.node_stats(i).bytes as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let k = ((order.len() as f64 * frac).ceil() as usize).min(order.len());
    let covered: f64 = order[..k].iter().map(|&i| g.node_stats(i).bytes as f64).sum();
    covered / total
}

/// Gini coefficient of per-node byte totals: 0 = perfectly even,
/// → 1 = extreme concentration.
pub fn byte_gini(g: &CommGraph) -> f64 {
    let mut v: Vec<f64> =
        (0..g.node_count() as u32).map(|i| g.node_stats(i).bytes as f64).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len() as f64;
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// A detected hub: a node whose degree dwarfs the graph average.
#[derive(Debug, Clone, Serialize)]
pub struct Hub {
    /// Dense node index.
    pub node: u32,
    /// Display string of the node id.
    pub label: String,
    /// Node degree.
    pub degree: u32,
    /// Node byte total.
    pub bytes: u64,
}

/// Find hub-and-spoke centers: nodes with degree ≥ `factor` × mean degree
/// (and at least 4). Hubs in cloud graphs are control-plane components —
/// API servers, job managers, telemetry sinks.
pub fn detect_hubs(g: &CommGraph, factor: f64) -> Vec<Hub> {
    assert!(factor > 0.0, "factor must be positive");
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mean_degree: f64 =
        (0..n as u32).map(|i| g.node_stats(i).degree as f64).sum::<f64>() / n as f64;
    let threshold = (mean_degree * factor).max(4.0);
    let mut hubs: Vec<Hub> = (0..n as u32)
        .filter(|&i| g.node_stats(i).degree as f64 >= threshold)
        .map(|i| Hub {
            node: i,
            label: g.node(i).to_string(),
            degree: g.node_stats(i).degree,
            bytes: g.node_stats(i).bytes,
        })
        .collect();
    hubs.sort_by_key(|h| std::cmp::Reverse(h.degree));
    hubs
}

/// A detected chatty clique: a group of nodes with high internal edge
/// density and heavy internal traffic.
#[derive(Debug, Clone, Serialize)]
pub struct ChattyClique {
    /// Dense node indices of the members.
    pub members: Vec<u32>,
    /// Fraction of possible internal edges present, in `(0, 1]`.
    pub density: f64,
    /// Bytes on internal edges.
    pub internal_bytes: u64,
}

/// Find chatty cliques: byte-weighted Louvain communities of ≥ `min_size`
/// nodes whose internal edge density is ≥ `min_density`.
pub fn detect_chatty_cliques(
    g: &CommGraph,
    min_size: usize,
    min_density: f64,
) -> Vec<ChattyClique> {
    use crate::louvain::louvain;
    use crate::wgraph::WeightedGraph;
    assert!(min_size >= 2, "a clique needs at least two members");
    let w = WeightedGraph::from_comm_graph(g, |e| e.bytes() as f64);
    let part = louvain(&w);
    let n_comm = part.labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n_comm];
    for (i, &c) in part.labels.iter().enumerate() {
        groups[c].push(i as u32);
    }
    let mut out = Vec::new();
    for members in groups {
        if members.len() < min_size {
            continue;
        }
        let set: std::collections::HashSet<u32> = members.iter().copied().collect();
        let mut internal_edges = 0usize;
        let mut internal_bytes = 0u64;
        for &u in &members {
            for (v, stats) in g.neighbors(u) {
                if *v > u && set.contains(v) {
                    internal_edges += 1;
                    internal_bytes += stats.bytes();
                }
            }
        }
        let possible = members.len() * (members.len() - 1) / 2;
        let density = internal_edges as f64 / possible as f64;
        if density >= min_density {
            out.push(ChattyClique { members, density, internal_bytes });
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.internal_bytes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::{EdgeStats, NodeId};
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn node(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    fn stats(bytes: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bytes, bytes_rev: 0, pkts_fwd: bytes / 1000, pkts_rev: 0, conns: 1 }
    }

    /// One elephant pair + many mouse pairs.
    fn skewed() -> CommGraph {
        let mut edges = HashMap::new();
        edges.insert((node(1), node(2)), stats(1_000_000));
        for d in 10..30u8 {
            edges.insert((node(d), node(d + 50)), stats(100));
        }
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing_and_ends_at_zero() {
        let c = byte_ccdf(&skewed());
        for w in c.windows(2) {
            assert!(w[1].ccdf <= w[0].ccdf + 1e-12);
            assert!(w[1].frac_nodes > w[0].frac_nodes);
        }
        assert!(c.last().unwrap().ccdf.abs() < 1e-12);
        assert!((c.last().unwrap().frac_nodes - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_graph_drops_fast() {
        let c = byte_ccdf(&skewed());
        // Top ~5% of nodes (the elephant pair) carry almost everything.
        let early = c.iter().find(|p| p.frac_nodes >= 0.05).unwrap();
        assert!(early.ccdf < 0.01, "CCDF after top 5% should be tiny: {}", early.ccdf);
    }

    #[test]
    fn top_share_and_gini_reflect_concentration() {
        let g = skewed();
        assert!(top_share(&g, 0.05) > 0.99);
        assert!(byte_gini(&g) > 0.8, "gini {}", byte_gini(&g));

        // Uniform graph for contrast.
        let mut edges = HashMap::new();
        for d in 0..10u8 {
            edges.insert((node(d * 2), node(d * 2 + 1)), stats(1000));
        }
        let uniform = CommGraph::from_edge_map("ip", 0, 3600, edges);
        assert!(byte_gini(&uniform) < 0.1, "gini {}", byte_gini(&uniform));
        assert!((top_share(&uniform, 0.5) - 0.5).abs() < 0.01);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = CommGraph::from_edge_map("ip", 0, 60, HashMap::new());
        assert!(byte_ccdf(&g).is_empty());
        assert_eq!(top_share(&g, 0.1), 0.0);
        assert_eq!(byte_gini(&g), 0.0);
        assert!(detect_hubs(&g, 3.0).is_empty());
    }

    #[test]
    fn hub_detection_finds_the_star_center() {
        let mut edges = HashMap::new();
        for d in 10..40u8 {
            edges.insert((node(1), node(d)), stats(1000));
        }
        // A little background mesh so the mean degree is not hub-dominated.
        edges.insert((node(50), node(51)), stats(10));
        edges.insert((node(52), node(53)), stats(10));
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        let hubs = detect_hubs(&g, 5.0);
        assert_eq!(hubs.len(), 1);
        assert_eq!(hubs[0].label, "10.0.0.1");
        assert_eq!(hubs[0].degree, 30);
    }

    #[test]
    fn chatty_clique_detection() {
        let mut edges = HashMap::new();
        // A dense 5-clique with heavy traffic.
        for i in 1..6u8 {
            for j in (i + 1)..6u8 {
                edges.insert((node(i), node(j)), stats(1_000_000));
            }
        }
        // Background pairs.
        for d in 100..110u8 {
            edges.insert((node(d), node(d.wrapping_add(100))), stats(100));
        }
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        let cliques = detect_chatty_cliques(&g, 4, 0.9);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].members.len(), 5);
        assert!((cliques[0].density - 1.0).abs() < 1e-12);
    }
}
