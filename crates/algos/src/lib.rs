//! Graph algorithms for communication-graph analysis.
//!
//! This crate implements the algorithmic core of the paper's §2:
//!
//! * [`wgraph`] — a minimal weighted undirected graph the algorithms share,
//!   with adapters from [`commgraph_graph::CommGraph`].
//! * [`jaccard`] — neighbor-set overlap scoring (the paper's Figure 1
//!   similarity), both exact and MinHash-sketched.
//! * [`louvain`] — modularity-maximizing community detection (Blondel et
//!   al.), the clustering stage of the paper's segmentation and the
//!   "conn-weighted / byte-weighted modularity" baselines of Figure 3.
//!   Local-move sweeps run under the shared [`Parallelism`] knob with
//!   bit-for-bit serial-identical results.
//! * [`simrank`] — SimRank and SimRank++ structural similarity, the other
//!   two Figure 3 baselines.
//! * [`roles`] — role inference: similarity scoring + clustering of the
//!   scored clique, producing the µsegment labels of Figure 1.
//! * [`metrics`] — partition quality: Adjusted Rand Index, Normalized Mutual
//!   Information, purity, modularity — how experiments score segmentations
//!   against simulator ground truth.
//! * [`stats`] — traffic-distribution statistics: the byte CCDF of Figure 6,
//!   degree distributions, concentration indices.
//! * [`par`] (re-exported from `linalg`) — the scoped-thread tile scheduler
//!   behind every `_with(…, Parallelism)` kernel variant; [`sym`] — the flat
//!   packed-upper-triangular [`sym::SymMatrix`] all similarity kernels
//!   produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod features;
pub mod jaccard;
pub mod kmeans;
pub mod louvain;
pub mod metrics;
pub mod roles;
pub mod simrank;
pub mod stats;
pub mod wgraph;

pub use error::{Error, Result};
pub use linalg::par::{self, Parallelism};
pub use linalg::sym::{self, SymMatrix};
pub use roles::{infer_roles, infer_roles_with, RoleInference, SegmentationMethod};
pub use wgraph::WeightedGraph;
