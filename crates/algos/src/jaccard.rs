//! Neighbor-set similarity scoring.
//!
//! The paper's Figure 1 segmentation starts from a simple, powerful signal:
//! two resources that talk to the *same set of peers* are likely replicas of
//! one role — even if they never talk to each other (which is exactly why
//! modularity clustering fails at this task, §2.1). [`jaccard_matrix`]
//! computes exact pairwise Jaccard scores over neighbor sets; [`MinHasher`]
//! provides the sketched variant the paper cites (\[35, 45\]) for when the
//! quadratic exact computation is too expensive.

use crate::wgraph::WeightedGraph;
use linalg::par::{self, Parallelism};
use linalg::sym::SymMatrix;

/// Jaccard similarity of two sorted, deduplicated id slices.
pub fn jaccard_of_sets(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Exact pairwise Jaccard matrix over every node's neighbor set.
///
/// O(n² · d̄) — the "super-quadratic complexity" the paper flags as an open
/// issue; [`MinHasher`] is the cheaper alternative.
pub fn jaccard_matrix(g: &WeightedGraph) -> SymMatrix {
    let n = g.node_count();
    let sets: Vec<Vec<u32>> = (0..n as u32).map(|u| g.neighbor_set(u)).collect();
    jaccard_matrix_of_sets(&sets)
}

/// Exact pairwise Jaccard matrix over arbitrary token sets (each set must be
/// sorted and deduplicated), at the default [`Parallelism`]. Role inference
/// uses token sets that qualify each neighbor with the *nature of the
/// conversation*, per §2.1.
pub fn jaccard_matrix_of_sets(sets: &[Vec<u32>]) -> SymMatrix {
    jaccard_matrix_of_sets_with(sets, Parallelism::default())
}

/// Exact pairwise Jaccard matrix with an explicit worker count.
///
/// Rows of the packed upper triangle are distributed over workers; every
/// entry is one independent [`jaccard_of_sets`] call, so the result is
/// bit-for-bit identical at any worker count.
pub fn jaccard_matrix_of_sets_with(sets: &[Vec<u32>], parallelism: Parallelism) -> SymMatrix {
    let mut m = SymMatrix::zeros(sets.len());
    m.fill_upper(
        parallelism,
        |i, j| {
            if i == j {
                1.0
            } else {
                jaccard_of_sets(&sets[i], &sets[j])
            }
        },
    );
    m
}

/// Incremental exact Jaccard matrix: recompute only rows touched by dirty
/// nodes, copying every clean pair from the previous window's matrix.
///
/// `sets` are the current window's token sets (sorted, deduplicated);
/// `dirty[i]` marks nodes whose adjacency changed since the previous window;
/// `prev_index[i]` maps the current node index to its index in `prev` (the
/// previous window's matrix), `None` for nodes that did not exist then.
///
/// **Bit-exactness.** A pair is copied only when both nodes are clean, and a
/// clean node's token set in the current window is the previous window's set
/// transformed by one strictly increasing index remap (both windows sort
/// nodes by id, and a clean node's neighbors all persist with identical
/// stats). Such a remap preserves intersection and union cardinalities, and
/// [`jaccard_of_sets`] is a pure function of those two integers — so the
/// copied entry equals the recomputed one to the last bit, at any worker
/// count.
pub fn jaccard_incremental_with(
    sets: &[Vec<u32>],
    dirty: &[bool],
    prev: &SymMatrix,
    prev_index: &[Option<usize>],
    parallelism: Parallelism,
) -> SymMatrix {
    assert_eq!(sets.len(), dirty.len(), "one dirty flag per node");
    assert_eq!(sets.len(), prev_index.len(), "one prev index slot per node");
    let n = sets.len();
    // Steady-state fast path: the node set did not change, so the packed
    // layouts coincide and the whole previous triangle can be carried over
    // in one buffer copy; only pairs touching a dirty node are recomputed.
    // Entry-for-entry this performs the same copy-or-recompute decision as
    // the general path below (a dirty-dirty pair is merely recomputed from
    // both endpoints, landing the same value twice), so it stays bit-exact.
    if prev.n() == n && prev_index.iter().enumerate().all(|(i, p)| *p == Some(i)) {
        let mut m = prev.clone();
        for i in (0..n).filter(|&i| dirty[i]) {
            for j in 0..n {
                let v = if i == j { 1.0 } else { jaccard_of_sets(&sets[i], &sets[j]) };
                m.set(i, j, v);
            }
        }
        return m;
    }
    let mut m = SymMatrix::zeros(n);
    m.fill_upper_incremental(
        parallelism,
        prev,
        |i, j| {
            if i != j && !dirty[i] && !dirty[j] {
                if let (Some(pi), Some(pj)) = (prev_index[i], prev_index[j]) {
                    return Some((pi, pj));
                }
            }
            None
        },
        |i, j| {
            if i == j {
                1.0
            } else {
                jaccard_of_sets(&sets[i], &sets[j])
            }
        },
    );
    m
}

/// MinHash signatures for approximate Jaccard estimation.
///
/// `k` independent hash permutations; the estimate is the fraction of
/// matching signature slots. Standard error ≈ `1/√k`.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

/// A node's MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(Vec<u64>);

impl MinHasher {
    /// Hasher with `k` permutations derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash");
        let mut seeds = Vec::with_capacity(k);
        let mut s = seed | 1;
        for _ in 0..k {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seeds.push(s);
        }
        MinHasher { seeds }
    }

    /// Signature of a set of ids.
    pub fn signature(&self, set: &[u32]) -> Signature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for &item in set {
            for (slot, &seed) in self.seeds.iter().enumerate() {
                let h = mix(item as u64 ^ seed);
                if h < sig[slot] {
                    sig[slot] = h;
                }
            }
        }
        Signature(sig)
    }

    /// Estimated Jaccard similarity from two signatures.
    pub fn estimate(&self, a: &Signature, b: &Signature) -> f64 {
        let matches = a.0.iter().zip(&b.0).filter(|(x, y)| x == y).count();
        matches as f64 / self.seeds.len() as f64
    }

    /// Approximate pairwise similarity matrix: O(n·d̄·k + n²·k) but with a
    /// much smaller constant than exact Jaccard on high-degree graphs.
    pub fn similarity_matrix(&self, g: &WeightedGraph) -> SymMatrix {
        let sets: Vec<Vec<u32>> = (0..g.node_count() as u32).map(|u| g.neighbor_set(u)).collect();
        self.similarity_matrix_of_sets(&sets)
    }

    /// Approximate pairwise similarity over arbitrary token sets, at the
    /// default [`Parallelism`].
    pub fn similarity_matrix_of_sets(&self, sets: &[Vec<u32>]) -> SymMatrix {
        self.similarity_matrix_of_sets_with(sets, Parallelism::default())
    }

    /// Approximate pairwise similarity with an explicit worker count:
    /// signatures are sketched in parallel (one per set), then the packed
    /// estimate matrix is filled by row tiles. Deterministic at any worker
    /// count.
    pub fn similarity_matrix_of_sets_with(
        &self,
        sets: &[Vec<u32>],
        parallelism: Parallelism,
    ) -> SymMatrix {
        let sigs: Vec<Signature> = par::par_map(parallelism, sets, |s| self.signature(s));
        let mut m = SymMatrix::zeros(sets.len());
        m.fill_upper(
            parallelism,
            |i, j| {
                if i == j {
                    1.0
                } else {
                    self.estimate(&sigs[i], &sigs[j])
                }
            },
        );
        m
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index pairs are clearest for symmetry checks
mod tests {
    use super::*;

    #[test]
    fn set_jaccard_basics() {
        assert_eq!(jaccard_of_sets(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_of_sets(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard_of_sets(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard_of_sets(&[], &[]), 0.0);
        assert_eq!(jaccard_of_sets(&[1], &[]), 0.0);
    }

    /// Two "frontends" (0,1) both talk to backends 2,3,4; they never talk to
    /// each other. Jaccard sees them as near-identical.
    fn replica_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            5,
            &[(0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0), (1, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0)],
        )
    }

    #[test]
    fn replicas_score_high_without_direct_edge() {
        let m = jaccard_matrix(&replica_graph());
        assert_eq!(m[(0, 1)], 1.0, "identical neighbor sets");
        assert!(m[(0, 2)] < 0.5, "frontend vs backend dissimilar: {}", m[(0, 2)]);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = jaccard_matrix(&replica_graph());
        for i in 0..5 {
            assert_eq!(m[(i, i)], 1.0);
            for j in 0..5 {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    #[test]
    fn minhash_estimates_match_exact_within_tolerance() {
        let g = replica_graph();
        let exact = jaccard_matrix(&g);
        let mh = MinHasher::new(256, 42);
        let approx = mh.similarity_matrix(&g);
        for i in 0..5 {
            for j in 0..5 {
                if i == j {
                    continue;
                }
                assert!(
                    (exact[(i, j)] - approx[(i, j)]).abs() < 0.15,
                    "({i},{j}): exact {} vs minhash {}",
                    exact[(i, j)],
                    approx[(i, j)]
                );
            }
        }
    }

    #[test]
    fn parallel_matrices_bitwise_match_serial() {
        let sets: Vec<Vec<u32>> =
            (0..40u32).map(|i| (0..(i % 7)).map(|k| (i + k * 3) % 25).collect()).collect();
        let sets: Vec<Vec<u32>> = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let serial = jaccard_matrix_of_sets_with(&sets, Parallelism::serial());
        let mh = MinHasher::new(64, 5);
        let mh_serial = mh.similarity_matrix_of_sets_with(&sets, Parallelism::serial());
        for workers in [2, 3, 8] {
            let p = Parallelism::new(workers);
            assert_eq!(jaccard_matrix_of_sets_with(&sets, p), serial, "{workers} workers");
            assert_eq!(mh.similarity_matrix_of_sets_with(&sets, p), mh_serial);
        }
    }

    #[test]
    fn incremental_jaccard_matches_full_recompute() {
        // "Previous window": 6 nodes with assorted sets.
        let prev_sets: Vec<Vec<u32>> =
            vec![vec![1, 2, 3], vec![2, 3, 4], vec![1, 5], vec![2, 3, 4], vec![7, 8], vec![1, 2]];
        let prev = jaccard_matrix_of_sets(&prev_sets);
        // "Current window": node at prev index 2 vanished, a new node
        // appended, node at prev index 4 changed its set. The clean nodes'
        // sets are the previous ones under a consistent remap (identity here).
        let sets: Vec<Vec<u32>> = vec![
            vec![1, 2, 3],    // prev 0, clean
            vec![2, 3, 4],    // prev 1, clean
            vec![2, 3, 4],    // prev 3, clean
            vec![7, 8, 9],    // prev 4, dirty (grew)
            vec![1, 2],       // prev 5, clean
            vec![42, 43, 44], // new node, dirty
        ];
        let dirty = vec![false, false, false, true, false, true];
        let prev_index = vec![Some(0), Some(1), Some(3), Some(4), Some(5), None];
        let full = jaccard_matrix_of_sets(&sets);
        for workers in [1, 2, 8] {
            let inc = jaccard_incremental_with(
                &sets,
                &dirty,
                &prev,
                &prev_index,
                Parallelism::new(workers),
            );
            assert_eq!(inc, full, "{workers} workers");
        }
    }

    #[test]
    fn minhash_identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 7);
        let s1 = mh.signature(&[10, 20, 30]);
        let s2 = mh.signature(&[10, 20, 30]);
        assert_eq!(mh.estimate(&s1, &s2), 1.0);
    }

    #[test]
    fn minhash_disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(256, 7);
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (1000..1050).collect();
        let e = mh.estimate(&mh.signature(&a), &mh.signature(&b));
        assert!(e < 0.05, "disjoint estimate {e}");
    }

    #[test]
    fn minhash_deterministic_per_seed() {
        let a = MinHasher::new(32, 9).signature(&[1, 2, 3]);
        let b = MinHasher::new(32, 9).signature(&[1, 2, 3]);
        assert_eq!(a, b);
        let c = MinHasher::new(32, 10).signature(&[1, 2, 3]);
        assert_ne!(a, c, "different seed, different permutations");
    }
}
