//! Partition-quality metrics.
//!
//! The paper could only judge its segmentations through developer interviews
//! ("the labels are a good start but there are key mistakes"). Our simulator
//! knows ground-truth roles, so segmentations are scored quantitatively:
//! Adjusted Rand Index and Normalized Mutual Information against the truth,
//! purity for interpretability.

use crate::error::{Error, Result};
use std::collections::BTreeMap;

// The tables are BTreeMaps, not HashMaps, on purpose: ARI/NMI accumulate
// f64 sums over the cells, and float addition is not associative, so the
// iteration order changes the low bits of the score. BTreeMap iterates in
// key order and keeps the results bit-identical across processes
// (`nondet-iter` contract; see crates/lintcheck).

/// Contingency table between two labelings.
fn contingency(a: &[usize], b: &[usize]) -> Result<BTreeMap<(usize, usize), u64>> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch { left: a.len(), right: b.len() });
    }
    let mut t = BTreeMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *t.entry((x, y)).or_insert(0u64) += 1;
    }
    Ok(t)
}

fn marginals(t: &BTreeMap<(usize, usize), u64>) -> (BTreeMap<usize, u64>, BTreeMap<usize, u64>) {
    let mut ra = BTreeMap::new();
    let mut rb = BTreeMap::new();
    for (&(x, y), &c) in t {
        *ra.entry(x).or_insert(0) += c;
        *rb.entry(y).or_insert(0) += c;
    }
    (ra, rb)
}

fn choose2(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index between two labelings: 1 for identical partitions,
/// ~0 for independent ones, negative for adversarial disagreement.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64> {
    let t = contingency(a, b)?;
    let n = a.len() as u64;
    if n < 2 {
        return Ok(1.0);
    }
    let (ra, rb) = marginals(&t);
    let sum_cells: f64 = t.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ra.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = rb.values().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions trivial (all-singletons or all-one).
        return Ok(if (sum_cells - expected).abs() < 1e-12 { 1.0 } else { 0.0 });
    }
    Ok((sum_cells - expected) / (max_index - expected))
}

/// Normalized Mutual Information with arithmetic-mean normalization:
/// `2 I(A;B) / (H(A) + H(B))`, in `[0, 1]`.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> Result<f64> {
    let t = contingency(a, b)?;
    let n = a.len() as f64;
    if a.is_empty() {
        return Ok(1.0);
    }
    let (ra, rb) = marginals(&t);
    let h = |m: &BTreeMap<usize, u64>| -> f64 {
        m.values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&ra), h(&rb));
    if ha == 0.0 && hb == 0.0 {
        return Ok(1.0); // both partitions trivial and identical in structure
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &t {
        let pxy = c as f64 / n;
        let px = ra[&x] as f64 / n;
        let py = rb[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    Ok((2.0 * mi / (ha + hb)).clamp(0.0, 1.0))
}

/// Purity of `predicted` against `truth`: the fraction of nodes whose
/// predicted cluster's majority true label matches their own. High purity is
/// cheap to get with many tiny clusters; read it next to ARI/NMI.
pub fn purity(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    if predicted.len() != truth.len() {
        return Err(Error::LengthMismatch { left: predicted.len(), right: truth.len() });
    }
    if predicted.is_empty() {
        return Ok(1.0);
    }
    let t = contingency(predicted, truth)?;
    let mut best: BTreeMap<usize, u64> = BTreeMap::new();
    for (&(p, _), &c) in &t {
        let e = best.entry(p).or_insert(0);
        *e = (*e).max(c);
    }
    Ok(best.values().sum::<u64>() as f64 / predicted.len() as f64)
}

/// Number of distinct labels in a labeling.
pub fn cluster_count(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a).unwrap(), 1.0);
        assert_eq!(normalized_mutual_information(&a, &a).unwrap(), 1.0);
        assert_eq!(purity(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn relabeled_partitions_still_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 9, 9, 1, 1];
        let b_compact: Vec<usize> = b;
        assert_eq!(adjusted_rand_index(&a, &b_compact).unwrap(), 1.0);
        assert_eq!(normalized_mutual_information(&a, &b_compact).unwrap(), 1.0);
    }

    #[test]
    fn orthogonal_partitions_score_low() {
        // a splits in half one way, b the perpendicular way.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 0.2, "near-independent partitions: ARI {ari}");
    }

    #[test]
    fn partial_agreement_is_between() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 1]; // one node misplaced
        let ari = adjusted_rand_index(&pred, &truth).unwrap();
        assert!(ari > 0.2 && ari < 1.0, "ARI {ari}");
        let nmi = normalized_mutual_information(&pred, &truth).unwrap();
        assert!(nmi > 0.2 && nmi < 1.0, "NMI {nmi}");
    }

    #[test]
    fn purity_rewards_fragmentation_ari_does_not() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let singletons: Vec<usize> = (0..6).collect();
        assert_eq!(purity(&singletons, &truth).unwrap(), 1.0, "purity is gameable");
        let ari = adjusted_rand_index(&singletons, &truth).unwrap();
        assert!(ari <= 0.0 + 1e-9, "ARI punishes fragmentation: {ari}");
    }

    #[test]
    fn length_mismatch_is_an_error() {
        assert!(adjusted_rand_index(&[0, 1], &[0]).is_err());
        assert!(normalized_mutual_information(&[0], &[0, 1]).is_err());
        assert!(purity(&[0], &[]).is_err());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]).unwrap(), 1.0);
        let all_same = vec![0; 5];
        assert_eq!(adjusted_rand_index(&all_same, &all_same).unwrap(), 1.0);
        assert_eq!(normalized_mutual_information(&all_same, &all_same).unwrap(), 1.0);
    }

    #[test]
    fn cluster_count_counts_distinct() {
        assert_eq!(cluster_count(&[0, 0, 2, 2, 5]), 3);
        assert_eq!(cluster_count(&[]), 0);
    }

    /// NMI sums `pxy * ln(pxy / (px * py))` over contingency cells; float
    /// addition is order-sensitive in the low bits, so the sum must follow
    /// sorted key order. Recompute it here with an explicitly sorted
    /// reference and demand bitwise equality — with a HashMap table this
    /// fails intermittently across processes.
    #[test]
    fn nmi_is_bit_identical_to_sorted_order_reference() {
        // 3 × 4 clusters, uneven sizes, enough cells that a different
        // summation order perturbs the low bits.
        let a: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let b: Vec<usize> = (0..60).map(|i| (i * 7 + i / 9) % 4).collect();

        let got = normalized_mutual_information(&a, &b).unwrap();

        let n = a.len() as f64;
        let mut cells: Vec<((usize, usize), u64)> = Vec::new();
        for (&x, &y) in a.iter().zip(&b) {
            match cells.iter_mut().find(|(k, _)| *k == (x, y)) {
                Some((_, c)) => *c += 1,
                None => cells.push(((x, y), 1)),
            }
        }
        cells.sort();
        let mut ra: Vec<(usize, u64)> = Vec::new();
        let mut rb: Vec<(usize, u64)> = Vec::new();
        for &((x, y), c) in &cells {
            match ra.iter_mut().find(|(k, _)| *k == x) {
                Some((_, v)) => *v += c,
                None => ra.push((x, c)),
            }
            match rb.iter_mut().find(|(k, _)| *k == y) {
                Some((_, v)) => *v += c,
                None => rb.push((y, c)),
            }
        }
        ra.sort();
        rb.sort();
        let h = |m: &[(usize, u64)]| -> f64 {
            m.iter()
                .map(|&(_, c)| {
                    let p = c as f64 / n;
                    -p * p.ln()
                })
                .sum()
        };
        let (ha, hb) = (h(&ra), h(&rb));
        let mut mi = 0.0;
        for &((x, y), c) in &cells {
            let pxy = c as f64 / n;
            let px = ra.iter().find(|(k, _)| *k == x).unwrap().1 as f64 / n;
            let py = rb.iter().find(|(k, _)| *k == y).unwrap().1 as f64 / n;
            mi += pxy * (pxy / (px * py)).ln();
        }
        let expected = (2.0 * mi / (ha + hb)).clamp(0.0, 1.0);

        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "NMI must sum cells in sorted key order (got {got}, expected {expected})"
        );
        // And the ARI path shares the same tables: pin it too.
        let ari1 = adjusted_rand_index(&a, &b).unwrap();
        let ari2 = adjusted_rand_index(&a, &b).unwrap();
        assert_eq!(ari1.to_bits(), ari2.to_bits());
    }
}
