//! Declarative alerting over the [`crate::tsdb`] store.
//!
//! Rules are evaluated once per tick against the time-series store —
//! threshold ("roll lag p-max above 600 s"), absence ("no scrape for two
//! ticks"), and SRE-style **dual-window burn-rate** rules over error-budget
//! SLOs ("late records are consuming the freshness budget faster than 1×
//! over both the fast and the slow window").
//!
//! Every rule runs a four-state machine:
//!
//! ```text
//! inactive ──cond──▶ pending ──held `for_ticks`──▶ firing
//!    ▲                  │cond clears                  │cond clears
//!    └──hold elapses── resolved ◀─────────────────────┘
//! ```
//!
//! Two invariants the property tests pin: **no path reaches `firing`
//! without passing `pending`** (even `for_ticks == 0` emits the
//! `pending` transition on the same tick), and a `resolved` alert
//! **re-fires through `pending` again**, never directly.
//!
//! Transitions mirror to the structured event log (`alert` target) and to
//! `commgraph_alert_transitions_total{rule,state}`; the current firing
//! count is `commgraph_alert_firing_entries`; evaluation cost is
//! `commgraph_alert_eval_seconds`.
//!
//! Determinism: evaluation consumes only store contents and the logical
//! tick. Rules over deterministic series (record counts, watermarks, roll
//! lag) therefore produce bit-identical transition sequences across runs —
//! the contract `tests/alerting.rs` asserts over real HTTP.

use crate::tsdb::{Query, SampleField, Tsdb};
use crate::{Counter, Gauge, Histogram, Level, Obs};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Transitions retained for `/alerts` history, oldest dropped first.
const HISTORY_CAP: usize = 1024;

/// Lifecycle state of one alert rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false, nothing pending.
    Inactive,
    /// Condition true, but not yet held for the rule's `for_ticks`.
    Pending,
    /// Condition held long enough; the alert is active.
    Firing,
    /// Condition cleared after firing; decays to inactive after a hold.
    Resolved,
}

impl AlertState {
    /// Stable lowercase name (JSON output and metric label values).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// Selects the single series a rule reads: family name, label subset, and
/// sample field.
#[derive(Debug, Clone)]
pub struct Selector {
    /// Family name.
    pub name: String,
    /// Label pairs the series must carry (subset match).
    pub labels: Vec<(String, String)>,
    /// Which scalar of the metric to read.
    pub field: SampleField,
}

impl Selector {
    /// Select the `value` field of `name` (counters and gauges).
    pub fn value(name: &str) -> Selector {
        Selector { name: name.to_string(), labels: Vec::new(), field: SampleField::Value }
    }

    /// Select `field` of `name` (histogram scalars).
    pub fn field(name: &str, field: SampleField) -> Selector {
        Selector { name: name.to_string(), labels: Vec::new(), field }
    }

    /// Require label `key` = `value` (builder style).
    pub fn with_label(mut self, key: &str, value: &str) -> Selector {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    fn query(&self) -> Query {
        Query {
            name: Some(self.name.clone()),
            matchers: self.labels.clone(),
            field: Some(self.field),
            ..Query::default()
        }
    }
}

/// Comparison operator of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl Op {
    fn eval(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
        }
    }
}

/// The denominator of an error-budget SLO.
#[derive(Debug, Clone)]
pub enum SloTotal {
    /// A cumulative series of total events (classic good/bad ratio SLO).
    Series(Selector),
    /// A fixed expected event rate per tick, for signals with no natural
    /// total counter (e.g. "≈1000 records arrive per window").
    PerTick(f64),
}

/// An error-budget SLO: `bad` events must stay under `1 - objective` of the
/// total, measured over sliding tick windows.
#[derive(Debug, Clone)]
pub struct Slo {
    /// Short SLO name (JSON output).
    pub name: String,
    /// Target good fraction, e.g. `0.999` (error budget `0.001`).
    pub objective: f64,
    /// Cumulative bad-event series.
    pub bad: Selector,
    /// Total-event denominator.
    pub total: SloTotal,
}

impl Slo {
    /// Burn rate over the `window` ticks ending at `tick`: the fraction of
    /// the error budget consumed per unit of budget — 1.0 means exactly
    /// on-budget, above 1.0 the budget depletes early. Missing data reads
    /// as zero burn.
    pub fn burn(&self, store: &Tsdb, window: u64, tick: u64) -> f64 {
        let bad = store.window_delta(&self.bad.query(), window, tick).unwrap_or(0.0).max(0.0);
        let total = match &self.total {
            SloTotal::Series(sel) => store.window_delta(&sel.query(), window, tick).unwrap_or(0.0),
            SloTotal::PerTick(rate) => rate * window.min(tick.max(1)) as f64,
        };
        let budget = (1.0 - self.objective).max(f64::MIN_POSITIVE);
        if total <= 0.0 {
            return 0.0;
        }
        (bad / total) / budget
    }
}

/// The condition of one alert rule.
#[derive(Debug, Clone)]
pub enum Condition {
    /// The latest sample of the selected series compares true against
    /// `value`. No sample at the current tick horizon reads as false.
    Threshold {
        /// Series to read.
        selector: Selector,
        /// Comparison operator.
        op: Op,
        /// Right-hand side.
        value: f64,
    },
    /// No sample has landed on the selected series within the last
    /// `stale_ticks` ticks (missing series counts as absent).
    Absence {
        /// Series to watch.
        selector: Selector,
        /// Ticks of silence tolerated before the condition turns true.
        stale_ticks: u64,
    },
    /// SRE dual-window burn rate: true when the SLO's burn exceeds
    /// `factor` over **both** the fast and the slow window — fast for
    /// detection speed, slow to reject blips.
    BurnRate {
        /// The error-budget SLO.
        slo: Slo,
        /// Fast window length, in ticks.
        fast_ticks: u64,
        /// Slow window length, in ticks.
        slow_ticks: u64,
        /// Burn multiple both windows must exceed.
        factor: f64,
    },
    /// A [`crate::query`] expression evaluated at each tick: true when the
    /// result is a non-empty vector or a non-zero scalar. This is the
    /// unified form the other three variants can be lowered to — see
    /// [`query_pack`] for the expression-based twin of [`default_pack`].
    Query {
        /// The source expression (kept for display).
        src: String,
        /// The parsed expression.
        expr: crate::query::Expr,
    },
}

/// One declarative alert rule.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Unique rule name (label value on transition metrics).
    pub name: String,
    /// The condition evaluated each tick.
    pub condition: Condition,
    /// Consecutive-tick hold in `pending` before firing. `0` fires on the
    /// same tick the condition turns true — still via `pending`.
    pub for_ticks: u64,
    /// Severity tag carried into events and JSON (`page`, `ticket`, ...).
    pub severity: String,
}

impl AlertRule {
    /// A threshold rule with severity `page`.
    pub fn threshold(name: &str, selector: Selector, op: Op, value: f64, for_ticks: u64) -> Self {
        AlertRule {
            name: name.to_string(),
            condition: Condition::Threshold { selector, op, value },
            for_ticks,
            severity: "page".to_string(),
        }
    }

    /// An absence rule with severity `ticket`.
    pub fn absence(name: &str, selector: Selector, stale_ticks: u64) -> Self {
        AlertRule {
            name: name.to_string(),
            condition: Condition::Absence { selector, stale_ticks },
            for_ticks: 0,
            severity: "ticket".to_string(),
        }
    }

    /// A dual-window burn-rate rule with severity `page`.
    pub fn burn_rate(name: &str, slo: Slo, fast_ticks: u64, slow_ticks: u64, factor: f64) -> Self {
        AlertRule {
            name: name.to_string(),
            condition: Condition::BurnRate { slo, fast_ticks, slow_ticks, factor },
            for_ticks: 0,
            severity: "page".to_string(),
        }
    }

    /// A rule on a query-engine expression, with severity `page`.
    pub fn query(name: &str, src: &str) -> Result<Self, crate::query::ParseError> {
        Ok(AlertRule {
            name: name.to_string(),
            condition: Condition::Query { src: src.to_string(), expr: crate::query::parse(src)? },
            for_ticks: 0,
            severity: "page".to_string(),
        })
    }

    /// Override the pending hold (builder style).
    pub fn with_for_ticks(mut self, for_ticks: u64) -> Self {
        self.for_ticks = for_ticks;
        self
    }

    /// Override the severity tag (builder style).
    pub fn with_severity(mut self, severity: &str) -> Self {
        self.severity = severity.to_string();
        self
    }
}

/// One state-machine transition, as mirrored to the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Tick the transition happened on.
    pub tick: u64,
    /// Rule name.
    pub rule: String,
    /// State left.
    pub from: AlertState,
    /// State entered.
    pub to: AlertState,
    /// The observed value that drove the evaluation, when the condition
    /// reads one (threshold: latest sample; burn rate: fast-window burn).
    pub value: Option<f64>,
}

/// Point-in-time status of one rule (what `/alerts` serves).
#[derive(Debug, Clone)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// Severity tag.
    pub severity: String,
    /// Current state.
    pub state: AlertState,
    /// Tick the current state was entered (0 before any transition).
    pub since_tick: u64,
    /// Last observed condition value, if the condition reads one.
    pub value: Option<f64>,
}

/// Point-in-time burn-rate picture of one SLO-backed rule (what `/slo`
/// serves), recomputed at each evaluation.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// Rule name the SLO backs.
    pub rule: String,
    /// SLO name.
    pub slo: String,
    /// Target good fraction.
    pub objective: f64,
    /// Burn over the fast window at the last evaluation.
    pub burn_fast: f64,
    /// Burn over the slow window at the last evaluation.
    pub burn_slow: f64,
    /// Burn multiple the rule alerts at.
    pub factor: f64,
    /// Whether the backing rule is currently firing.
    pub firing: bool,
}

#[derive(Debug)]
struct RuleState {
    state: AlertState,
    since_tick: u64,
    pending_since: u64,
    value: Option<f64>,
}

#[derive(Debug)]
struct EngineInner {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    history: VecDeque<Transition>,
    slo_status: Vec<SloStatus>,
    last_tick: u64,
}

/// Evaluates a rule set against a [`Tsdb`] once per tick. Interior-mutable:
/// share it as `Arc<AlertEngine>` between the tick driver and the
/// introspection server.
#[derive(Debug)]
pub struct AlertEngine {
    inner: Mutex<EngineInner>,
    obs: Obs,
    firing_gauge: Gauge,
    eval_seconds: Histogram,
    /// Ticks a resolved alert lingers before decaying to inactive.
    resolved_hold: u64,
}

impl AlertEngine {
    /// An empty engine reporting through `obs` (transition counters, firing
    /// gauge, eval histogram, event log).
    pub fn new(obs: Obs) -> AlertEngine {
        let firing_gauge = obs.gauge(
            "commgraph_alert_firing_entries",
            "Alert rules currently in the firing state.",
            &[],
        );
        let eval_seconds = obs.histogram(
            "commgraph_alert_eval_seconds",
            "Wall-clock seconds per alert-rule evaluation pass.",
            &[],
        );
        AlertEngine {
            inner: Mutex::new(EngineInner {
                rules: Vec::new(),
                states: Vec::new(),
                history: VecDeque::new(),
                slo_status: Vec::new(),
                last_tick: 0,
            }),
            obs,
            firing_gauge,
            eval_seconds,
            resolved_hold: 1,
        }
    }

    /// Install one rule. Its transition counters are registered eagerly (at
    /// zero) so one scrape shows the family even before any transition.
    pub fn add_rule(&self, rule: AlertRule) {
        for state in
            [AlertState::Inactive, AlertState::Pending, AlertState::Firing, AlertState::Resolved]
        {
            self.transition_counter(&rule.name, state);
        }
        let mut inner = self.lock();
        inner.rules.push(rule);
        inner.states.push(RuleState {
            state: AlertState::Inactive,
            since_tick: 0,
            pending_since: 0,
            value: None,
        });
    }

    /// Install a whole rule pack.
    pub fn add_rules(&self, rules: impl IntoIterator<Item = AlertRule>) {
        for rule in rules {
            self.add_rule(rule);
        }
    }

    /// Installed rule count.
    pub fn rule_count(&self) -> usize {
        self.lock().rules.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn transition_counter(&self, rule: &str, state: AlertState) -> Counter {
        self.obs.counter(
            "commgraph_alert_transitions_total",
            "Alert state-machine transitions, by rule and entered state.",
            &[("rule", rule), ("state", state.as_str())],
        )
    }

    /// Evaluate every rule at `tick` against `store`, returning the
    /// transitions this pass produced (in rule-installation order). Each
    /// transition is mirrored to the event log and counted on
    /// `commgraph_alert_transitions_total`.
    pub fn evaluate(&self, tick: u64, store: &Tsdb) -> Vec<Transition> {
        // lint:allow(clock-hygiene) self-timing of the evaluate pass; rule state depends only on the injected tick
        let t0 = std::time::Instant::now();
        let mut transitions = Vec::new();
        let mut guard = self.lock();
        let inner = &mut *guard;
        inner.last_tick = tick;
        inner.slo_status.clear();
        for (rule, rs) in inner.rules.iter().zip(inner.states.iter_mut()) {
            let (cond, value) = eval_condition(&rule.condition, store, tick);
            rs.value = value;
            let mut go = |rs: &mut RuleState, to: AlertState| {
                let from = rs.state;
                rs.state = to;
                rs.since_tick = tick;
                transitions.push(Transition { tick, rule: rule.name.clone(), from, to, value });
            };
            if cond {
                match rs.state {
                    AlertState::Inactive | AlertState::Resolved => {
                        go(rs, AlertState::Pending);
                        rs.pending_since = tick;
                        if rule.for_ticks == 0 {
                            go(rs, AlertState::Firing);
                        }
                    }
                    AlertState::Pending => {
                        if tick.saturating_sub(rs.pending_since) >= rule.for_ticks {
                            go(rs, AlertState::Firing);
                        }
                    }
                    AlertState::Firing => {}
                }
            } else {
                match rs.state {
                    AlertState::Pending => go(rs, AlertState::Inactive),
                    AlertState::Firing => go(rs, AlertState::Resolved),
                    AlertState::Resolved => {
                        if tick.saturating_sub(rs.since_tick) >= self.resolved_hold {
                            go(rs, AlertState::Inactive);
                        }
                    }
                    AlertState::Inactive => {}
                }
            }
            if let Condition::BurnRate { slo, fast_ticks, slow_ticks, factor } = &rule.condition {
                inner.slo_status.push(SloStatus {
                    rule: rule.name.clone(),
                    slo: slo.name.clone(),
                    objective: slo.objective,
                    burn_fast: slo.burn(store, *fast_ticks, tick),
                    burn_slow: slo.burn(store, *slow_ticks, tick),
                    factor: *factor,
                    firing: rs.state == AlertState::Firing,
                });
            }
        }
        let firing = inner.states.iter().filter(|s| s.state == AlertState::Firing).count();
        for t in &transitions {
            if inner.history.len() >= HISTORY_CAP {
                inner.history.pop_front();
            }
            inner.history.push_back(t.clone());
        }
        drop(guard);
        for t in &transitions {
            self.transition_counter(&t.rule, t.to).inc();
            let level = if t.to == AlertState::Firing { Level::Warn } else { Level::Info };
            self.obs.event(
                level,
                "alert",
                &format!("alert {} {} -> {}", t.rule, t.from.as_str(), t.to.as_str()),
                &[
                    ("tick", t.tick.to_string()),
                    ("value", t.value.map_or_else(|| "none".to_string(), |v| v.to_string())),
                ],
            );
        }
        self.firing_gauge.set(firing as f64);
        self.eval_seconds.record(t0.elapsed().as_secs_f64());
        transitions
    }

    /// Current status of every rule, in installation order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        let inner = self.lock();
        inner
            .rules
            .iter()
            .zip(inner.states.iter())
            .map(|(rule, rs)| AlertStatus {
                rule: rule.name.clone(),
                severity: rule.severity.clone(),
                state: rs.state,
                since_tick: rs.since_tick,
                value: rs.value,
            })
            .collect()
    }

    /// Rules currently firing.
    pub fn firing(&self) -> Vec<AlertStatus> {
        self.statuses().into_iter().filter(|s| s.state == AlertState::Firing).collect()
    }

    /// The retained transition history, oldest first.
    pub fn history(&self) -> Vec<Transition> {
        self.lock().history.iter().cloned().collect()
    }

    /// The `/alerts` document: current statuses plus the transition
    /// history, keyed entirely by logical ticks (no wall-clock timestamps),
    /// so deterministic runs serve bit-identical bytes.
    pub fn alerts_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"tick\":");
        out.push_str(&inner.last_tick.to_string());
        out.push_str(",\"alerts\":[");
        for (i, (rule, rs)) in inner.rules.iter().zip(inner.states.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            out.push_str(&crate::export::json_str(&rule.name));
            out.push_str(",\"severity\":");
            out.push_str(&crate::export::json_str(&rule.severity));
            out.push_str(",\"state\":\"");
            out.push_str(rs.state.as_str());
            out.push_str("\",\"since_tick\":");
            out.push_str(&rs.since_tick.to_string());
            out.push_str(",\"value\":");
            out.push_str(&rs.value.map_or_else(|| "null".to_string(), crate::export::json_f64));
            out.push('}');
        }
        out.push_str("],\"transitions\":[");
        for (i, t) in inner.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tick\":");
            out.push_str(&t.tick.to_string());
            out.push_str(",\"rule\":");
            out.push_str(&crate::export::json_str(&t.rule));
            out.push_str(",\"from\":\"");
            out.push_str(t.from.as_str());
            out.push_str("\",\"to\":\"");
            out.push_str(t.to.as_str());
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// The `/slo` document: the burn-rate picture captured at the last
    /// evaluation (tick-keyed, deterministic for deterministic series).
    pub fn slo_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"tick\":");
        out.push_str(&inner.last_tick.to_string());
        out.push_str(",\"slos\":[");
        for (i, s) in inner.slo_status.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            out.push_str(&crate::export::json_str(&s.rule));
            out.push_str(",\"slo\":");
            out.push_str(&crate::export::json_str(&s.slo));
            out.push_str(",\"objective\":");
            out.push_str(&crate::export::json_f64(s.objective));
            out.push_str(",\"burn_fast\":");
            out.push_str(&crate::export::json_f64(s.burn_fast));
            out.push_str(",\"burn_slow\":");
            out.push_str(&crate::export::json_f64(s.burn_slow));
            out.push_str(",\"factor\":");
            out.push_str(&crate::export::json_f64(s.factor));
            out.push_str(",\"firing\":");
            out.push_str(if s.firing { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Evaluate one condition; returns (truth, observed value).
fn eval_condition(cond: &Condition, store: &Tsdb, tick: u64) -> (bool, Option<f64>) {
    match cond {
        Condition::Threshold { selector, op, value } => {
            match store.latest_at(&selector.query(), tick) {
                Some((_, v)) => (op.eval(v, *value), Some(v)),
                None => (false, None),
            }
        }
        Condition::Absence { selector, stale_ticks } => {
            match store.latest_at(&selector.query(), tick) {
                Some((t, v)) => (tick.saturating_sub(t) > *stale_ticks, Some(v)),
                None => (true, None),
            }
        }
        Condition::BurnRate { slo, fast_ticks, slow_ticks, factor } => {
            let fast = slo.burn(store, *fast_ticks, tick);
            let slow = slo.burn(store, *slow_ticks, tick);
            (fast > *factor && slow > *factor, Some(fast))
        }
        Condition::Query { expr, .. } => match crate::query::eval(store, expr, tick) {
            Ok(v) => (v.is_truthy(), v.first_value()),
            Err(_) => (false, None),
        },
    }
}

/// The default streaming-health alert pack, sized by the expected record
/// rate per tick (one tick = one rolled window under the deterministic-tick
/// contract):
///
/// * `window_roll_lag_high` — pipeline roll lag max above 600 s for 2 ticks.
/// * `late_records_burn` — dual-window burn over a 99 % freshness SLO
///   (late records vs `expected_records_per_tick`).
/// * `dedup_drops_burn` — dual-window burn over the engine's dedup-drop
///   budget (drops vs offered records; objective 0.2 tolerates the routine
///   multi-vantage duplication).
/// * `incremental_savings_stalled` — no warm-window savings sample for 4
///   ticks while the pipeline runs incrementally.
/// * `tsdb_scrape_stalled` — the scraper itself stopped appending.
pub fn default_pack(expected_records_per_tick: f64) -> Vec<AlertRule> {
    vec![
        AlertRule::threshold(
            "window_roll_lag_high",
            Selector::field("commgraph_window_roll_lag_seconds", SampleField::Max)
                .with_label("source", "pipeline"),
            Op::Gt,
            600.0,
            2,
        ),
        AlertRule::burn_rate(
            "late_records_burn",
            Slo {
                name: "freshness".to_string(),
                objective: 0.99,
                bad: Selector::value("commgraph_pipeline_late_records_total"),
                total: SloTotal::PerTick(expected_records_per_tick.max(1.0)),
            },
            2,
            8,
            1.0,
        ),
        AlertRule::burn_rate(
            "dedup_drops_burn",
            Slo {
                name: "dedup_budget".to_string(),
                objective: 0.2,
                bad: Selector::value("commgraph_engine_dropped_records_total"),
                total: SloTotal::Series(Selector::value("commgraph_engine_records_in_total")),
            },
            2,
            8,
            1.0,
        ),
        AlertRule::absence(
            "incremental_savings_stalled",
            Selector::field("commgraph_incremental_savings_seconds", SampleField::Count),
            4,
        ),
        AlertRule::absence(
            "tsdb_scrape_stalled",
            Selector::value("commgraph_tsdb_samples_total"),
            2,
        ),
    ]
}

/// A dual-window burn expression replicating [`Slo::burn`] for a
/// fixed-per-tick denominator: `((max(Δbad, 0) / (rate · min(w, max(tick,
/// 1)))) / budget) > factor`, conjoined over the fast and slow windows.
/// The budget is embedded pre-computed (`1 - objective` in f64) so the
/// arithmetic matches the hard-coded path bit for bit.
fn burn_per_tick_expr(bad: &str, rate: f64, budget: f64, factor: f64, f: u64, s: u64) -> String {
    let win = |w: u64| {
        format!(
            "(clamp_min(increase({bad}[{w}]), 0) / ({rate} * min({w}, max(tick(), 1))) \
             / {budget} > {factor})"
        )
    };
    format!("{} and {}", win(f), win(s))
}

/// A dual-window burn expression replicating [`Slo::burn`] for a series
/// denominator. The extra `increase(total) > 0` conjunct reproduces the
/// hard-coded "no traffic reads as zero burn" guard, which a bare division
/// would turn into ±∞.
fn burn_series_expr(bad: &str, total: &str, budget: f64, factor: f64, f: u64, s: u64) -> String {
    let win = |w: u64| {
        format!(
            "(clamp_min(increase({bad}[{w}]), 0) / increase({total}[{w}]) / {budget} > {factor} \
             and increase({total}[{w}]) > 0)"
        )
    };
    format!("{} and {}", win(f), win(s))
}

/// The expression-based twin of [`default_pack`]: the same five rules, same
/// names, same `for_ticks` and severities, but every condition is a
/// [`Condition::Query`] expression instead of hard-coded Rust. Produces the
/// exact same transition sequences as [`default_pack`] on any store (the
/// `tests/alerting.rs` workload proves this transition-for-transition).
/// Returns `Err` only if a template expression fails to parse, which the
/// unit tests rule out.
pub fn query_pack(
    expected_records_per_tick: f64,
) -> Result<Vec<AlertRule>, crate::query::ParseError> {
    let rate = expected_records_per_tick.max(1.0);
    Ok(vec![
        AlertRule::query(
            "window_roll_lag_high",
            "commgraph_window_roll_lag_seconds{source=\"pipeline\",field=\"max\"} > 600",
        )?
        .with_for_ticks(2),
        AlertRule::query(
            "late_records_burn",
            &burn_per_tick_expr(
                "commgraph_pipeline_late_records_total",
                rate,
                1.0 - 0.99,
                1.0,
                2,
                8,
            ),
        )?,
        AlertRule::query(
            "dedup_drops_burn",
            &burn_series_expr(
                "commgraph_engine_dropped_records_total",
                "commgraph_engine_records_in_total",
                1.0 - 0.2,
                1.0,
                2,
                8,
            ),
        )?,
        AlertRule::query(
            "incremental_savings_stalled",
            "absent_over_time(commgraph_incremental_savings_seconds{field=\"count\"}[4])",
        )?
        .with_severity("ticket"),
        AlertRule::query(
            "tsdb_scrape_stalled",
            "absent_over_time(commgraph_tsdb_samples_total[2])",
        )?
        .with_severity("ticket"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::SeriesKey;
    use crate::Registry;
    use std::sync::Arc;

    fn store_with(points: &[(u64, f64)]) -> Tsdb {
        let db = Tsdb::default();
        for (t, v) in points {
            db.append(SeriesKey::value("sig_total", &[]), *t, *v);
        }
        db
    }

    fn seq(engine: &AlertEngine, db: &Tsdb, ticks: std::ops::RangeInclusive<u64>) -> Vec<String> {
        let mut out = Vec::new();
        for tick in ticks {
            for t in engine.evaluate(tick, db) {
                out.push(format!("{}:{}->{}", t.tick, t.from.as_str(), t.to.as_str()));
            }
        }
        out
    }

    #[test]
    fn threshold_lifecycle_passes_through_every_state() {
        let db = store_with(&[(1, 0.0), (2, 9.0), (3, 9.0), (4, 9.0), (5, 0.0), (6, 0.0)]);
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::threshold("hot", Selector::value("sig_total"), Op::Gt, 5.0, 1));
        let trace = seq(&engine, &db, 1..=7);
        assert_eq!(
            trace,
            vec![
                "2:inactive->pending",
                "3:pending->firing",
                "5:firing->resolved",
                "6:resolved->inactive",
            ],
        );
    }

    #[test]
    fn zero_hold_still_passes_through_pending_on_the_same_tick() {
        let db = store_with(&[(1, 9.0), (2, 0.0)]);
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::threshold(
            "instant",
            Selector::value("sig_total"),
            Op::Gt,
            5.0,
            0,
        ));
        let trace = seq(&engine, &db, 1..=1);
        assert_eq!(trace, vec!["1:inactive->pending", "1:pending->firing"]);
    }

    #[test]
    fn resolved_alerts_refire_through_pending() {
        let db = store_with(&[(1, 9.0), (2, 0.0), (3, 9.0)]);
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::threshold(
            "flappy",
            Selector::value("sig_total"),
            Op::Gt,
            5.0,
            0,
        ));
        let trace = seq(&engine, &db, 1..=3);
        assert_eq!(
            trace,
            vec![
                "1:inactive->pending",
                "1:pending->firing",
                "2:firing->resolved",
                "3:resolved->pending",
                "3:pending->firing",
            ],
        );
    }

    #[test]
    fn pending_clears_without_firing_on_a_blip() {
        let db = store_with(&[(1, 9.0), (2, 0.0)]);
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::threshold("blip", Selector::value("sig_total"), Op::Gt, 5.0, 3));
        let trace = seq(&engine, &db, 1..=2);
        assert_eq!(trace, vec!["1:inactive->pending", "2:pending->inactive"]);
    }

    #[test]
    fn absence_fires_on_missing_and_stale_series() {
        let db = Tsdb::default();
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::absence("gone", Selector::value("sig_total"), 2));
        let t = engine.evaluate(1, &db);
        assert_eq!(t.last().map(|t| t.to), Some(AlertState::Firing), "missing series is absent");

        db.append(SeriesKey::value("sig_total", &[]), 2, 1.0);
        let t = engine.evaluate(2, &db);
        assert_eq!(t.last().map(|t| t.to), Some(AlertState::Resolved), "fresh sample resolves");
        // Ticks 3..=4 are within tolerance; tick 5 is 3 ticks stale.
        assert!(engine.evaluate(4, &db).iter().all(|t| t.to != AlertState::Pending));
        let t = engine.evaluate(5, &db);
        assert!(t.iter().any(|t| t.to == AlertState::Firing), "stale series re-fires: {t:?}");
    }

    #[test]
    fn burn_rate_needs_both_windows_hot() {
        // Bad counter burns 30 of a 100-per-tick budget in ticks 4..6 —
        // hot on the 2-tick window but still cold on the 8-tick window.
        let db = Tsdb::default();
        for (t, v) in [(1u64, 0.0), (2, 0.0), (3, 0.0), (4, 0.0), (5, 30.0), (6, 60.0)] {
            db.append(SeriesKey::value("bad_total", &[]), t, v);
        }
        let slo = Slo {
            name: "budget".to_string(),
            objective: 0.9,
            bad: Selector::value("bad_total"),
            total: SloTotal::PerTick(100.0),
        };
        // fast window 2: delta v(6)-v(4) = 60 over 200 expected → ratio
        // 0.3 / budget 0.1 → burn 3.0. slow window 5: delta v(6)-v(1) = 60
        // over 500 → 0.12 / 0.1 → burn 1.2.
        assert!((slo.burn(&db, 2, 6) - 3.0).abs() < 1e-12);
        assert!((slo.burn(&db, 5, 6) - 1.2).abs() < 1e-12);

        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::burn_rate("burn", slo, 2, 5, 1.3));
        assert!(engine.evaluate(6, &db).is_empty(), "slow window 1.2 < factor 1.3 rejects");

        let engine2 = AlertEngine::new(Obs::noop());
        engine2.add_rule(AlertRule::burn_rate(
            "burn",
            Slo {
                name: "budget".to_string(),
                objective: 0.9,
                bad: Selector::value("bad_total"),
                total: SloTotal::PerTick(100.0),
            },
            2,
            5,
            1.1,
        ));
        let t = engine2.evaluate(6, &db);
        assert!(t.iter().any(|t| t.to == AlertState::Firing), "both windows above 1.1: {t:?}");
        let slos = engine2.slo_json();
        assert!(slos.contains("\"burn_fast\":3"), "{slos}");
        assert!(slos.contains("\"firing\":true"), "{slos}");
    }

    #[test]
    fn transitions_mirror_to_metrics_and_events() {
        let registry = Arc::new(Registry::new());
        let o = Obs::new(registry.clone());
        let db = store_with(&[(1, 9.0)]);
        let engine = AlertEngine::new(o);
        engine.add_rule(AlertRule::threshold("hot", Selector::value("sig_total"), Op::Gt, 5.0, 0));
        engine.evaluate(1, &db);
        let pending = registry
            .counter(
                "commgraph_alert_transitions_total",
                "",
                &[("rule", "hot"), ("state", "pending")],
            )
            .get();
        let firing = registry
            .counter(
                "commgraph_alert_transitions_total",
                "",
                &[("rule", "hot"), ("state", "firing")],
            )
            .get();
        assert_eq!((pending, firing), (1, 1));
        assert_eq!(registry.gauge("commgraph_alert_firing_entries", "", &[]).get(), 1.0);
        assert!(registry.histogram("commgraph_alert_eval_seconds", "", &[]).count() >= 1);
        let events = registry.events();
        assert!(
            events.iter().any(|e| e.target == "alert"
                && e.level == Level::Warn
                && e.message.contains("pending -> firing")),
            "{events:?}"
        );
    }

    #[test]
    fn alerts_json_is_tick_keyed() {
        let db = store_with(&[(1, 9.0)]);
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rule(AlertRule::threshold("hot", Selector::value("sig_total"), Op::Gt, 5.0, 0));
        engine.evaluate(1, &db);
        let json = engine.alerts_json();
        assert!(json.starts_with("{\"tick\":1,\"alerts\":["), "{json}");
        assert!(
            json.contains("\"rule\":\"hot\",\"severity\":\"page\",\"state\":\"firing\""),
            "{json}"
        );
        assert!(
            json.contains("{\"tick\":1,\"rule\":\"hot\",\"from\":\"inactive\",\"to\":\"pending\"}"),
            "{json}"
        );
    }

    #[test]
    fn default_pack_installs_and_evaluates_clean_on_an_empty_store() {
        let engine = AlertEngine::new(Obs::noop());
        engine.add_rules(default_pack(1000.0));
        assert_eq!(engine.rule_count(), 5);
        let db = Tsdb::default();
        // Absence rules fire on a silent store; that is their contract.
        let transitions = engine.evaluate(1, &db);
        assert!(transitions.iter().all(|t| t.rule.ends_with("_stalled")), "{transitions:?}");
    }

    #[test]
    fn query_pack_parses_and_mirrors_default_pack_shape() {
        let hard = default_pack(1000.0);
        let exprs = query_pack(1000.0).expect("pack templates parse");
        assert_eq!(hard.len(), exprs.len());
        for (h, e) in hard.iter().zip(&exprs) {
            assert_eq!(h.name, e.name);
            assert_eq!(h.for_ticks, e.for_ticks, "{}", h.name);
            assert_eq!(h.severity, e.severity, "{}", h.name);
            assert!(matches!(e.condition, Condition::Query { .. }), "{}", e.name);
        }
    }

    #[test]
    fn query_pack_matches_default_pack_on_an_empty_store() {
        let db = Tsdb::default();
        let hard = AlertEngine::new(Obs::noop());
        hard.add_rules(default_pack(1000.0));
        let expr = AlertEngine::new(Obs::noop());
        expr.add_rules(query_pack(1000.0).expect("pack templates parse"));
        for tick in 1..=6 {
            let a = hard.evaluate(tick, &db);
            let b = expr.evaluate(tick, &db);
            let strip = |v: Vec<Transition>| -> Vec<_> {
                v.into_iter().map(|t| (t.tick, t.rule, t.from, t.to)).collect()
            };
            assert_eq!(strip(a), strip(b), "tick {tick}");
        }
    }
}
