//! A zero-dependency bounded in-memory time-series store.
//!
//! A `/metrics` scrape shows *now*; nothing in the stack could say
//! "window-roll lag has been degrading for ten windows". [`Tsdb`] closes
//! that gap: a [`Scraper`] samples every family in the [`Registry`] on a
//! **tick** and appends the samples to fixed-capacity per-series rings, so
//! dashboards (and the [`crate::alert`] engine) can query trajectories, not
//! points.
//!
//! # The deterministic-tick contract
//!
//! The tick source is injectable. [`Scraper::scrape`] takes the tick as an
//! argument and never reads a clock to produce it, so callers choose the
//! time base:
//!
//! * **Logical ticks** — tests and the pipeline call `scrape(tick)` once
//!   per *rolled window*. Every sample timestamp is then a deterministic
//!   function of the input records, and anything downstream (alert
//!   transitions, `/query` output for deterministic series) is bit-identical
//!   across runs.
//! * **Wall-clock ticks** — the live server calls
//!   [`Scraper::spawn_wall_clock`], which spawns a thread that bumps a
//!   monotone tick counter every interval. Same code path, same store; only
//!   the tick *cadence* is wall time.
//!
//! Sample *values* are whatever the registry holds — wall-clock histograms
//! (`commgraph_stage_seconds`) stay nondeterministic; deterministic families
//! (record counts, watermarks, roll lag) stay deterministic. Alert rules
//! that must replay bit-identically simply reference deterministic series.
//!
//! # Storage model
//!
//! One series per (family, label set, sample field). Counters and gauges
//! contribute one `value` series; histograms fan out into `count`, `sum`,
//! `max`, `p50`, `p95`, `p99` sub-series (buckets are not retained). Each
//! series is a bounded ring of `(tick, value)` samples with the tick stored
//! as a `u32` delta from the series' base tick — 12 bytes per sample instead
//! of 16. When a ring is full the oldest sample is evicted and counted;
//! when the store holds [`TsdbConfig::max_series`] series, *new* series are
//! dropped and counted. Nothing is silently lost.

use crate::metrics::HistogramSnapshot;
use crate::registry::{Registry, SnapshotValue};
use crate::{Counter, Gauge, Histogram, Obs};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which scalar of a metric a series tracks. Counters and gauges only have
/// [`SampleField::Value`]; histograms fan out into the remaining fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleField {
    /// The counter or gauge value.
    Value,
    /// Histogram observation count.
    Count,
    /// Histogram sum of observations.
    Sum,
    /// Histogram maximum observation.
    Max,
    /// Histogram 50th percentile estimate.
    P50,
    /// Histogram 95th percentile estimate.
    P95,
    /// Histogram 99th percentile estimate.
    P99,
}

impl SampleField {
    /// Stable lowercase name (used in `/query` URLs and JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            SampleField::Value => "value",
            SampleField::Count => "count",
            SampleField::Sum => "sum",
            SampleField::Max => "max",
            SampleField::P50 => "p50",
            SampleField::P95 => "p95",
            SampleField::P99 => "p99",
        }
    }

    /// Parse the name produced by [`SampleField::as_str`].
    pub fn parse(s: &str) -> Option<SampleField> {
        match s {
            "value" => Some(SampleField::Value),
            "count" => Some(SampleField::Count),
            "sum" => Some(SampleField::Sum),
            "max" => Some(SampleField::Max),
            "p50" => Some(SampleField::P50),
            "p95" => Some(SampleField::P95),
            "p99" => Some(SampleField::P99),
            _ => None,
        }
    }

    /// The histogram sub-series, in storage order.
    pub const HISTOGRAM_FIELDS: [SampleField; 6] = [
        SampleField::Count,
        SampleField::Sum,
        SampleField::Max,
        SampleField::P50,
        SampleField::P95,
        SampleField::P99,
    ];
}

/// Identity of one stored series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name.
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Which scalar of the metric this series tracks.
    pub field: SampleField,
}

impl SeriesKey {
    /// A `value`-field key for a counter or gauge.
    pub fn value(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        SeriesKey {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            field: SampleField::Value,
        }
    }

    /// Estimated heap bytes held by this key.
    fn heap_bytes(&self) -> usize {
        self.name.len() + self.labels.iter().map(|(k, v)| k.len() + v.len() + 48).sum::<usize>()
    }
}

/// One series ring: ticks are stored as `u32` deltas from `base_tick`.
#[derive(Debug)]
struct Series {
    base_tick: u64,
    /// `(tick - base_tick, value)`, oldest first, at most `capacity` long.
    samples: VecDeque<(u32, f64)>,
}

impl Series {
    fn push(&mut self, tick: u64, value: f64, capacity: usize) -> u64 {
        let mut evicted = 0u64;
        // Ticks beyond the u32 delta range force a rebase onto the newest
        // retained sample (drops everything older — counted honestly).
        if tick.saturating_sub(self.base_tick) > u32::MAX as u64 {
            evicted += self.samples.len() as u64;
            self.samples.clear();
            self.base_tick = tick;
        }
        while self.samples.len() >= capacity.max(1) {
            self.samples.pop_front();
            evicted += 1;
        }
        let delta = (tick - self.base_tick) as u32;
        // Out-of-order ticks within one series are clamped forward so the
        // ring stays sorted; the registry snapshot is taken at one tick, so
        // this only triggers if a caller reuses a store across tick domains.
        let delta = match self.samples.back() {
            Some(&(last, _)) if last > delta => last,
            _ => delta,
        };
        self.samples.push_back((delta, value));
        evicted
    }

    fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let base = self.base_tick;
        self.samples.iter().map(move |&(d, v)| (base + d as u64, v))
    }

    fn heap_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<(u32, f64)>()
    }
}

/// Bounds of a [`Tsdb`].
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Samples retained per series; the oldest is evicted beyond this.
    pub capacity_per_series: usize,
    /// Series retained in total; *new* series beyond this are dropped (and
    /// counted on [`Tsdb::dropped_series`]).
    pub max_series: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig { capacity_per_series: 512, max_series: 4096 }
    }
}

#[derive(Debug, Default)]
struct TsdbInner {
    series: BTreeMap<SeriesKey, Series>,
    appended: u64,
    evicted: u64,
    dropped_series: u64,
    last_tick: u64,
}

/// The bounded in-memory time-series store. Interior-mutable: share it as
/// `Arc<Tsdb>` between the [`Scraper`], the alert engine, and the
/// introspection server.
#[derive(Debug)]
pub struct Tsdb {
    cfg: TsdbConfig,
    inner: Mutex<TsdbInner>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

/// A label matcher (`key` must equal `value`) for [`Query`].
pub type Matcher = (String, String);

/// A series selection: all fields optional, all conditions conjunctive.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Exact family name to match (`None` matches every family).
    pub name: Option<String>,
    /// Label pairs the series must carry (subset match).
    pub matchers: Vec<Matcher>,
    /// Restrict to one sample field.
    pub field: Option<SampleField>,
    /// Inclusive lower tick bound.
    pub from: Option<u64>,
    /// Inclusive upper tick bound.
    pub to: Option<u64>,
    /// Keep only the newest this-many in-range points per series (`None`
    /// returns the full retained history).
    pub limit: Option<usize>,
}

impl Query {
    /// Select one family by name.
    pub fn family(name: &str) -> Query {
        Query { name: Some(name.to_string()), ..Query::default() }
    }

    /// Require label `key` = `value` (builder style).
    pub fn with_label(mut self, key: &str, value: &str) -> Query {
        self.matchers.push((key.to_string(), value.to_string()));
        self
    }

    /// Restrict to one sample field (builder style).
    pub fn with_field(mut self, field: SampleField) -> Query {
        self.field = Some(field);
        self
    }

    fn matches(&self, key: &SeriesKey) -> bool {
        if self.name.as_deref().is_some_and(|n| n != key.name) {
            return false;
        }
        if self.field.is_some_and(|f| f != key.field) {
            return false;
        }
        self.matchers.iter().all(|(mk, mv)| key.labels.iter().any(|(k, v)| k == mk && v == mv))
    }
}

/// One series returned by [`Tsdb::query`].
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// The series identity.
    pub key: SeriesKey,
    /// `(tick, value)` samples, oldest first, within the query range.
    pub points: Vec<(u64, f64)>,
}

impl Tsdb {
    /// An empty store with the given bounds.
    pub fn new(cfg: TsdbConfig) -> Tsdb {
        Tsdb { cfg, inner: Mutex::new(TsdbInner::default()) }
    }

    /// The configured bounds.
    pub fn config(&self) -> &TsdbConfig {
        &self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TsdbInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Append one sample. Out-of-order ticks within a series are clamped
    /// onto the newest retained tick so rings stay sorted.
    pub fn append(&self, key: SeriesKey, tick: u64, value: f64) {
        let capacity = self.cfg.capacity_per_series;
        let max_series = self.cfg.max_series;
        let mut inner = self.lock();
        inner.last_tick = inner.last_tick.max(tick);
        if !inner.series.contains_key(&key) && inner.series.len() >= max_series {
            inner.dropped_series += 1;
            return;
        }
        let series = inner
            .series
            .entry(key)
            .or_insert_with(|| Series { base_tick: tick, samples: VecDeque::new() });
        let evicted = series.push(tick, value, capacity);
        inner.evicted += evicted;
        inner.appended += 1;
    }

    /// Series currently retained.
    pub fn series_count(&self) -> usize {
        self.lock().series.len()
    }

    /// Samples appended over the store's lifetime (including later-evicted).
    pub fn appended_samples(&self) -> u64 {
        self.lock().appended
    }

    /// Samples evicted by ring capacity over the store's lifetime.
    pub fn evicted_samples(&self) -> u64 {
        self.lock().evicted
    }

    /// Series dropped because [`TsdbConfig::max_series`] was reached.
    pub fn dropped_series(&self) -> u64 {
        self.lock().dropped_series
    }

    /// Highest tick ever appended.
    pub fn last_tick(&self) -> u64 {
        self.lock().last_tick
    }

    /// Estimated heap footprint of the retained data, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let inner = self.lock();
        inner.series.iter().map(|(k, s)| k.heap_bytes() + s.heap_bytes() + 64).sum()
    }

    /// All matching series, keys in deterministic (name, labels, field)
    /// order, each with its in-range points oldest-first.
    pub fn query(&self, q: &Query) -> Vec<SeriesData> {
        let inner = self.lock();
        inner
            .series
            .iter()
            .filter(|(key, _)| q.matches(key))
            .map(|(key, series)| {
                let mut points: Vec<(u64, f64)> = series
                    .points()
                    .filter(|(t, _)| {
                        q.from.is_none_or(|f| *t >= f) && q.to.is_none_or(|to| *t <= to)
                    })
                    .collect();
                if let Some(limit) = q.limit {
                    if points.len() > limit {
                        points.drain(..points.len() - limit);
                    }
                }
                SeriesData { key: key.clone(), points }
            })
            .collect()
    }

    /// The newest sample at or before `tick` of the first series matching
    /// `q` (queries meant for alerting should select exactly one series).
    pub fn latest_at(&self, q: &Query, tick: u64) -> Option<(u64, f64)> {
        let inner = self.lock();
        inner
            .series
            .iter()
            .find(|(key, _)| q.matches(key))
            .and_then(|(_, s)| s.points().take_while(|(t, _)| *t <= tick).last())
    }

    /// Increase of a (cumulative) series over the `window` ticks ending at
    /// `tick`: newest value at or before `tick` minus the newest value at or
    /// before `tick - window` (falling back to the oldest retained sample
    /// when the window start predates retention — a documented undercount
    /// for series born mid-window). `None` when the series has no sample at
    /// or before `tick`.
    pub fn window_delta(&self, q: &Query, window: u64, tick: u64) -> Option<f64> {
        let inner = self.lock();
        let (_, series) = inner.series.iter().find(|(key, _)| q.matches(key))?;
        let upto: Vec<(u64, f64)> = series.points().take_while(|(t, _)| *t <= tick).collect();
        let (_, end) = *upto.last()?;
        let floor = tick.saturating_sub(window);
        let start = upto
            .iter()
            .take_while(|(t, _)| *t <= floor)
            .last()
            .or_else(|| upto.first())
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        Some(end - start)
    }

    /// Render a query result as JSON:
    /// `{"series":[{"name":..,"labels":{..},"field":..,"points":[[tick,value],..]},..]}`.
    /// Output is deterministic for deterministic inputs (tick-keyed, no
    /// wall-clock timestamps).
    pub fn query_json(&self, q: &Query) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.query(q).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&crate::export::json_str(&s.key.name));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in s.key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&crate::export::json_str(k));
                out.push(':');
                out.push_str(&crate::export::json_str(v));
            }
            out.push_str("},\"field\":\"");
            out.push_str(s.key.field.as_str());
            out.push_str("\",\"points\":[");
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&t.to_string());
                out.push(',');
                out.push_str(&crate::export::json_f64(*v));
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Samples every family of a [`Registry`] into a [`Tsdb`] on each tick, and
/// reports its own cost and the store's occupancy as `commgraph_tsdb_*`
/// metrics (which the *next* tick then samples — the store observes itself
/// one tick behind).
#[derive(Debug)]
pub struct Scraper {
    registry: Arc<Registry>,
    store: Arc<Tsdb>,
    samples: Counter,
    evicted: Counter,
    scrape_seconds: Histogram,
    series_gauge: Gauge,
    memory_gauge: Gauge,
    evicted_seen: AtomicU64,
    /// Recording rules evaluated after each registry pass, with their
    /// per-rule output-series counters. Lock class `obs::Scraper.rules`:
    /// held across `Tsdb::append`, so it precedes `obs::Tsdb.inner` in the
    /// workspace lock order.
    rules: Mutex<Vec<RuleSlot>>,
    rule_eval_seconds: Histogram,
}

/// One installed recording rule plus its output-series counter.
#[derive(Debug)]
struct RuleSlot {
    rule: crate::query::RecordingRule,
    series_total: Counter,
}

impl Scraper {
    /// A scraper from `registry` into `store`. Self-metrics are resolved in
    /// the same registry immediately, so they are present from the first
    /// scrape onward.
    pub fn new(registry: Arc<Registry>, store: Arc<Tsdb>) -> Scraper {
        let o = Obs::new(registry.clone());
        Scraper {
            samples: o.counter(
                "commgraph_tsdb_samples_total",
                "Samples appended to the in-memory time-series store.",
                &[],
            ),
            evicted: o.counter(
                "commgraph_tsdb_evicted_samples_total",
                "Samples evicted from full series rings (bounded-retention loss).",
                &[],
            ),
            scrape_seconds: o.histogram(
                "commgraph_tsdb_scrape_seconds",
                "Wall-clock seconds per registry scrape into the time-series store.",
                &[],
            ),
            series_gauge: o.gauge(
                "commgraph_tsdb_series_entries",
                "Series currently retained by the time-series store.",
                &[],
            ),
            memory_gauge: o.gauge(
                "commgraph_tsdb_memory_bytes",
                "Estimated heap bytes held by the time-series store.",
                &[],
            ),
            rule_eval_seconds: o.histogram(
                "commgraph_query_rule_eval_seconds",
                "Wall-clock seconds per recording-rule evaluation pass.",
                &[],
            ),
            registry,
            store,
            evicted_seen: AtomicU64::new(0),
            rules: Mutex::new(Vec::new()),
        }
    }

    /// Install a recording rule: from the next [`Scraper::scrape`] onward
    /// its expression is evaluated each tick (after the registry pass, so
    /// it sees the tick's fresh samples) and the result is appended to the
    /// store as synthetic series named after the rule. Output series go
    /// through [`Tsdb::append`] and are therefore subject to the same
    /// eviction and max-series accounting as scraped ones.
    pub fn add_recording_rule(&self, rule: crate::query::RecordingRule) {
        let series_total = Obs::new(self.registry.clone()).counter(
            "commgraph_query_rule_series_total",
            "Series written per recording-rule evaluation.",
            &[("rule", rule.name())],
        );
        let mut rules = self.rules.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        rules.push(RuleSlot { rule, series_total });
    }

    /// Install several recording rules at once.
    pub fn add_recording_rules(
        &self,
        rules: impl IntoIterator<Item = crate::query::RecordingRule>,
    ) {
        for r in rules {
            self.add_recording_rule(r);
        }
    }

    /// Number of installed recording rules.
    pub fn recording_rule_count(&self) -> usize {
        self.rules.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).len()
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<Tsdb> {
        &self.store
    }

    /// The scraped registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Sample every metric in the registry at logical time `tick`. Counters
    /// and gauges append one `value` sample; histograms append their
    /// [`SampleField::HISTOGRAM_FIELDS`] scalars. Returns the number of
    /// samples appended.
    pub fn scrape(&self, tick: u64) -> usize {
        // lint:allow(clock-hygiene) self-timing of the scrape pass; samples are stamped with the injected tick
        let t0 = std::time::Instant::now();
        let mut appended = 0usize;
        for snap in self.registry.snapshot() {
            let key = |field: SampleField| SeriesKey {
                name: snap.name.clone(),
                labels: snap.labels.clone(),
                field,
            };
            match &snap.value {
                SnapshotValue::Counter(v) => {
                    self.store.append(key(SampleField::Value), tick, *v as f64);
                    appended += 1;
                }
                SnapshotValue::Gauge(v) => {
                    self.store.append(key(SampleField::Value), tick, *v);
                    appended += 1;
                }
                SnapshotValue::Histogram(h) => {
                    for field in SampleField::HISTOGRAM_FIELDS {
                        self.store.append(key(field), tick, histogram_field(h, field));
                        appended += 1;
                    }
                }
            }
        }
        // Recording rules run after the registry pass so each rule sees
        // this tick's fresh samples; outputs land at the same tick. An
        // erroring rule writes nothing and its counter does not advance.
        {
            // lint:allow(clock-hygiene) self-timing of the rule pass; outputs are stamped with the injected tick
            let r0 = std::time::Instant::now();
            let rules = self.rules.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            for slot in rules.iter() {
                if let Ok(n) = slot.rule.record(&self.store, tick) {
                    slot.series_total.add(n as u64);
                    appended += n;
                }
            }
            if !rules.is_empty() {
                self.rule_eval_seconds.record(r0.elapsed().as_secs_f64());
            }
        }
        self.samples.add(appended as u64);
        let evicted_now = self.store.evicted_samples();
        let seen = self.evicted_seen.swap(evicted_now, Ordering::Relaxed);
        self.evicted.add(evicted_now.saturating_sub(seen));
        self.series_gauge.set(self.store.series_count() as f64);
        self.memory_gauge.set(self.store.memory_bytes() as f64);
        self.scrape_seconds.record(t0.elapsed().as_secs_f64());
        appended
    }

    /// Spawn a wall-clock tick source: a thread that calls
    /// [`Scraper::scrape`] with a monotone tick counter every `interval`.
    /// This is the live-server mode of the deterministic-tick contract; the
    /// returned handle stops the thread on [`ScraperHandle::shutdown`] or
    /// drop.
    pub fn spawn_wall_clock(self: Arc<Self>, interval: Duration) -> std::io::Result<ScraperHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let join =
            std::thread::Builder::new().name("obs-tsdb-scraper".to_string()).spawn(move || {
                let mut tick = 0u64;
                while !thread_stop.load(Ordering::SeqCst) {
                    tick += 1;
                    self.scrape(tick);
                    // Sleep in small slices so shutdown is prompt.
                    let mut left = interval;
                    while !thread_stop.load(Ordering::SeqCst) && left > Duration::ZERO {
                        let step = left.min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })?;
        Ok(ScraperHandle { stop, join: Some(join) })
    }
}

/// Extract one scalar field from a histogram snapshot.
fn histogram_field(h: &HistogramSnapshot, field: SampleField) -> f64 {
    match field {
        SampleField::Value => f64::NAN,
        SampleField::Count => h.count as f64,
        SampleField::Sum => h.sum,
        SampleField::Max => h.max,
        SampleField::P50 => h.p50,
        SampleField::P95 => h.p95,
        SampleField::P99 => h.p99,
    }
}

/// Owns the wall-clock scraper thread; stops it on shutdown or drop.
#[derive(Debug)]
pub struct ScraperHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ScraperHandle {
    /// Stop the scraper thread and join it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        let _ = join.join();
    }
}

impl Drop for ScraperHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_query_round_trip() {
        let db = Tsdb::default();
        for t in 1..=5u64 {
            db.append(SeriesKey::value("a_total", &[("k", "x")]), t, t as f64);
            db.append(SeriesKey::value("b_total", &[]), t, 10.0 * t as f64);
        }
        let all = db.query(&Query::default());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].key.name, "a_total");
        assert_eq!(all[0].points, (1..=5).map(|t| (t, t as f64)).collect::<Vec<_>>());

        let ranged = db.query(&Query { from: Some(2), to: Some(4), ..Query::family("b_total") });
        assert_eq!(ranged.len(), 1);
        assert_eq!(ranged[0].points, vec![(2, 20.0), (3, 30.0), (4, 40.0)]);

        let labeled = db.query(&Query::family("a_total").with_label("k", "x"));
        assert_eq!(labeled.len(), 1);
        assert!(db.query(&Query::family("a_total").with_label("k", "y")).is_empty());
    }

    #[test]
    fn ring_capacity_evicts_oldest_and_counts_honestly() {
        let db = Tsdb::new(TsdbConfig { capacity_per_series: 3, max_series: 10 });
        for t in 1..=7u64 {
            db.append(SeriesKey::value("x_total", &[]), t, t as f64);
        }
        let s = &db.query(&Query::default())[0];
        assert_eq!(s.points, vec![(5, 5.0), (6, 6.0), (7, 7.0)], "oldest evicted first");
        assert_eq!(db.appended_samples(), 7);
        assert_eq!(db.evicted_samples(), 4);
        // Conservation: retained + evicted == appended.
        assert_eq!(s.points.len() as u64 + db.evicted_samples(), db.appended_samples());
    }

    #[test]
    fn max_series_drops_new_series_and_counts() {
        let db = Tsdb::new(TsdbConfig { capacity_per_series: 8, max_series: 2 });
        db.append(SeriesKey::value("a_total", &[]), 1, 1.0);
        db.append(SeriesKey::value("b_total", &[]), 1, 1.0);
        db.append(SeriesKey::value("c_total", &[]), 1, 1.0);
        // Existing series still accept samples at the cap.
        db.append(SeriesKey::value("a_total", &[]), 2, 2.0);
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.dropped_series(), 1);
        assert_eq!(db.appended_samples(), 3);
    }

    #[test]
    fn window_delta_and_latest() {
        let db = Tsdb::default();
        let q = Query::family("c_total");
        for (t, v) in [(1u64, 0.0), (2, 10.0), (3, 10.0), (4, 25.0)] {
            db.append(SeriesKey::value("c_total", &[]), t, v);
        }
        assert_eq!(db.latest_at(&q, 4), Some((4, 25.0)));
        assert_eq!(db.latest_at(&q, 3), Some((3, 10.0)));
        assert_eq!(db.latest_at(&q, 0), None);
        assert_eq!(db.window_delta(&q, 2, 4), Some(15.0), "v(4) - v(2)");
        assert_eq!(db.window_delta(&q, 10, 4), Some(25.0), "clamps to oldest retained");
        assert_eq!(db.window_delta(&q, 2, 0), None, "no sample at or before tick 0");
    }

    #[test]
    fn scraper_samples_counters_gauges_and_histogram_fields() {
        let registry = Arc::new(Registry::new());
        registry.counter("demo_total", "h", &[]).add(3);
        registry.gauge("demo_depth_entries", "h", &[]).set(2.0);
        let h = registry.histogram("demo_seconds", "h", &[]);
        h.record(1.0);
        h.record(2.0);

        let scraper = Scraper::new(registry.clone(), Arc::new(Tsdb::default()));
        let appended = scraper.scrape(1);
        let db = scraper.store();
        let counter = db.query(&Query::family("demo_total"));
        assert_eq!(counter[0].points, vec![(1, 3.0)]);
        let hist = db.query(&Query::family("demo_seconds"));
        assert_eq!(hist.len(), 6, "histograms fan out into scalar sub-series");
        let count = db.query(&Query::family("demo_seconds").with_field(SampleField::Count));
        assert_eq!(count[0].points, vec![(1, 2.0)]);
        let sum = db.query(&Query::family("demo_seconds").with_field(SampleField::Sum));
        assert_eq!(sum[0].points, vec![(1, 3.0)]);
        assert!(appended >= 12, "user metrics plus scraper self-metrics: {appended}");
        assert_eq!(db.appended_samples(), appended as u64);

        // Second scrape sees the scraper's own scrape_seconds histogram.
        scraper.scrape(2);
        let self_cost = db.query(&Query::family("commgraph_tsdb_scrape_seconds"));
        assert!(!self_cost.is_empty(), "store observes its own cost one tick behind");
        assert_eq!(db.last_tick(), 2);
    }

    #[test]
    fn query_json_is_tick_keyed_and_parseable_shape() {
        let db = Tsdb::default();
        db.append(SeriesKey::value("a_total", &[("sub", "t-1")]), 3, 7.5);
        let json = db.query_json(&Query::family("a_total"));
        assert_eq!(
            json,
            "{\"series\":[{\"name\":\"a_total\",\"labels\":{\"sub\":\"t-1\"},\
             \"field\":\"value\",\"points\":[[3,7.5]]}]}"
        );
    }

    #[test]
    fn memory_estimate_tracks_growth() {
        let db = Tsdb::default();
        let before = db.memory_bytes();
        for t in 0..100u64 {
            db.append(SeriesKey::value("m_total", &[]), t, t as f64);
        }
        assert!(db.memory_bytes() > before, "samples cost memory");
    }

    #[test]
    fn wall_clock_scraper_ticks_and_stops() {
        let registry = Arc::new(Registry::new());
        registry.counter("wc_total", "h", &[]).inc();
        let scraper = Arc::new(Scraper::new(registry, Arc::new(Tsdb::default())));
        let handle = scraper.clone().spawn_wall_clock(Duration::from_millis(5)).unwrap();
        let t0 = std::time::Instant::now();
        while scraper.store().last_tick() < 2 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
        assert!(scraper.store().last_tick() >= 2, "wall-clock ticks advanced");
        let points = &scraper.store().query(&Query::family("wc_total"))[0].points;
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0), "monotone ticks");
    }
}
