//! A zero-dependency HTTP/1.0 introspection server.
//!
//! [`IntrospectionServer::start`] binds a `std::net::TcpListener` (port 0
//! picks a free port), spawns one accept-loop thread, and returns a
//! [`ServerHandle`] whose [`ServerHandle::shutdown`] (or drop) stops the
//! thread cleanly — no signal handling, no async runtime, no dependencies.
//!
//! Endpoints:
//!
//! | path            | content                                             |
//! |-----------------|-----------------------------------------------------|
//! | `/healthz`      | `ok` (liveness probe)                               |
//! | `/metrics`      | Prometheus text exposition ([`export::prometheus_text`]) |
//! | `/metrics.json` | JSON snapshot ([`export::json_snapshot`])           |
//! | `/trace`        | flight-recorder dump as Chrome trace-event JSON     |
//! | `/trace.txt`    | flight-recorder dump as an indented text tree       |
//! | `/events`       | buffered structured events as JSON                  |
//! | `/query`        | time-series store query as JSON (needs `with_tsdb`) |
//! | `/query_range`  | query-language evaluation over a tick range (needs `with_tsdb`) |
//! | `/alerts`       | alert statuses + transition history as JSON         |
//! | `/slo`          | SLO burn-rate picture as JSON                       |
//!
//! `/query` filters with query-string parameters, all optional and
//! conjunctive: `name=<family>`, `label.<key>=<value>` (repeatable),
//! `field=value|count|sum|max|p50|p95|p99`, `from=<tick>`, `to=<tick>`,
//! and `limit=<n>` (keep only the newest `n` in-range points per series,
//! so full-ring dumps are opt-in rather than the default failure mode) —
//! e.g. `/query?name=commgraph_subscription_records_total&label.subscription=t-1&limit=100`.
//! Values are taken verbatim (no percent-decoding); metric names and label
//! values in this workspace are URL-safe by construction.
//!
//! `/query_range?expr=<expression>&from=<tick>&to=<tick>&step=<ticks>`
//! evaluates a [`crate::query`] expression at every step between `from`
//! (default `1`) and `to` (default the store's last tick) and returns
//! tick-keyed JSON. `expr` **is** percent-decoded (it carries `{`, `"`,
//! and spaces); a malformed expression returns `400` with the parse error
//! in the body. Responses are a pure function of store contents, so
//! same-seed replays are byte-identical.
//!
//! Every request increments `commgraph_serve_requests_total{path=...}` with
//! the path (query string stripped) normalized to the known endpoint set
//! (unknown paths count under `other`), so scrape traffic itself is visible
//! in the scrape.

use crate::alert::AlertEngine;
use crate::export;
use crate::registry::Registry;
use crate::trace::{chrome_trace_json, render_tree, FlightDump, Tracer};
use crate::tsdb::{Query, SampleField, Tsdb};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Builder for the introspection server: a registry to expose, optionally a
/// tracer whose flight recorder backs `/trace`, a time-series store backing
/// `/query`, and an alert engine backing `/alerts` + `/slo`.
#[derive(Debug, Clone)]
pub struct IntrospectionServer {
    registry: Arc<Registry>,
    tracer: Option<Arc<Tracer>>,
    tsdb: Option<Arc<Tsdb>>,
    alerts: Option<Arc<AlertEngine>>,
}

/// What the accept loop serves; bundled so the thread takes one value.
struct ServeCtx {
    registry: Arc<Registry>,
    tracer: Option<Arc<Tracer>>,
    tsdb: Option<Arc<Tsdb>>,
    alerts: Option<Arc<AlertEngine>>,
}

impl IntrospectionServer {
    /// A server exposing `registry` (no `/trace` content until
    /// [`IntrospectionServer::with_tracer`]).
    pub fn new(registry: Arc<Registry>) -> Self {
        IntrospectionServer { registry, tracer: None, tsdb: None, alerts: None }
    }

    /// Attach the tracer whose flight recorder `/trace` and `/trace.txt`
    /// will dump.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach the time-series store `/query` reads.
    pub fn with_tsdb(mut self, tsdb: Arc<Tsdb>) -> Self {
        self.tsdb = Some(tsdb);
        self
    }

    /// Attach the alert engine `/alerts` and `/slo` read.
    pub fn with_alerts(mut self, alerts: Arc<AlertEngine>) -> Self {
        self.alerts = Some(alerts);
        self
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawn the
    /// accept loop, and return its handle. The bound address — including
    /// the picked port — is [`ServerHandle::addr`].
    pub fn start(self, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let ctx = ServeCtx {
            registry: self.registry,
            tracer: self.tracer,
            tsdb: self.tsdb,
            alerts: self.alerts,
        };
        let join = std::thread::Builder::new()
            .name("obs-introspection".to_string())
            .spawn(move || accept_loop(listener, thread_stop, ctx))?;
        Ok(ServerHandle { addr: local, stop, join: Some(join) })
    }
}

/// Owns the running server thread. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and joins the thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (reports the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway local connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, ctx: ServeCtx) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if let Ok((mut stream, _)) = conn {
            let _ = handle_conn(&mut stream, &ctx);
        }
    }
}

/// Read the request line, route it, write an HTTP/1.0 response. Any I/O
/// error just drops the connection — one bad client must not stop serving.
fn handle_conn(stream: &mut TcpStream, ctx: &ServeCtx) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let (method, path) = read_request_line(stream)?;
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, query),
        None => (path.as_str(), ""),
    };
    bump_request_counter(&ctx.registry, route);
    let registry = &ctx.registry;
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match route {
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4", export::prometheus_text(registry))
            }
            "/metrics.json" => ("200 OK", "application/json", export::json_snapshot(registry)),
            "/trace" => {
                ("200 OK", "application/json", chrome_trace_json(&dump_or_empty(&ctx.tracer)))
            }
            "/trace.txt" => {
                ("200 OK", "text/plain; charset=utf-8", render_tree(&dump_or_empty(&ctx.tracer)))
            }
            "/events" => ("200 OK", "application/json", export::events_json(registry)),
            "/query" => match &ctx.tsdb {
                Some(db) => ("200 OK", "application/json", db.query_json(&parse_query(query))),
                None => unavailable("no time-series store attached"),
            },
            "/query_range" => match &ctx.tsdb {
                Some(db) => query_range_response(db, query),
                None => unavailable("no time-series store attached"),
            },
            "/alerts" => match &ctx.alerts {
                Some(a) => ("200 OK", "application/json", a.alerts_json()),
                None => unavailable("no alert engine attached"),
            },
            "/slo" => match &ctx.alerts {
                Some(a) => ("200 OK", "application/json", a.slo_json()),
                None => unavailable("no alert engine attached"),
            },
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The 503 triple for an endpoint whose backing component is not attached.
fn unavailable(reason: &str) -> (&'static str, &'static str, String) {
    ("503 Service Unavailable", "text/plain; charset=utf-8", format!("{reason}\n"))
}

/// Parse `/query` parameters (see the module docs for the grammar).
/// Unknown keys and malformed numbers are ignored — a dashboard typo
/// returns a broader result set, never an error page.
fn parse_query(query: &str) -> Query {
    let mut q = Query::default();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => continue,
        };
        match key {
            "name" => q.name = Some(value.to_string()),
            "field" => q.field = SampleField::parse(value),
            "from" => q.from = value.parse().ok(),
            "to" => q.to = value.parse().ok(),
            "limit" => q.limit = value.parse().ok(),
            _ => {
                if let Some(label) = key.strip_prefix("label.") {
                    q.matchers.push((label.to_string(), value.to_string()));
                }
            }
        }
    }
    q
}

/// Minimal percent-decoding for `/query_range` expressions: `%XX` byte
/// escapes and `+` as space. Invalid escapes pass through verbatim (the
/// parser will reject them with a useful message).
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (
                    bytes.get(i + 1).and_then(|b| hex(*b)),
                    bytes.get(i + 2).and_then(|b| hex(*b)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 2;
                    }
                    _ => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Evaluate a `/query_range` request: `expr` (percent-decoded), `from`
/// (default 1), `to` (default the store's last tick), `step` (default 1).
fn query_range_response(db: &Arc<Tsdb>, query: &str) -> (&'static str, &'static str, String) {
    let mut expr = None;
    let (mut from, mut to, mut step) = (1u64, db.last_tick(), 1u64);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => continue,
        };
        match key {
            "expr" => expr = Some(url_decode(value)),
            "from" => from = value.parse().unwrap_or(from),
            "to" => to = value.parse().unwrap_or(to),
            "step" => step = value.parse().unwrap_or(step),
            _ => {}
        }
    }
    let Some(expr) = expr else {
        return (
            "400 Bad Request",
            "application/json",
            "{\"error\":\"missing expr parameter\"}".to_string(),
        );
    };
    match crate::query::query_range_json(db, &expr, from, to, step) {
        Ok(body) => ("200 OK", "application/json", body),
        Err(e) => (
            "400 Bad Request",
            "application/json",
            format!("{{\"error\":{}}}", export::json_str(&e.to_string())),
        ),
    }
}

/// A dump of the attached tracer, or an empty dump when none is attached
/// (so `/trace` always returns valid Chrome trace JSON).
fn dump_or_empty(tracer: &Option<Arc<Tracer>>) -> FlightDump {
    match tracer {
        Some(t) => t.dump(),
        None => FlightDump { capacity: 0, dropped: 0, open_spans: 0, spans: Vec::new() },
    }
}

/// Count the request with the path normalized onto the fixed endpoint set,
/// bounding label cardinality no matter what clients probe.
fn bump_request_counter(registry: &Arc<Registry>, path: &str) {
    let normalized = match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/metrics.json" => "metrics.json",
        "/trace" => "trace",
        "/trace.txt" => "trace.txt",
        "/events" => "events",
        "/query" => "query",
        "/query_range" => "query_range",
        "/alerts" => "alerts",
        "/slo" => "slo",
        _ => "other",
    };
    registry
        .counter(
            "commgraph_serve_requests_total",
            "HTTP requests served by the introspection server, by endpoint.",
            &[("path", normalized)],
        )
        .inc();
}

/// Parse `GET /path HTTP/1.0` from the head of the stream. Reads at most
/// 4 KiB; anything malformed is an `InvalidData` error (connection dropped).
fn read_request_line(stream: &mut TcpStream) -> io::Result<(String, String)> {
    let mut buf = [0u8; 4096];
    let mut filled = 0usize;
    loop {
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(2).any(|w| w == b"\r\n") || filled == buf.len() {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_ascii_whitespace();
    match (parts.next(), parts.next()) {
        (Some(method), Some(path)) => Ok((method.to_string(), path.to_string())),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "malformed request line")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn start_server() -> (ServerHandle, Arc<Registry>, Arc<Tracer>) {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::new(64));
        let handle = IntrospectionServer::new(registry.clone())
            .with_tracer(tracer.clone())
            .start("127.0.0.1:0")
            .unwrap();
        (handle, registry, tracer)
    }

    #[test]
    fn serves_all_endpoints_and_shuts_down() {
        let (handle, registry, tracer) = start_server();
        registry.counter("demo_total", "h", &[]).add(7);
        tracer.span("root").finish();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "port 0 resolved to a real port");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("demo_total 7"), "{metrics}");
        let (_, json) = get(addr, "/metrics.json");
        assert!(json.contains("\"demo_total\""), "{json}");
        let (_, trace) = get(addr, "/trace");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"root\""), "{trace}");
        let (_, tree) = get(addr, "/trace.txt");
        assert!(tree.contains("flight recorder:"), "{tree}");
        let (_, events) = get(addr, "/events");
        assert!(events.starts_with("{\"events\":["), "{events}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        // Requests counted with bounded path labels.
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("commgraph_serve_requests_total{path=\"metrics\"}"), "{metrics}");
        assert!(metrics.contains("commgraph_serve_requests_total{path=\"other\"} 1"), "{metrics}");

        handle.shutdown();
    }

    #[test]
    fn query_alerts_and_slo_endpoints_serve_attached_components() {
        use crate::alert::{AlertRule, Op, Selector};
        use crate::tsdb::SeriesKey;

        let registry = Arc::new(Registry::new());
        let db = Arc::new(Tsdb::default());
        db.append(SeriesKey::value("demo_total", &[("sub", "a")]), 1, 5.0);
        db.append(SeriesKey::value("demo_total", &[("sub", "b")]), 1, 7.0);
        db.append(SeriesKey::value("demo_total", &[("sub", "a")]), 2, 9.0);
        let alerts = Arc::new(AlertEngine::new(crate::Obs::new(registry.clone())));
        alerts.add_rule(AlertRule::threshold(
            "hot",
            Selector::value("demo_total").with_label("sub", "a"),
            Op::Gt,
            4.0,
            0,
        ));
        alerts.evaluate(2, &db);

        let handle = IntrospectionServer::new(registry.clone())
            .with_tsdb(db.clone())
            .with_alerts(alerts.clone())
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/query?name=demo_total&label.sub=a");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("[[1,5],[2,9]]"), "{body}");
        assert!(!body.contains("\"b\""), "label matcher filters: {body}");
        let (_, ranged) = get(addr, "/query?name=demo_total&label.sub=a&from=2&to=2");
        assert!(ranged.contains("[[2,9]]") && !ranged.contains("[1,5]"), "{ranged}");

        let (head, body) = get(addr, "/alerts");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(
            body.contains("\"rule\":\"hot\"") && body.contains("\"state\":\"firing\""),
            "{body}"
        );

        let (head, body) = get(addr, "/slo");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.starts_with("{\"tick\":2,\"slos\":["), "{body}");

        // Query-stringed paths count under the bare route label.
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("commgraph_serve_requests_total{path=\"query\"} 2"), "{metrics}");
        assert!(metrics.contains("commgraph_serve_requests_total{path=\"alerts\"} 1"), "{metrics}");
        handle.shutdown();
    }

    #[test]
    fn query_range_endpoint_evaluates_expressions() {
        use crate::tsdb::SeriesKey;

        let registry = Arc::new(Registry::new());
        let db = Arc::new(Tsdb::default());
        for tick in 1..=4u64 {
            db.append(SeriesKey::value("demo_total", &[("sub", "a")]), tick, (tick * 10) as f64);
        }
        let handle = IntrospectionServer::new(registry.clone())
            .with_tsdb(db.clone())
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();

        // `{`, `"` and spaces arrive percent-encoded; `+` means space.
        let path =
            "/query_range?expr=rate(demo_total%7Bsub%3D%22a%22%7D%5B2%5D)&from=2&to=4&step=2";
        let (head, body) = get(addr, path);
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"expr\":\"rate(demo_total{sub=\\\"a\\\"}[2])\""), "{body}");
        assert!(body.contains("\"points\":[[2,5],[4,10]]"), "{body}");
        let (_, again) = get(addr, path);
        assert_eq!(body, again, "byte-identical across requests");

        // Defaults: from=1, to=last_tick, step=1.
        let (_, defaulted) = get(addr, "/query_range?expr=demo_total");
        assert!(defaulted.contains("\"from\":1,\"to\":4,\"step\":1"), "{defaulted}");

        let (head, err) = get(addr, "/query_range?expr=rate(demo_total)");
        assert!(head.starts_with("HTTP/1.0 400"), "{head}");
        assert!(err.contains("\"error\":"), "{err}");
        let (head, _) = get(addr, "/query_range");
        assert!(head.starts_with("HTTP/1.0 400"), "missing expr: {head}");

        let (_, limited) = get(addr, "/query?name=demo_total&limit=2");
        assert!(limited.contains("[[3,30],[4,40]]") && !limited.contains("[1,10]"), "{limited}");

        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("commgraph_serve_requests_total{path=\"query_range\"} 5"),
            "{metrics}"
        );
        handle.shutdown();
    }

    #[test]
    fn tsdb_endpoints_without_components_return_503() {
        let (handle, _registry, _tracer) = start_server();
        for path in ["/query", "/alerts", "/slo"] {
            let (head, _) = get(handle.addr(), path);
            assert!(head.starts_with("HTTP/1.0 503"), "{path}: {head}");
        }
        handle.shutdown();
    }

    #[test]
    fn trace_without_tracer_is_valid_empty_json() {
        let registry = Arc::new(Registry::new());
        let handle = IntrospectionServer::new(registry).start("127.0.0.1:0").unwrap();
        let (head, body) = get(handle.addr(), "/trace");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        handle.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let (handle, _registry, _tracer) = start_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
        handle.shutdown();
    }

    #[test]
    fn drop_shuts_the_server_down() {
        let addr;
        {
            let (handle, _r, _t) = start_server();
            addr = handle.addr();
        }
        // After drop, new connections must fail (possibly after the OS
        // drains the backlog, so allow a few attempts).
        let mut refused = false;
        for _ in 0..20 {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
                Err(_) => {
                    refused = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert!(refused, "listener closed after handle drop");
    }
}
