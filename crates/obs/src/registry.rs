//! The metric registry: named families of labeled counters, gauges, and
//! histograms, plus the bounded structured-event buffer.
//!
//! A family is identified by metric name and holds one metric per distinct
//! label-value combination. Families and metrics live in `BTreeMap`s so
//! every snapshot and exporter walks them in a deterministic order — the
//! golden-output tests depend on that.
//!
//! Lookup takes a mutex; the returned handles do not. Instrumented code is
//! expected to resolve its handles once (at construction / before a kernel
//! runs) and then update them lock-free on the hot path.

use crate::log::{emit_stderr, Event, Level};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Maximum buffered events; older events are dropped first.
pub const EVENT_BUFFER_CAP: usize = 4096;

/// Kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum MetricCore {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by label pairs (name, value) in caller order.
    metrics: BTreeMap<Vec<(String, String)>, MetricCore>,
}

/// A point-in-time view of one metric (one label combination of a family).
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Family name.
    pub name: String,
    /// Family help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SnapshotValue,
}

/// Snapshot payload per metric kind.
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// The registry. Create one per process (or per test), share it via `Arc`,
/// and hand [`crate::Obs`] handles to the components you want instrumented.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
    events: Mutex<VecDeque<Event>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families = self.families.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let events = self.events.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        f.debug_struct("Registry")
            .field("families", &families.keys().collect::<Vec<_>>())
            .field("events", &events.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.metric(name, help, MetricKind::Counter, labels, || {
            MetricCore::Counter(Counter::real())
        }) {
            MetricCore::Counter(c) => c,
            // lint:allow(panic-path) metric() returns the requested kind by construction
            _ => unreachable!("kind checked in metric()"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.metric(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || MetricCore::Gauge(Gauge::real()),
        ) {
            MetricCore::Gauge(g) => g,
            // lint:allow(panic-path) metric() returns the requested kind by construction
            _ => unreachable!("kind checked in metric()"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.metric(name, help, MetricKind::Histogram, labels, || {
            MetricCore::Histogram(Histogram::real())
        }) {
            MetricCore::Histogram(h) => h,
            // lint:allow(panic-path) metric() returns the requested kind by construction
            _ => unreachable!("kind checked in metric()"),
        }
    }

    fn metric(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricCore,
    ) -> MetricCore {
        let mut families = self.families.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            metrics: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} but requested as {}",
            family.kind.name(),
            kind.name()
        );
        let key: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let core = family.metrics.entry(key).or_insert_with(make);
        match core {
            MetricCore::Counter(c) => MetricCore::Counter(c.clone()),
            MetricCore::Gauge(g) => MetricCore::Gauge(g.clone()),
            MetricCore::Histogram(h) => MetricCore::Histogram(h.clone()),
        }
    }

    /// Snapshot every metric, in deterministic (name, labels) order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let families = self.families.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, core) in family.metrics.iter() {
                let value = match core {
                    MetricCore::Counter(c) => SnapshotValue::Counter(c.get()),
                    MetricCore::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    MetricCore::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                };
                out.push(MetricSnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }

    /// Append an event to the buffer (dropping the oldest beyond
    /// [`EVENT_BUFFER_CAP`]) and mirror it to stderr when `COMMGRAPH_LOG`
    /// enables its level.
    pub fn push_event(&self, event: Event) {
        emit_stderr(&event);
        let mut events = self.events.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if events.len() >= EVENT_BUFFER_CAP {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// All buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Buffered events at or above `level` severity.
    pub fn events_at_least(&self, level: Level) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .filter(|e| e.level <= level)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_state() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("shard", "0")]);
        let b = r.counter("x_total", "help", &[("shard", "0")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        let other = r.counter("x_total", "help", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", "h", &[]);
        r.gauge("x", "h", &[]);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("b_total", "h", &[]).inc();
        r.counter("a_total", "h", &[("z", "1")]).inc();
        r.counter("a_total", "h", &[("a", "1")]).inc();
        let names: Vec<String> =
            r.snapshot().iter().map(|m| format!("{}{:?}", m.name, m.labels)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let r = Registry::new();
        for i in 0..(EVENT_BUFFER_CAP + 10) {
            r.push_event(Event {
                level: Level::Debug,
                target: "t".into(),
                message: format!("m{i}"),
                fields: vec![],
            });
        }
        let events = r.events();
        assert_eq!(events.len(), EVENT_BUFFER_CAP);
        assert_eq!(events[0].message, "m10", "oldest dropped first");
        assert_eq!(r.events_at_least(Level::Info).len(), 0);
    }
}
