//! Label-cardinality caps for per-tenant metric families.
//!
//! The ROADMAP's "millions of tenants" north star collides with a hard
//! observability rule: a metric registry must not grow one label value per
//! tenant. [`LabelCap`] is the shared gate — the first `cap` distinct
//! values get their own label; everything after lands in one explicit
//! [`OVERFLOW`] bucket, and each routed resolution is counted on
//! `commgraph_obs_label_overflow_total{family}` so the truncation is
//! visible, never silent.
//!
//! Conservation contract (pinned by the analytics tests): for *counter*
//! families, summing over all label values — including `overflow` —
//! equals the uncapped total. Gauges routed to `overflow` overwrite one
//! another (last writer wins); per-tenant gauge fidelity is only available
//! for admitted tenants, which is exactly the cap's point.

use crate::{Counter, Obs};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The label value shared by everything beyond the cap.
pub const OVERFLOW: &str = "overflow";

/// A first-come-first-admitted label-value cap for one metric family (or a
/// group of families sharing a label key).
#[derive(Debug)]
pub struct LabelCap {
    cap: usize,
    overflow: Counter,
    admitted: Mutex<BTreeSet<String>>,
}

impl LabelCap {
    /// A cap admitting `cap` distinct values, counting overflow routes on
    /// `commgraph_obs_label_overflow_total{family}`.
    pub fn new(obs: &Obs, family: &str, cap: usize) -> LabelCap {
        LabelCap {
            cap,
            overflow: obs.counter(
                "commgraph_obs_label_overflow_total",
                "Label resolutions routed to the overflow bucket by a cardinality cap.",
                &[("family", family)],
            ),
            admitted: Mutex::new(BTreeSet::new()),
        }
    }

    /// The label value to use for `value`: `value` itself while the cap has
    /// room (or `value` was admitted earlier), [`OVERFLOW`] afterwards.
    pub fn resolve(&self, value: &str) -> String {
        let mut admitted = self.admitted.lock().unwrap_or_else(|p| p.into_inner());
        if admitted.contains(value) {
            return value.to_string();
        }
        if admitted.len() < self.cap {
            admitted.insert(value.to_string());
            return value.to_string();
        }
        drop(admitted);
        self.overflow.inc();
        OVERFLOW.to_string()
    }

    /// Distinct values admitted so far (≤ the cap).
    pub fn admitted(&self) -> usize {
        self.admitted.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_cap_then_overflows() {
        let registry = Arc::new(Registry::new());
        let o = Obs::new(registry.clone());
        let cap = LabelCap::new(&o, "demo", 2);
        assert_eq!(cap.resolve("a"), "a");
        assert_eq!(cap.resolve("b"), "b");
        assert_eq!(cap.resolve("c"), OVERFLOW);
        assert_eq!(cap.resolve("a"), "a", "admitted values stay admitted");
        assert_eq!(cap.resolve("c"), OVERFLOW, "rejected values stay rejected");
        assert_eq!(cap.admitted(), 2);
        let routed =
            registry.counter("commgraph_obs_label_overflow_total", "", &[("family", "demo")]).get();
        assert_eq!(routed, 2, "every overflow route is counted");
    }

    #[test]
    fn counter_totals_are_conserved_across_the_cap() {
        let registry = Arc::new(Registry::new());
        let o = Obs::new(registry.clone());
        let cap = LabelCap::new(&o, "demo", 2);
        let mut uncapped_total = 0u64;
        for (tenant, n) in [("a", 10u64), ("b", 20), ("c", 30), ("d", 40)] {
            let label = cap.resolve(tenant);
            o.counter("demo_records_total", "h", &[("tenant", &label)]).add(n);
            uncapped_total += n;
        }
        let capped_sum: u64 = registry
            .snapshot()
            .iter()
            .filter(|m| m.name == "demo_records_total")
            .map(|m| match m.value {
                crate::SnapshotValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(capped_sum, uncapped_total, "overflow bucket conserves totals");
    }

    #[test]
    fn zero_cap_routes_everything_to_overflow() {
        let o = Obs::noop();
        let cap = LabelCap::new(&o, "demo", 0);
        assert_eq!(cap.resolve("anything"), OVERFLOW);
        assert_eq!(cap.admitted(), 0);
    }
}
