//! Shared rate arithmetic, so every "records per X" number in the workspace
//! divides the same way and guards the same edge cases.
//!
//! Two distinct semantics exist in this codebase and are easy to conflate:
//!
//! * **Wall-clock rate** ([`per_second`]): a raw count divided by elapsed
//!   wall time. This is what `EngineStats::records_per_sec` reports — it
//!   answers "how fast did the machine chew through the stream".
//! * **Per-bucket mean** ([`per_bucket`]): a total divided by the number of
//!   *occupied* time buckets, ignoring how long the run actually took. This
//!   is what `PipelineOutput::mean_records_per_minute` reports — it answers
//!   "how busy is a typical active minute", matching the paper's Table 1,
//!   and it deliberately does not count empty minutes inside gaps.
//!
//! Both return 0.0 rather than NaN/∞ when the denominator is zero.

/// Wall-clock rate: `count / elapsed_secs`, or 0.0 when no time elapsed.
pub fn per_second(count: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs <= 0.0 || !elapsed_secs.is_finite() {
        return 0.0;
    }
    count as f64 / elapsed_secs
}

/// Per-bucket mean: `total / buckets`, or 0.0 when no buckets exist.
pub fn per_bucket(total: u64, buckets: usize) -> f64 {
    if buckets == 0 {
        return 0.0;
    }
    total as f64 / buckets as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_denominators_yield_zero() {
        assert_eq!(per_second(100, 0.0), 0.0);
        assert_eq!(per_second(100, -1.0), 0.0);
        assert_eq!(per_second(100, f64::NAN), 0.0);
        assert_eq!(per_bucket(100, 0), 0.0);
    }

    /// Degenerate numerators and denominators never leak inf/NaN to callers
    /// (`EngineStats::records_per_sec`, bench reports, dashboards).
    #[test]
    fn results_are_always_finite() {
        assert_eq!(per_second(100, f64::INFINITY), 0.0);
        assert_eq!(per_second(0, 0.0), 0.0);
        assert_eq!(per_second(u64::MAX, 1.0), u64::MAX as f64);
        for (count, secs) in [(0u64, 0.0f64), (7, -0.0), (u64::MAX, f64::NAN)] {
            assert!(per_second(count, secs).is_finite());
        }
        assert!(per_bucket(u64::MAX, 1).is_finite());
    }

    #[test]
    fn ordinary_division() {
        assert_eq!(per_second(100, 4.0), 25.0);
        assert_eq!(per_bucket(9, 6), 1.5);
    }
}
