//! The canonical metric-name table — the single source of truth for every
//! `commgraph_*` metric the workspace emits.
//!
//! Dashboards, exporters, and the `lintcheck` metric-registry lint all read
//! this table. A metric that is not listed here does not exist: the lint
//! (`cargo run -p lintcheck`) rejects any `commgraph_*` string literal in the
//! workspace that has no entry, rejects table entries no code references,
//! and rejects call sites that register a name with a kind other than the
//! one declared here.
//!
//! Naming contract: `commgraph_<component>_<what>_<unit>` in snake_case. The
//! final segment must be one of [`ALLOWED_SUFFIXES`] — `_total` for
//! counters, a unit (`_seconds`, `_bytes`, `_records`, …) or a counted noun
//! (`_entries`, `_segments`, `_rules`, …) for gauges and histograms.

use crate::registry::MetricKind;

/// One canonical metric family definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Full metric name (`commgraph_...`, snake_case, unit-suffixed).
    pub name: &'static str,
    /// Kind every registration site must use.
    pub kind: MetricKind,
    /// Canonical help text; exporters prefer this over per-site help.
    pub help: &'static str,
    /// Label keys, in registration order. Empty for unlabeled families.
    pub labels: &'static [&'static str],
}

/// Suffixes a metric name may end with (the "unit" of the naming contract).
pub const ALLOWED_SUFFIXES: &[&str] = &[
    "total",
    "seconds",
    "bytes",
    "records",
    "entries",
    "score",
    "segments",
    "rules",
    "threshold",
    "ratio",
    "nodes",
    "edges",
];

/// Every metric family the workspace may emit, sorted by name.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        name: "commgraph_alert_eval_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds per alert-rule evaluation pass.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_alert_firing_entries",
        kind: MetricKind::Gauge,
        help: "Alert rules currently in the firing state.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_alert_transitions_total",
        kind: MetricKind::Counter,
        help: "Alert state-machine transitions, by rule and entered state.",
        labels: &["rule", "state"],
    },
    MetricDef {
        name: "commgraph_engine_batch_records",
        kind: MetricKind::Histogram,
        help: "Records per ingested batch.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_batches_total",
        kind: MetricKind::Counter,
        help: "Batches offered to StreamEngine::ingest.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_dropped_records_total",
        kind: MetricKind::Counter,
        help: "Records dropped before aggregation (vantage dedup), tallied at engine finish.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_ingest_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds per ingest call (shard + enqueue, including backpressure).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_records_in_total",
        kind: MetricKind::Counter,
        help: "Records offered to StreamEngine::ingest.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_records_kept_total",
        kind: MetricKind::Counter,
        help: "Records surviving vantage dedup (aggregated into shards).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_engine_shard_edge_entries",
        kind: MetricKind::Gauge,
        help: "Distinct edge entries held by one shard at finish.",
        labels: &["shard"],
    },
    MetricDef {
        name: "commgraph_engine_worker_busy_seconds",
        kind: MetricKind::Histogram,
        help: "Per-worker time spent aggregating batches over the engine's lifetime.",
        labels: &["worker"],
    },
    MetricDef {
        name: "commgraph_incremental_savings_seconds",
        kind: MetricKind::Histogram,
        help: "Estimated per-window seconds saved by incremental maintenance vs the most recent full rebuild.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_ingest_watermark_seconds",
        kind: MetricKind::Gauge,
        help: "High-water record timestamp (seconds since trace start) seen by an ingest path.",
        labels: &["source"],
    },
    MetricDef {
        name: "commgraph_lint_callgraph_edges",
        kind: MetricKind::Gauge,
        help: "Call edges resolved by the latest lintcheck interprocedural sweep.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_lint_callgraph_nodes",
        kind: MetricKind::Gauge,
        help: "Functions indexed by the latest lintcheck interprocedural sweep.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_lint_findings_total",
        kind: MetricKind::Counter,
        help: "Findings produced by one lintcheck sweep, by lint name.",
        labels: &["lint"],
    },
    MetricDef {
        name: "commgraph_lint_sweep_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds per full lintcheck workspace sweep.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_louvain_levels_total",
        kind: MetricKind::Counter,
        help: "Aggregation levels performed by Louvain runs.",
        labels: &["mode"],
    },
    MetricDef {
        name: "commgraph_louvain_moves_total",
        kind: MetricKind::Counter,
        help: "Node moves applied by Louvain's local-move phase.",
        labels: &["mode"],
    },
    MetricDef {
        name: "commgraph_louvain_sweeps_total",
        kind: MetricKind::Counter,
        help: "Local-move sweeps executed by Louvain clustering.",
        labels: &["mode"],
    },
    MetricDef {
        name: "commgraph_monitor_anomalous_windows_total",
        kind: MetricKind::Counter,
        help: "Enforced windows whose anomaly score exceeded the threshold.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_anomaly_score",
        kind: MetricKind::Histogram,
        help: "Per-window anomaly score (ratio over the baseline noise floor).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_baseline_allow_rules",
        kind: MetricKind::Gauge,
        help: "Allow rules in the learned baseline policy.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_baseline_anomaly_threshold",
        kind: MetricKind::Gauge,
        help: "Calibrated anomaly threshold of the learned baseline.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_baseline_segments",
        kind: MetricKind::Gauge,
        help: "\u{b5}segments in the learned baseline.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_violations_total",
        kind: MetricKind::Counter,
        help: "Policy violations detected in enforced windows (uncapped).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_monitor_windows_total",
        kind: MetricKind::Counter,
        help: "Windows closed by the security monitor, by lifecycle phase.",
        labels: &["phase"],
    },
    MetricDef {
        name: "commgraph_obs_label_overflow_total",
        kind: MetricKind::Counter,
        help: "Label resolutions routed to the overflow bucket by a cardinality cap.",
        labels: &["family"],
    },
    MetricDef {
        name: "commgraph_par_tiles_total",
        kind: MetricKind::Counter,
        help: "Tiles/tasks scheduled by the data-parallel work queues.",
        labels: &["shape"],
    },
    MetricDef {
        name: "commgraph_par_worker_busy_seconds",
        kind: MetricKind::Histogram,
        help: "Per-worker busy time of one scheduler invocation.",
        labels: &["shape"],
    },
    MetricDef {
        name: "commgraph_pipeline_dropped_late_records_total",
        kind: MetricKind::Counter,
        help: "Dedup-surviving records dropped because their window had already closed when they arrived.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_pipeline_late_records_total",
        kind: MetricKind::Counter,
        help: "Dedup-surviving records arriving behind the pipeline's ingest watermark (out-of-order input).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_query_rule_eval_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds per recording-rule evaluation pass.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_query_rule_series_total",
        kind: MetricKind::Counter,
        help: "Series written per recording-rule evaluation.",
        labels: &["rule"],
    },
    MetricDef {
        name: "commgraph_serve_requests_total",
        kind: MetricKind::Counter,
        help: "HTTP requests served by the introspection server, by endpoint.",
        labels: &["path"],
    },
    MetricDef {
        name: "commgraph_shard_subscription_entries",
        kind: MetricKind::Gauge,
        help: "Subscriptions resident in one shard slot of the sharded engine.",
        labels: &["shard"],
    },
    MetricDef {
        name: "commgraph_stage_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds spent per streaming-pipeline stage.",
        labels: &["stage"],
    },
    MetricDef {
        name: "commgraph_subscription_dedup_dropped_records_total",
        kind: MetricKind::Counter,
        help: "Duplicate flush batches discarded by delivery dedup at the sharded front door, in records, per subscription.",
        labels: &["subscription"],
    },
    MetricDef {
        name: "commgraph_subscription_dirty_nodes",
        kind: MetricKind::Gauge,
        help: "Dirty-set size of the most recent analyzed window, per subscription.",
        labels: &["subscription"],
    },
    MetricDef {
        name: "commgraph_subscription_records_total",
        kind: MetricKind::Counter,
        help: "Records ingested per subscription through the sharded front door.",
        labels: &["subscription"],
    },
    MetricDef {
        name: "commgraph_subscription_roll_lag_seconds",
        kind: MetricKind::Gauge,
        help: "Lag between the newest window's nominal start and the record that rolled it open, per subscription.",
        labels: &["subscription"],
    },
    MetricDef {
        name: "commgraph_subscription_watermark_seconds",
        kind: MetricKind::Gauge,
        help: "High-water record timestamp seen per subscription.",
        labels: &["subscription"],
    },
    MetricDef {
        name: "commgraph_tsdb_evicted_samples_total",
        kind: MetricKind::Counter,
        help: "Samples evicted from full series rings (bounded-retention loss).",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_tsdb_memory_bytes",
        kind: MetricKind::Gauge,
        help: "Estimated heap bytes held by the time-series store.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_tsdb_samples_total",
        kind: MetricKind::Counter,
        help: "Samples appended to the in-memory time-series store.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_tsdb_scrape_seconds",
        kind: MetricKind::Histogram,
        help: "Wall-clock seconds per registry scrape into the time-series store.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_tsdb_series_entries",
        kind: MetricKind::Gauge,
        help: "Series currently retained by the time-series store.",
        labels: &[],
    },
    MetricDef {
        name: "commgraph_window_dirty_nodes",
        kind: MetricKind::Histogram,
        help: "Dirty-set size per rolled window (nodes whose adjacency changed since the previous window).",
        labels: &["source"],
    },
    MetricDef {
        name: "commgraph_window_roll_lag_seconds",
        kind: MetricKind::Histogram,
        help: "Lag between a window's nominal start and the record that rolled it open.",
        labels: &["source"],
    },
];

/// Look up the canonical definition for `name`.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    METRICS.binary_search_by(|d| d.name.cmp(name)).ok().map(|i| &METRICS[i])
}

/// True when `name` obeys the naming contract: `commgraph_` prefix,
/// `snake_case` segments, and a final segment from [`ALLOWED_SUFFIXES`].
pub fn well_formed(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("commgraph_") else { return false };
    if rest.is_empty() || rest.starts_with('_') || rest.ends_with('_') || rest.contains("__") {
        return false;
    }
    if !rest.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
        return false;
    }
    match rest.rsplit('_').next() {
        Some(last) => ALLOWED_SUFFIXES.contains(&last),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for pair in METRICS.windows(2) {
            assert!(pair[0].name < pair[1].name, "{} !< {}", pair[0].name, pair[1].name);
        }
    }

    #[test]
    fn every_entry_is_well_formed() {
        for def in METRICS {
            assert!(well_formed(def.name), "malformed canonical name {}", def.name);
            assert!(!def.help.is_empty(), "{} has no help text", def.name);
            if def.kind == MetricKind::Counter {
                assert!(def.name.ends_with("_total"), "counter {} must end _total", def.name);
            }
        }
    }

    #[test]
    fn lookup_finds_every_entry_and_rejects_strangers() {
        for def in METRICS {
            assert_eq!(lookup(def.name).map(|d| d.kind), Some(def.kind));
        }
        assert!(lookup("commgraph_made_up_total").is_none());
        assert!(lookup("").is_none());
    }

    #[test]
    fn well_formed_enforces_the_grammar() {
        assert!(well_formed("commgraph_stage_seconds"));
        assert!(!well_formed("commgraph_StageSeconds"), "no camel case");
        assert!(!well_formed("commgraph_stage"), "needs a unit suffix");
        assert!(!well_formed("commgraph__stage_seconds"), "no empty segments");
        assert!(!well_formed("stage_seconds"), "needs the commgraph_ prefix");
    }
}
