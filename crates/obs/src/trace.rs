//! Hierarchical spans and the bounded **flight recorder**.
//!
//! [`SpanGuard`](crate::SpanGuard) answers "how long does this stage take in
//! aggregate"; this module answers "what did *this run* look like on a
//! timeline". A [`Tracer`] hands out [`TraceSpan`]s with a trace-unique id,
//! an implicit parent (the innermost span still open on this tracer), typed
//! string attributes, and point-in-time [`SpanEvent`]s. Finished spans land
//! in a bounded ring — the flight recorder — so the last moments before an
//! anomaly survive for a post-mortem [`FlightDump`].
//!
//! Cost model mirrors the rest of the crate: a disabled [`TraceSpan`]
//! (`TraceSpan::noop()`, or any span minted through a tracer-less
//! [`Obs`](crate::Obs)) is one `Option` branch — it never reads the clock,
//! never locks, never allocates. Results of traced runs are bit-for-bit
//! identical to untraced runs.
//!
//! Two exporters read a dump back out: [`chrome_trace_json`] emits the
//! Chrome trace-event format (open the file in Perfetto / `about:tracing`)
//! and [`render_tree`] prints an indented text tree for terminals.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default capacity of the flight-recorder ring ([`Tracer::with_default_capacity`]).
pub const DEFAULT_FLIGHT_CAP: usize = 1024;

/// A point-in-time annotation inside a span (e.g. "anomaly detected").
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name.
    pub name: String,
    /// Seconds since the tracer epoch when the event fired.
    pub at_secs: f64,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

/// One finished span as retained by the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace-unique span id (1-based, monotonically assigned).
    pub id: u64,
    /// Parent span id, if this span opened while another was still open.
    pub parent: Option<u64>,
    /// Span name (stage or operation).
    pub name: String,
    /// Seconds since the tracer epoch when the span opened.
    pub start_secs: f64,
    /// Span duration in seconds (never negative).
    pub dur_secs: f64,
    /// Attributes set via [`TraceSpan::attr`], in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Events added via [`TraceSpan::add_event`], in order.
    pub events: Vec<SpanEvent>,
}

/// A snapshot of the flight recorder, oldest span first.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Ring capacity the tracer was built with.
    pub capacity: usize,
    /// Finished spans evicted because the ring was full.
    pub dropped: u64,
    /// Spans still open (started, not yet finished) at dump time.
    pub open_spans: usize,
    /// Retained finished spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug, Default)]
struct FlightRecorder {
    cap: usize,
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

impl FlightRecorder {
    fn push(&mut self, rec: SpanRecord) {
        while self.spans.len() >= self.cap.max(1) {
            self.spans.pop_front();
            self.dropped += 1;
        }
        if self.cap > 0 {
            self.spans.push_back(rec);
        } else {
            self.dropped += 1;
        }
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    recorder: FlightRecorder,
    /// Ids of spans started but not yet finished, in start order. The last
    /// entry is the implicit parent of the next span.
    open: Vec<u64>,
}

/// Mints spans, tracks the open-span stack for implicit parenting, and owns
/// the flight-recorder ring. Shared as `Arc<Tracer>`; all methods take
/// `&self` and are thread-safe (one short mutex hold per span open/close).
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_FLIGHT_CAP)
    }
}

impl Tracer {
    /// A tracer whose flight recorder retains the last `capacity` finished
    /// spans (capacity 0 records nothing but still counts drops).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            inner: Mutex::new(TracerInner {
                recorder: FlightRecorder { cap: capacity, ..Default::default() },
                open: Vec::new(),
            }),
        }
    }

    /// A tracer with [`DEFAULT_FLIGHT_CAP`] retained spans.
    pub fn with_default_capacity() -> Self {
        Tracer::default()
    }

    /// Lock the inner state, recovering from poisoning (a panicking span
    /// holder must not take tracing down with it).
    fn lock(&self) -> MutexGuard<'_, TracerInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Open a span named `name` whose parent is the innermost span still
    /// open on this tracer (implicit parenting), or a root if none is.
    pub fn span(self: &Arc<Self>, name: &str) -> TraceSpan {
        let start_secs = self.epoch.elapsed().as_secs_f64();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut inner = self.lock();
            let parent = inner.open.last().copied();
            inner.open.push(id);
            parent
        };
        TraceSpan {
            tracer: Some(self.clone()),
            id,
            parent,
            name: name.to_string(),
            start_secs,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Open a span with no parent regardless of what is currently open —
    /// use for per-run roots (`pipeline_run`, `monitor_run`).
    pub fn root_span(self: &Arc<Self>, name: &str) -> TraceSpan {
        let mut span = self.span(name);
        span.parent = None;
        span
    }

    /// Snapshot the flight recorder (oldest retained span first).
    pub fn dump(&self) -> FlightDump {
        let inner = self.lock();
        FlightDump {
            capacity: inner.recorder.cap,
            dropped: inner.recorder.dropped,
            open_spans: inner.open.len(),
            spans: inner.recorder.spans.iter().cloned().collect(),
        }
    }

    /// Seconds since this tracer's epoch (the timebase of all records).
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn close(&self, id: u64, rec: SpanRecord) {
        let mut inner = self.lock();
        // Search from the end: the closing span is almost always innermost.
        if let Some(pos) = inner.open.iter().rposition(|&open_id| open_id == id) {
            inner.open.remove(pos);
        }
        inner.recorder.push(rec);
    }
}

/// An open span handle. Enabled spans record into their tracer's flight
/// recorder when finished (explicitly via [`TraceSpan::finish`] or on drop);
/// the noop form is inert — one branch, no clock, no allocation.
#[derive(Debug)]
pub struct TraceSpan {
    tracer: Option<Arc<Tracer>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_secs: f64,
    attrs: Vec<(String, String)>,
    events: Vec<SpanEvent>,
}

impl TraceSpan {
    /// The inert span (what a tracer-less [`Obs`](crate::Obs) hands out).
    pub fn noop() -> Self {
        TraceSpan {
            tracer: None,
            id: 0,
            parent: None,
            name: String::new(),
            start_secs: 0.0,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    /// True when backed by a tracer. Use to skip building attribute strings
    /// on disabled paths.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// This span's trace-unique id (0 for the noop span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach (or append) a string attribute. No-op when disabled.
    pub fn attr(&mut self, key: &str, value: &str) {
        if self.tracer.is_some() {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Record a point-in-time event inside this span. No-op when disabled.
    pub fn add_event(&mut self, name: &str, fields: &[(&str, String)]) {
        if let Some(tracer) = &self.tracer {
            let at_secs = tracer.now_secs();
            self.events.push(SpanEvent {
                name: name.to_string(),
                at_secs,
                fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            });
        }
    }

    /// Finish now and return the span's duration in seconds (0.0 when
    /// disabled — the clock is never read). Recorded exactly once.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let Some(tracer) = self.tracer.take() else { return 0.0 };
        let end_secs = tracer.now_secs();
        let dur_secs = (end_secs - self.start_secs).max(0.0);
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_secs: self.start_secs,
            dur_secs,
            attrs: std::mem::take(&mut self.attrs),
            events: std::mem::take(&mut self.events),
        };
        tracer.close(self.id, rec);
        dur_secs
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.close();
    }
}

/// Render a dump in the Chrome trace-event JSON format: complete (`"X"`)
/// events for spans, instant (`"i"`) events for span events, timestamps in
/// microseconds since the tracer epoch. All events share `pid`/`tid` 1, so
/// viewers (Perfetto, `about:tracing`) nest them by time containment; the
/// explicit ids travel in `args.span_id` / `args.parent_id`.
pub fn chrome_trace_json(dump: &FlightDump) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut spans: Vec<&SpanRecord> = dump.spans.iter().collect();
    spans.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs).then(a.id.cmp(&b.id)));
    let mut first = true;
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"commgraph\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":{},\"dur\":{},\"args\":{{\"span_id\":\"{}\",\"parent_id\":\"{}\"",
            crate::export::json_str(&s.name),
            micros(s.start_secs),
            micros(s.dur_secs),
            s.id,
            s.parent.map(|p| p.to_string()).unwrap_or_default(),
        );
        for (k, v) in &s.attrs {
            let _ = write!(out, ",{}:{}", crate::export::json_str(k), crate::export::json_str(v));
        }
        out.push_str("}}");
        for e in &s.events {
            let _ = write!(
                out,
                ",{{\"name\":{},\"cat\":\"commgraph\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
                 \"ts\":{},\"s\":\"t\",\"args\":{{\"span_id\":\"{}\"",
                crate::export::json_str(&e.name),
                micros(e.at_secs),
                s.id,
            );
            for (k, v) in &e.fields {
                let _ =
                    write!(out, ",{}:{}", crate::export::json_str(k), crate::export::json_str(v));
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Render a dump as an indented text tree (children under parents, siblings
/// in start order), with per-span durations, attributes, and events. Spans
/// whose parent was evicted from the ring render at the top level.
pub fn render_tree(dump: &FlightDump) -> String {
    let mut out = format!(
        "flight recorder: {} span(s) retained (capacity {}, {} dropped, {} still open)\n",
        dump.spans.len(),
        dump.capacity,
        dump.dropped,
        dump.open_spans
    );
    let retained: std::collections::BTreeSet<u64> = dump.spans.iter().map(|s| s.id).collect();
    let mut order: Vec<&SpanRecord> = dump.spans.iter().collect();
    order.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs).then(a.id.cmp(&b.id)));
    let mut children: std::collections::BTreeMap<u64, Vec<&SpanRecord>> = Default::default();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &order {
        match s.parent.filter(|p| retained.contains(p)) {
            Some(p) => children.entry(p).or_default().push(s),
            None => roots.push(s),
        }
    }
    let mut stack: Vec<(&SpanRecord, usize)> = roots.into_iter().rev().map(|s| (s, 0)).collect();
    while let Some((s, depth)) = stack.pop() {
        let indent = "  ".repeat(depth);
        let _ = write!(out, "{indent}{} [{}] {:.3} ms", s.name, s.id, s.dur_secs * 1e3);
        for (k, v) in &s.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for e in &s.events {
            let _ = write!(out, "{indent}  ! {} @ {:.3} ms", e.name, e.at_secs * 1e3);
            for (k, v) in &e.fields {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        if let Some(kids) = children.get(&s.id) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    out
}

/// Seconds → integer microseconds, clamped non-negative.
fn micros(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e6).round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_open_order() {
        let t = Arc::new(Tracer::new(16));
        let root = t.span("root");
        let child = t.span("child");
        let grandchild = t.span("grandchild");
        drop(grandchild);
        drop(child);
        drop(root);
        let dump = t.dump();
        assert_eq!(dump.spans.len(), 3);
        assert_eq!(dump.open_spans, 0);
        let by_name =
            |n: &str| dump.spans.iter().find(|s| s.name == n).expect("span recorded").clone();
        let root = by_name("root");
        let child = by_name("child");
        let grand = by_name("grandchild");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(grand.parent, Some(child.id));
        assert!(root.dur_secs >= child.dur_secs);
        assert!(root.start_secs <= child.start_secs);
    }

    #[test]
    fn root_span_ignores_the_open_stack() {
        let t = Arc::new(Tracer::new(16));
        let outer = t.span("outer");
        let root = t.root_span("fresh_root");
        assert_ne!(root.id(), 0);
        drop(root);
        drop(outer);
        let dump = t.dump();
        assert_eq!(dump.spans.iter().find(|s| s.name == "fresh_root").unwrap().parent, None);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Arc::new(Tracer::new(2));
        for i in 0..5 {
            t.span(&format!("s{i}")).finish();
        }
        let dump = t.dump();
        assert_eq!(dump.spans.len(), 2);
        assert_eq!(dump.dropped, 3);
        assert_eq!(dump.spans[0].name, "s3");
        assert_eq!(dump.spans[1].name, "s4");
        assert_eq!(dump.capacity, 2);
    }

    #[test]
    fn attrs_and_events_survive_into_the_record() {
        let t = Arc::new(Tracer::new(8));
        let mut s = t.span("window");
        s.attr("records", "42");
        s.add_event("anomaly", &[("score", "3.5".to_string())]);
        let dur = s.finish();
        assert!(dur >= 0.0);
        let dump = t.dump();
        let rec = &dump.spans[0];
        assert_eq!(rec.attrs, vec![("records".to_string(), "42".to_string())]);
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.events[0].name, "anomaly");
        assert!(rec.events[0].at_secs >= rec.start_secs);
    }

    #[test]
    fn noop_span_is_inert() {
        let mut s = TraceSpan::noop();
        assert!(!s.is_enabled());
        assert_eq!(s.id(), 0);
        s.attr("k", "v");
        s.add_event("e", &[]);
        assert_eq!(s.finish(), 0.0);
    }

    #[test]
    fn chrome_export_shape() {
        let t = Arc::new(Tracer::new(8));
        let mut root = t.span("pipeline_run");
        root.attr("scale", "0.1");
        let child = t.span("ingest");
        child.finish();
        root.add_event("mark", &[]);
        root.finish();
        let json = chrome_trace_json(&t.dump());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"pipeline_run\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"scale\":\"0.1\""));
        // The child's parent_id must be the root's span_id.
        let root_rec = t.dump().spans.iter().find(|s| s.name == "pipeline_run").unwrap().clone();
        assert!(json.contains(&format!("\"parent_id\":\"{}\"", root_rec.id)));
    }

    #[test]
    fn tree_renders_nesting_and_orphans() {
        let t = Arc::new(Tracer::new(2));
        let root = t.span("root");
        t.span("a").finish();
        t.span("b").finish(); // evicts nothing yet (cap 2: a,b)
        root.finish(); // evicts a → root's children partially orphaned
        let tree = render_tree(&t.dump());
        assert!(tree.contains("flight recorder: 2 span(s) retained"));
        assert!(tree.contains("root"));
        // `b` is a child of the retained root; indented.
        assert!(tree.contains("  b ["), "{tree}");
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let t = Arc::new(Tracer::new(0));
        t.span("x").finish();
        let dump = t.dump();
        assert!(dump.spans.is_empty());
        assert_eq!(dump.dropped, 1);
    }
}
