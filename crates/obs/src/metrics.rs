//! Metric primitives: atomic counters, gauges, and a log-linear histogram.
//!
//! Every public type here is a *handle*: a cheap clone around an optional
//! `Arc` to the shared core. A handle without a core (the "noop" form) is
//! what uninstrumented code paths carry — every operation on it is a single
//! branch on a `None`, no allocation, no atomics, no syscalls. That is the
//! mechanism behind the crate-wide promise that observability costs nothing
//! until a [`crate::Registry`] is installed.
//!
//! The histogram uses log-linear buckets: each decade `[10^d, 10^(d+1))` is
//! split into 45 linear sub-buckets whose bounds have two significant digits
//! (1.2, 1.4, …, 9.8, 10), so the worst-case relative bucket width is 20%
//! and exported `le` labels render cleanly. The record path is lock-free:
//! a binary search over the static bound table plus a handful of relaxed
//! atomic updates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Smallest finite histogram bound decade (`10^MIN_DECADE`).
const MIN_DECADE: i32 = -9;
/// Largest finite histogram bound decade (bounds reach `10^(MAX_DECADE+1)`).
const MAX_DECADE: i32 = 9;
/// Linear sub-buckets per decade.
const SUBBUCKETS: usize = 45;

/// Upper bucket bounds shared by every histogram, built once per process.
///
/// `bounds()[0] == 1e-9`; thereafter each decade contributes 45 bounds of
/// the form `m × 10^(d-1)` for even `m` in `12..=100`.
pub fn bounds() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = Vec::with_capacity(1 + SUBBUCKETS * (MAX_DECADE - MIN_DECADE + 1) as usize);
        b.push(pow10(MIN_DECADE));
        for d in MIN_DECADE..=MAX_DECADE {
            for m in (12..=100u32).step_by(2) {
                // m × 10^(d-1), computed so the f64 is correctly rounded and
                // prints with two significant digits (divide by an exact
                // power of ten instead of multiplying by an inexact one).
                let v = if d >= 1 { m as f64 * pow10(d - 1) } else { m as f64 / pow10(1 - d) };
                b.push(v);
            }
        }
        b
    })
}

fn pow10(e: i32) -> f64 {
    10f64.powi(e)
}

/// Index of the bucket a value falls into: bucket `i` counts values in
/// `[bounds()[i-1], bounds()[i])`, bucket `0` everything below `bounds()[0]`
/// (including zero, negatives, and NaN), and the last bucket everything at
/// or above the final bound.
pub fn bucket_index(v: f64) -> usize {
    let b = bounds();
    if v.is_nan() {
        return 0;
    }
    b.partition_point(|bound| *bound <= v)
}

// ------------------------------------------------------------------ counter

/// Shared state of a counter.
#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

/// A monotonically increasing counter handle.
///
/// Clones share the same underlying value. [`Counter::noop`] handles ignore
/// every update at the cost of one branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCore>>);

impl Counter {
    /// A handle that ignores every operation.
    pub fn noop() -> Self {
        Counter(None)
    }

    pub(crate) fn real() -> Self {
        Counter(Some(Arc::new(CounterCore::default())))
    }

    /// True when updates are actually recorded somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a noop handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

// -------------------------------------------------------------------- gauge

/// Shared state of a gauge (an `f64` stored as its bit pattern).
#[derive(Debug)]
pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

impl Default for GaugeCore {
    fn default() -> Self {
        GaugeCore { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// A handle that ignores every operation.
    pub fn noop() -> Self {
        Gauge(None)
    }

    pub(crate) fn real() -> Self {
        Gauge(Some(Arc::new(GaugeCore::default())))
    }

    /// True when updates are actually recorded somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative) with a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match g.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Current value (0.0 for a noop handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.bits.load(Ordering::Relaxed)))
    }
}

// ---------------------------------------------------------------- histogram

/// Shared state of a histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// `bounds().len() + 1` buckets; see [`bucket_index`].
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, stored as f64 bits, updated via CAS.
    sum_bits: AtomicU64,
    /// Maximum recorded value, stored as f64 bits, updated via CAS.
    max_bits: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: (0..=bounds().len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// One bucket of a histogram snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Upper bound of the bucket (`f64::INFINITY` for the overflow bucket).
    pub le: f64,
    /// Cumulative count of observations at or below `le`.
    pub cumulative: u64,
}

/// A point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Largest recorded value (0.0 when empty).
    pub max: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Non-empty buckets with cumulative counts, in bound order.
    pub buckets: Vec<BucketCount>,
}

/// A histogram handle with a lock-free record path.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores every operation.
    pub fn noop() -> Self {
        Histogram(None)
    }

    pub(crate) fn real() -> Self {
        Histogram(Some(Arc::new(HistogramCore::default())))
    }

    /// True when observations are actually recorded somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let Some(h) = &self.0 else { return };
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&h.sum_bits, |cur| cur + v);
        cas_f64(&h.max_bits, |cur| cur.max(v));
    }

    /// Observations recorded (0 for a noop handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (0.0 for a noop handle).
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |h| f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
    }

    /// Largest recorded value (0.0 when empty or noop).
    pub fn max(&self) -> f64 {
        let m = self
            .0
            .as_ref()
            .map_or(f64::NEG_INFINITY, |h| f64::from_bits(h.max_bits.load(Ordering::Relaxed)));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank. Accuracy is bounded by the
    /// 20% worst-case bucket width. Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(h) = &self.0 else { return 0.0 };
        let total = h.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let max = self.max();
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let b = bounds();
        let mut cum = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if (cum as f64) < rank {
                continue;
            }
            // Interpolate within [lo, hi): the bucket's value range.
            let lo = if i == 0 { 0.0 } else { b[i - 1] };
            let hi = if i < b.len() { b[i].min(max) } else { max };
            let frac = (rank - before as f64) / c as f64;
            return (lo + frac * (hi - lo).max(0.0)).min(max);
        }
        max
    }

    /// A consistent-enough point-in-time snapshot (buckets are read after
    /// the count, so a snapshot taken under concurrent writes may lag by a
    /// few observations but is never torn per bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: Vec::new(),
        };
        if let Some(h) = &self.0 {
            let b = bounds();
            let mut cum = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                let c = bucket.load(Ordering::Relaxed);
                if c == 0 {
                    continue;
                }
                cum += c;
                let le = if i < b.len() { b[i] } else { f64::INFINITY };
                snap.buckets.push(BucketCount { le, cumulative: cum });
            }
        }
        snap
    }
}

/// CAS loop applying `f` to an `f64` stored as bits in an `AtomicU64`.
fn cas_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sorted_and_two_significant_digits() {
        let b = bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(b[0], 1e-9);
        assert_eq!(*b.last().unwrap(), 1e10);
        // Spot-check clean rendering: the whole point of the m/10^k scheme.
        assert!(b.iter().any(|v| format!("{v}") == "1.4"));
        assert!(b.iter().any(|v| format!("{v}") == "0.00012"));
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(5e-10), 0);
        // 1.0 is an exact bound, so it lands in the bucket above it.
        let i = bucket_index(1.0);
        assert!(bounds()[i - 1] <= 1.0 && 1.0 < bounds()[i]);
        assert_eq!(bucket_index(1e12), bounds().len());
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        let g = Gauge::noop();
        g.set(5.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::real();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::real();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::real();
        for v in [0.001, 0.01, 0.01, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 10.021).abs() < 1e-9);
        assert_eq!(h.max(), 10.0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.last().unwrap().cumulative, 4);
    }
}
