//! A deterministic PromQL-subset engine over the [`Tsdb`].
//!
//! Hand-rolled and zero-dependency: a lexer, a recursive-descent parser into
//! a typed AST, and an evaluator that runs on **injected logical ticks** —
//! no wall clock anywhere, so the same store state and the same expression
//! always produce byte-identical output (the `/query_range` replay
//! contract).
//!
//! Supported surface (full EBNF and semantics in `DESIGN.md` §6):
//!
//! * instant selectors `name{key="v",other!="x*"}` — label matchers are
//!   exact (`=`), negated (`!=`), and simple `*` globs; the sample field of
//!   a histogram sub-series is addressed as a synthetic `field` label
//!   (`{field="p95"}`) and is carried through output labels for every
//!   non-`value` field;
//! * range selectors `name{...}[w]` (`w` in ticks) feeding the range
//!   functions `rate`, `increase`, `delta`, `avg_over_time`,
//!   `max_over_time`, `min_over_time`, `sum_over_time`, `count_over_time`,
//!   and `absent_over_time`;
//! * label aggregations `sum/avg/min/max/count` with optional `by (...)` /
//!   `without (...)` grouping;
//! * scalar arithmetic `+ - * /`, comparisons `== != > >= < <=`
//!   (vector comparisons filter, scalar-scalar comparisons yield `1`/`0`),
//!   and the set operators `and`, `or`, `unless`;
//! * helper functions `histogram_quantile(q, sel)`, `clamp_min`,
//!   `clamp_max`, two-argument scalar `min`/`max`, and `tick()` (the
//!   current evaluation tick as a scalar).
//!
//! Evaluation reads **the newest sample at or before the tick** with no
//! staleness cutoff, mirroring [`Tsdb::latest_at`]; `increase` reproduces
//! [`Tsdb::window_delta`] exactly (including its oldest-retained-sample
//! fallback), which is what lets [`crate::alert::query_pack`] replicate the
//! hard-coded alert pack transition-for-transition. Counter resets are not
//! compensated. Output vectors are sorted by `(name, labels)` via
//! `BTreeMap` ordering at every step, never by hash order.

use crate::tsdb::{Query, SampleField, SeriesKey, Tsdb};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A syntax or arity error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source expression.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A runtime evaluation error (type mismatch, many-to-many match, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {}", self.msg)
    }
}

impl std::error::Error for EvalError {}

fn eval_err(msg: impl Into<String>) -> EvalError {
    EvalError { msg: msg.into() }
}

/// Either phase of [`query_range_json`] failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The expression did not parse.
    Parse(ParseError),
    /// The expression did not evaluate.
    Eval(EvalError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => e.fmt(f),
            QueryError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    /// `=` (matcher equality).
    Eq,
    /// `==` (value comparison).
    EqEq,
    /// `!=` (matcher negation or value comparison, by context).
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
    Plus,
    Minus,
    Star,
    Slash,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::Str(_) => "string".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::EqEq => "`==`".to_string(),
            Tok::Ne => "`!=`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::Ge => "`>=`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::Le => "`<=`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Minus => "`-`".to_string(),
            Tok::Star => "`*`".to_string(),
            Tok::Slash => "`/`".to_string(),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == ':'
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '(' => out.push((Tok::LParen, pos)),
            ')' => out.push((Tok::RParen, pos)),
            '{' => out.push((Tok::LBrace, pos)),
            '}' => out.push((Tok::RBrace, pos)),
            '[' => out.push((Tok::LBracket, pos)),
            ']' => out.push((Tok::RBracket, pos)),
            ',' => out.push((Tok::Comma, pos)),
            '+' => out.push((Tok::Plus, pos)),
            '-' => out.push((Tok::Minus, pos)),
            '*' => out.push((Tok::Star, pos)),
            '/' => out.push((Tok::Slash, pos)),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::EqEq, pos));
                    i += 1;
                } else {
                    out.push((Tok::Eq, pos));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, pos));
                    i += 1;
                } else {
                    return Err(ParseError { pos, msg: "stray `!` (use `!=`)".to_string() });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, pos));
                    i += 1;
                } else {
                    out.push((Tok::Gt, pos));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, pos));
                    i += 1;
                } else {
                    out.push((Tok::Lt, pos));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError { pos, msg: "unterminated string".to_string() })
                        }
                        Some(b'"') => break,
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => {
                                    return Err(ParseError {
                                        pos: i,
                                        msg: "unsupported escape in string".to_string(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), pos));
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'.') {
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                if matches!(bytes.get(j), Some(b'e') | Some(b'E')) {
                    let mut k = j + 1;
                    if matches!(bytes.get(k), Some(b'+') | Some(b'-')) {
                        k += 1;
                    }
                    if bytes.get(k).is_some_and(|b| (*b as char).is_ascii_digit()) {
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = src.get(i..j).unwrap_or_default();
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError { pos, msg: format!("bad number literal `{text}`") })?;
                out.push((Tok::Number(n), pos));
                i = j;
                continue;
            }
            _ if is_ident_start(c) => {
                let mut j = i;
                while j < bytes.len() && is_ident_cont(bytes[j] as char) {
                    j += 1;
                }
                out.push((Tok::Ident(src.get(i..j).unwrap_or_default().to_string()), pos));
                i = j;
                continue;
            }
            _ => {
                return Err(ParseError { pos, msg: format!("unexpected character `{c}`") });
            }
        }
        i += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// One label matcher of a [`Selector`].
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMatcher {
    /// Label key; the synthetic key `field` addresses the sample field.
    pub key: String,
    /// Expected value; `*` acts as a wildcard segment (simple glob).
    pub value: String,
    /// `true` for `!=` (the match is inverted).
    pub negate: bool,
}

/// A series selector: family name plus conjunctive label matchers.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    /// Exact metric family name (colons allowed, for recording rules).
    pub name: String,
    /// Label matchers, all of which must hold.
    pub matchers: Vec<LabelMatcher>,
}

/// Binary operators, in one enum across precedence levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `and` (vector intersection by label set)
    And,
    /// `or` (vector union by label set)
    Or,
    /// `unless` (vector difference by label set)
    Unless,
}

impl BinOp {
    fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Ge | BinOp::Lt | BinOp::Le)
    }

    fn is_set(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Unless)
    }

    fn arith(&self, l: f64, r: f64) -> f64 {
        match self {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => l / r,
            _ => f64::NAN,
        }
    }

    fn compare(&self, l: f64, r: f64) -> bool {
        match self {
            BinOp::Eq => l == r,
            BinOp::Ne => l != r,
            BinOp::Gt => l > r,
            BinOp::Ge => l >= r,
            BinOp::Lt => l < r,
            BinOp::Le => l <= r,
            _ => false,
        }
    }
}

/// Functions over range selectors (one `sel[w]` argument each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeFn {
    /// Per-tick increase: `increase / w`.
    Rate,
    /// Window delta with [`Tsdb::window_delta`] semantics.
    Increase,
    /// Last minus first sample inside the window (gauge semantics).
    Delta,
    /// Mean of the samples inside the window.
    AvgOverTime,
    /// Maximum sample inside the window.
    MaxOverTime,
    /// Minimum sample inside the window.
    MinOverTime,
    /// Sum of the samples inside the window.
    SumOverTime,
    /// Number of samples inside the window.
    CountOverTime,
    /// `1` (with empty labels) when *no* matching series has a sample
    /// inside the window, else an empty vector.
    AbsentOverTime,
}

/// Label-aggregation operators (`sum by (...)` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of the group.
    Sum,
    /// Mean of the group.
    Avg,
    /// Minimum of the group.
    Min,
    /// Maximum of the group.
    Max,
    /// Element count of the group.
    Count,
}

/// Grouping mode of an aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum Grouping {
    /// Collapse everything into one group with empty labels.
    All,
    /// Group by exactly these labels; output carries only them.
    By(Vec<String>),
    /// Group by every label except these; output drops them.
    Without(Vec<String>),
}

/// Scalar helper functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    /// Two-argument scalar minimum.
    Min,
    /// Two-argument scalar maximum.
    Max,
}

/// A parsed, type-checked expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A number literal (scalar).
    Number(f64),
    /// An instant vector selector.
    Selector(Selector),
    /// A range selector `sel[w]`; only valid inside a [`RangeFn`] call.
    Range(Selector, u64),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A range-function call.
    RangeCall {
        /// The function.
        func: RangeFn,
        /// The selector inside the range argument.
        sel: Selector,
        /// Window length in ticks (>= 1).
        window: u64,
    },
    /// An aggregation over a vector expression.
    Aggregate {
        /// The operator.
        op: AggOp,
        /// The grouping clause.
        grouping: Grouping,
        /// The vector argument.
        arg: Box<Expr>,
    },
    /// `histogram_quantile(q, sel)`: read the pre-sampled quantile
    /// sub-series (`q` ∈ {0.5, 0.95, 0.99, 1}).
    HistogramQuantile {
        /// The requested quantile.
        q: Box<Expr>,
        /// The histogram family selector (no `field` matcher).
        sel: Selector,
    },
    /// `clamp_min(expr, s)` / `clamp_max(expr, s)`.
    Clamp {
        /// `true` for `clamp_min`, `false` for `clamp_max`.
        is_min: bool,
        /// The clamped expression.
        arg: Box<Expr>,
        /// The scalar bound.
        bound: Box<Expr>,
    },
    /// Two-argument scalar `min`/`max`.
    ScalarCall {
        /// The function.
        func: ScalarFn,
        /// First scalar operand.
        lhs: Box<Expr>,
        /// Second scalar operand.
        rhs: Box<Expr>,
    },
    /// `tick()`: the current evaluation tick as a scalar.
    Tick,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const AGG_OPS: [(&str, AggOp); 5] = [
    ("sum", AggOp::Sum),
    ("avg", AggOp::Avg),
    ("min", AggOp::Min),
    ("max", AggOp::Max),
    ("count", AggOp::Count),
];

const RANGE_FNS: [(&str, RangeFn); 9] = [
    ("rate", RangeFn::Rate),
    ("increase", RangeFn::Increase),
    ("delta", RangeFn::Delta),
    ("avg_over_time", RangeFn::AvgOverTime),
    ("max_over_time", RangeFn::MaxOverTime),
    ("min_over_time", RangeFn::MinOverTime),
    ("sum_over_time", RangeFn::SumOverTime),
    ("count_over_time", RangeFn::CountOverTime),
    ("absent_over_time", RangeFn::AbsentOverTime),
];

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(_, p)| *p).unwrap_or(self.end)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        self.i += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { pos: self.pos(), msg: msg.into() }
    }

    fn expect_tok(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == want => {
                self.i += 1;
                Ok(())
            }
            Some(t) => {
                Err(self.err(format!("expected {}, found {}", want.describe(), t.describe())))
            }
            None => Err(self.err(format!("expected {}, found end of input", want.describe()))),
        }
    }

    /// Consume an `Ident` equal to `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        loop {
            let op = if self.eat_kw("and") {
                BinOp::And
            } else if self.eat_kw("unless") {
                BinOp::Unless
            } else {
                break;
            };
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            _ => return Ok(lhs),
        };
        self.i += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.i += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.i += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.i += 1;
            let arg = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(arg)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.i += 1;
                Ok(Expr::Number(n))
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if matches!(name.as_str(), "or" | "and" | "unless" | "by" | "without") {
                    return Err(self.err(format!("expected expression, found keyword `{name}`")));
                }
                self.i += 1;
                self.parse_ident_tail(name)
            }
            Some(t) => Err(self.err(format!("expected expression, found {}", t.describe()))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    /// An identifier was consumed: dispatch to aggregation, function call,
    /// or plain selector (with optional matchers and range suffix).
    fn parse_ident_tail(&mut self, name: String) -> Result<Expr, ParseError> {
        let agg = AGG_OPS.iter().find(|(n, _)| *n == name).map(|(_, op)| *op);
        // `sum by (a) (...)`: grouping clause before the parenthesized body.
        if let Some(op) = agg {
            if matches!(self.peek(), Some(Tok::Ident(s)) if s == "by" || s == "without") {
                let grouping = self.parse_grouping()?;
                self.expect_tok(Tok::LParen)?;
                let arg = self.parse_expr()?;
                self.expect_tok(Tok::RParen)?;
                return Ok(Expr::Aggregate { op, grouping, arg: Box::new(arg) });
            }
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            return self.parse_call(name, agg);
        }
        let sel = self.parse_selector_body(name)?;
        if matches!(self.peek(), Some(Tok::LBracket)) {
            let w = self.parse_range_suffix()?;
            return Ok(Expr::Range(sel, w));
        }
        Ok(Expr::Selector(sel))
    }

    fn parse_grouping(&mut self) -> Result<Grouping, ParseError> {
        let by = self.eat_kw("by");
        if !by && !self.eat_kw("without") {
            return Err(self.err("expected `by` or `without`"));
        }
        self.expect_tok(Tok::LParen)?;
        let mut labels = Vec::new();
        if !matches!(self.peek(), Some(Tok::RParen)) {
            loop {
                match self.next() {
                    Some(Tok::Ident(l)) => labels.push(l),
                    _ => {
                        self.i = self.i.saturating_sub(1);
                        return Err(self.err("expected label name in grouping clause"));
                    }
                }
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.i += 1;
            }
        }
        self.expect_tok(Tok::RParen)?;
        Ok(if by { Grouping::By(labels) } else { Grouping::Without(labels) })
    }

    /// `(` is next: parse a call to `name`. `agg` is set when `name` is
    /// also an aggregation operator (one-argument form aggregates; the
    /// two-argument `min`/`max` form is the scalar function).
    fn parse_call(&mut self, name: String, agg: Option<AggOp>) -> Result<Expr, ParseError> {
        self.expect_tok(Tok::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(Tok::RParen)) {
            loop {
                args.push(self.parse_expr()?);
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.i += 1;
            }
        }
        self.expect_tok(Tok::RParen)?;

        if let Some((_, func)) = RANGE_FNS.iter().find(|(n, _)| *n == name) {
            let mut it = args.into_iter();
            return match (it.next(), it.next()) {
                (Some(Expr::Range(sel, window)), None) => {
                    Ok(Expr::RangeCall { func: *func, sel, window })
                }
                _ => Err(self.err(format!("{name}() takes exactly one range argument `sel[w]`"))),
            };
        }
        match name.as_str() {
            "histogram_quantile" => {
                let mut it = args.into_iter();
                match (it.next(), it.next(), it.next()) {
                    (Some(q), Some(Expr::Selector(sel)), None) => {
                        if sel.matchers.iter().any(|m| m.key == "field") {
                            return Err(self.err(
                                "histogram_quantile() picks the field itself; \
                                 drop the `field` matcher",
                            ));
                        }
                        Ok(Expr::HistogramQuantile { q: Box::new(q), sel })
                    }
                    _ => {
                        Err(self
                            .err("histogram_quantile() takes (quantile, selector) — two arguments"))
                    }
                }
            }
            "clamp_min" | "clamp_max" => {
                let is_min = name == "clamp_min";
                let mut it = args.into_iter();
                match (it.next(), it.next(), it.next()) {
                    (Some(arg), Some(bound), None) => {
                        Ok(Expr::Clamp { is_min, arg: Box::new(arg), bound: Box::new(bound) })
                    }
                    _ => Err(self.err(format!("{name}() takes (expr, scalar) — two arguments"))),
                }
            }
            "tick" => {
                if args.is_empty() {
                    Ok(Expr::Tick)
                } else {
                    Err(self.err("tick() takes no arguments"))
                }
            }
            _ => match (agg, args.len()) {
                (Some(op), 1) => {
                    let mut it = args.into_iter();
                    match it.next() {
                        Some(arg) => {
                            let grouping = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "by" || s == "without")
                            {
                                self.parse_grouping()?
                            } else {
                                Grouping::All
                            };
                            Ok(Expr::Aggregate { op, grouping, arg: Box::new(arg) })
                        }
                        None => Err(self.err("aggregation takes one argument")),
                    }
                }
                (Some(op), 2) if matches!(op, AggOp::Min | AggOp::Max) => {
                    let func = if op == AggOp::Min { ScalarFn::Min } else { ScalarFn::Max };
                    let mut it = args.into_iter();
                    match (it.next(), it.next()) {
                        (Some(lhs), Some(rhs)) => {
                            Ok(Expr::ScalarCall { func, lhs: Box::new(lhs), rhs: Box::new(rhs) })
                        }
                        _ => Err(self.err("scalar min/max take two arguments")),
                    }
                }
                (Some(_), n) => Err(self.err(format!("aggregation takes 1 argument, got {n}"))),
                (None, _) => Err(self.err(format!("unknown function `{name}`"))),
            },
        }
    }

    /// The name was consumed: parse optional `{matchers}`.
    fn parse_selector_body(&mut self, name: String) -> Result<Selector, ParseError> {
        let mut matchers = Vec::new();
        if matches!(self.peek(), Some(Tok::LBrace)) {
            self.i += 1;
            if !matches!(self.peek(), Some(Tok::RBrace)) {
                loop {
                    let key = match self.next() {
                        Some(Tok::Ident(k)) => k,
                        _ => {
                            self.i = self.i.saturating_sub(1);
                            return Err(self.err("expected label name in matcher"));
                        }
                    };
                    let negate = match self.next() {
                        Some(Tok::Eq) => false,
                        Some(Tok::EqEq) => false,
                        Some(Tok::Ne) => true,
                        _ => {
                            self.i = self.i.saturating_sub(1);
                            return Err(self.err("expected `=` or `!=` in matcher"));
                        }
                    };
                    let value = match self.next() {
                        Some(Tok::Str(v)) => v,
                        _ => {
                            self.i = self.i.saturating_sub(1);
                            return Err(self.err("expected quoted label value in matcher"));
                        }
                    };
                    matchers.push(LabelMatcher { key, value, negate });
                    if !matches!(self.peek(), Some(Tok::Comma)) {
                        break;
                    }
                    self.i += 1;
                }
            }
            self.expect_tok(Tok::RBrace)?;
        }
        Ok(Selector { name, matchers })
    }

    fn parse_range_suffix(&mut self) -> Result<u64, ParseError> {
        self.expect_tok(Tok::LBracket)?;
        let w = match self.next() {
            Some(Tok::Number(n)) if n.fract() == 0.0 && n >= 1.0 && n <= u32::MAX as f64 => {
                n as u64
            }
            _ => {
                self.i = self.i.saturating_sub(1);
                return Err(self.err("range window must be an integer tick count >= 1"));
            }
        };
        self.expect_tok(Tok::RBracket)?;
        Ok(w)
    }
}

/// Result type of an expression, for the post-parse type check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Scalar,
    Vector,
}

fn typecheck(e: &Expr) -> Result<Ty, ParseError> {
    let bad = |msg: String| ParseError { pos: 0, msg };
    match e {
        Expr::Number(_) | Expr::Tick => Ok(Ty::Scalar),
        Expr::Selector(_) => Ok(Ty::Vector),
        Expr::Range(sel, _) => Err(bad(format!(
            "range selector `{}[..]` is only valid inside a range function",
            sel.name
        ))),
        Expr::Neg(arg) => typecheck(arg),
        Expr::Binary { op, lhs, rhs } => {
            let (l, r) = (typecheck(lhs)?, typecheck(rhs)?);
            if op.is_set() && (l != Ty::Vector || r != Ty::Vector) {
                return Err(bad("`and`/`or`/`unless` need vector operands".to_string()));
            }
            Ok(if l == Ty::Scalar && r == Ty::Scalar { Ty::Scalar } else { Ty::Vector })
        }
        Expr::RangeCall { .. } => Ok(Ty::Vector),
        Expr::Aggregate { arg, .. } => {
            if typecheck(arg)? != Ty::Vector {
                return Err(bad("aggregation needs a vector argument".to_string()));
            }
            Ok(Ty::Vector)
        }
        Expr::HistogramQuantile { q, .. } => {
            if typecheck(q)? != Ty::Scalar {
                return Err(bad("histogram_quantile() quantile must be a scalar".to_string()));
            }
            Ok(Ty::Vector)
        }
        Expr::Clamp { arg, bound, .. } => {
            if typecheck(bound)? != Ty::Scalar {
                return Err(bad("clamp bound must be a scalar".to_string()));
            }
            typecheck(arg)
        }
        Expr::ScalarCall { lhs, rhs, .. } => {
            if typecheck(lhs)? != Ty::Scalar || typecheck(rhs)? != Ty::Scalar {
                return Err(bad("scalar min/max need scalar operands".to_string()));
            }
            Ok(Ty::Scalar)
        }
    }
}

/// Parse and type-check one expression.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0, end: src.len() };
    let e = p.parse_expr()?;
    if p.i < p.toks.len() {
        return Err(p.err(format!(
            "unexpected trailing {}",
            p.peek().map(|t| t.describe()).unwrap_or_default()
        )));
    }
    typecheck(&e)?;
    Ok(e)
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// One element of an instant vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (empty once an operator has transformed the
    /// value, mirroring PromQL's name-dropping rules).
    pub name: String,
    /// Label pairs sorted by key, including the synthetic `field` label
    /// for every non-`value` sample field.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// The result of evaluating an expression at one tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single number.
    Scalar(f64),
    /// An instant vector, sorted by `(name, labels)`.
    Vector(Vec<Sample>),
}

impl Value {
    /// Alert-style truth: a scalar is true when non-zero (and not NaN), a
    /// vector is true when non-empty.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Scalar(s) => *s != 0.0 && !s.is_nan(),
            Value::Vector(v) => !v.is_empty(),
        }
    }

    /// The first sample value (or the scalar), for alert status display.
    pub fn first_value(&self) -> Option<f64> {
        match self {
            Value::Scalar(s) => Some(*s),
            Value::Vector(v) => v.first().map(|s| s.value),
        }
    }
}

fn sort_vec(mut v: Vec<Sample>) -> Vec<Sample> {
    v.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    v
}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

/// Naive substring search over bytes (labels may be any UTF-8; byte-wise
/// search avoids char-boundary slicing).
fn find_sub(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from.min(hay.len()));
    }
    if hay.len() < needle.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

/// Simple anchored glob: `*` matches any run of characters; everything
/// else is literal. A pattern without `*` is an exact comparison.
fn glob_match(pat: &str, s: &str) -> bool {
    if !pat.contains('*') {
        return pat == s;
    }
    let h = s.as_bytes();
    let parts: Vec<&[u8]> = pat.as_bytes().split(|&b| b == b'*').collect();
    let (first, last) = (parts[0], parts[parts.len() - 1]);
    if h.len() < first.len() + last.len() {
        return false;
    }
    if !h.starts_with(first) || !h.ends_with(last) {
        return false;
    }
    let mut pos = first.len();
    let end = h.len() - last.len();
    if pos > end {
        return false;
    }
    for part in &parts[1..parts.len() - 1] {
        match find_sub(&h[..end], part, pos) {
            Some(i) => pos = i + part.len(),
            None => return false,
        }
    }
    true
}

/// Does `key` satisfy every matcher of `sel`? A missing label reads as the
/// empty string; the synthetic key `field` reads the sample field name.
fn key_matches(sel: &Selector, key: &SeriesKey) -> bool {
    sel.matchers.iter().all(|m| {
        let actual: &str = if m.key == "field" {
            key.field.as_str()
        } else {
            key.labels.iter().find(|(k, _)| *k == m.key).map(|(_, v)| v.as_str()).unwrap_or("")
        };
        glob_match(&m.value, actual) != m.negate
    })
}

/// Output labels of a stored series: its own labels (sorted) plus the
/// synthetic `field` label for non-`value` fields.
fn sample_labels(key: &SeriesKey) -> Vec<(String, String)> {
    let mut ls = key.labels.clone();
    if key.field != SampleField::Value {
        ls.push(("field".to_string(), key.field.as_str().to_string()));
    }
    ls.sort();
    ls
}

/// All matching series with their points at or before `tick`,
/// oldest-first, in deterministic store order.
fn select_raw(store: &Tsdb, sel: &Selector, tick: u64) -> Vec<crate::tsdb::SeriesData> {
    let q = Query { name: Some(sel.name.clone()), to: Some(tick), ..Query::default() };
    store.query(&q).into_iter().filter(|s| key_matches(sel, &s.key)).collect()
}

fn instant(store: &Tsdb, sel: &Selector, tick: u64) -> Vec<Sample> {
    let mut out = Vec::new();
    for s in select_raw(store, sel, tick) {
        if let Some((_, v)) = s.points.last() {
            out.push(Sample { name: s.key.name.clone(), labels: sample_labels(&s.key), value: *v });
        }
    }
    sort_vec(out)
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

fn eval_range_fn(store: &Tsdb, func: RangeFn, sel: &Selector, w: u64, tick: u64) -> Vec<Sample> {
    let series = select_raw(store, sel, tick);
    let floor = tick.saturating_sub(w);
    if func == RangeFn::AbsentOverTime {
        let present = series.iter().any(|s| s.points.iter().any(|(t, _)| *t >= floor));
        if present {
            return Vec::new();
        }
        return vec![Sample { name: String::new(), labels: Vec::new(), value: 1.0 }];
    }
    let mut out = Vec::new();
    for s in series {
        // `s.points` already holds only ticks <= `tick`, oldest first.
        let value = match func {
            RangeFn::Rate | RangeFn::Increase => {
                // Exactly `Tsdb::window_delta`: newest value minus the
                // newest value at or before the window floor, falling back
                // to the oldest retained sample.
                let Some((_, end)) = s.points.last() else { continue };
                let start = s
                    .points
                    .iter()
                    .take_while(|(t, _)| *t <= floor)
                    .last()
                    .or_else(|| s.points.first())
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                let inc = end - start;
                if func == RangeFn::Rate {
                    inc / w as f64
                } else {
                    inc
                }
            }
            _ => {
                let window: Vec<f64> =
                    s.points.iter().filter(|(t, _)| *t >= floor).map(|(_, v)| *v).collect();
                if window.is_empty() {
                    continue;
                }
                let n = window.len() as f64;
                match func {
                    RangeFn::Delta => window[window.len() - 1] - window[0],
                    RangeFn::AvgOverTime => window.iter().sum::<f64>() / n,
                    RangeFn::MaxOverTime => {
                        window.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                    }
                    RangeFn::MinOverTime => window.iter().copied().fold(f64::INFINITY, f64::min),
                    RangeFn::SumOverTime => window.iter().sum::<f64>(),
                    RangeFn::CountOverTime => n,
                    RangeFn::Rate | RangeFn::Increase | RangeFn::AbsentOverTime => f64::NAN,
                }
            }
        };
        out.push(Sample { name: String::new(), labels: sample_labels(&s.key), value });
    }
    sort_vec(out)
}

/// Build a `labels -> sample` map, failing on duplicate label sets (the
/// many-to-many guard for binary operators).
fn by_labels(
    v: Vec<Sample>,
    side: &str,
) -> Result<BTreeMap<Vec<(String, String)>, Sample>, EvalError> {
    let mut map = BTreeMap::new();
    for s in v {
        if map.insert(s.labels.clone(), s).is_some() {
            return Err(eval_err(format!(
                "duplicate label set on {side} side of a binary operation"
            )));
        }
    }
    Ok(map)
}

fn eval_binary(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, EvalError> {
    if op.is_set() {
        let (Value::Vector(l), Value::Vector(r)) = (lhs, rhs) else {
            return Err(eval_err("`and`/`or`/`unless` need vector operands"));
        };
        let rset: BTreeSet<Vec<(String, String)>> = r.iter().map(|s| s.labels.clone()).collect();
        let lset: BTreeSet<Vec<(String, String)>> = l.iter().map(|s| s.labels.clone()).collect();
        let out = match op {
            BinOp::And => l.into_iter().filter(|s| rset.contains(&s.labels)).collect(),
            BinOp::Unless => l.into_iter().filter(|s| !rset.contains(&s.labels)).collect(),
            BinOp::Or => {
                let mut out = l;
                out.extend(r.into_iter().filter(|s| !lset.contains(&s.labels)));
                out
            }
            _ => Vec::new(),
        };
        return Ok(Value::Vector(sort_vec(out)));
    }
    if op.is_comparison() {
        return match (lhs, rhs) {
            (Value::Scalar(l), Value::Scalar(r)) => {
                Ok(Value::Scalar(if op.compare(l, r) { 1.0 } else { 0.0 }))
            }
            (Value::Vector(l), Value::Scalar(r)) => Ok(Value::Vector(sort_vec(
                l.into_iter().filter(|s| op.compare(s.value, r)).collect(),
            ))),
            (Value::Scalar(l), Value::Vector(r)) => Ok(Value::Vector(sort_vec(
                r.into_iter().filter(|s| op.compare(l, s.value)).collect(),
            ))),
            (Value::Vector(l), Value::Vector(r)) => {
                let rmap = by_labels(r, "right")?;
                let lmap = by_labels(l, "left")?;
                let out = lmap
                    .into_values()
                    .filter(|s| rmap.get(&s.labels).is_some_and(|o| op.compare(s.value, o.value)))
                    .collect();
                Ok(Value::Vector(sort_vec(out)))
            }
        };
    }
    // Arithmetic: results drop the metric name.
    match (lhs, rhs) {
        (Value::Scalar(l), Value::Scalar(r)) => Ok(Value::Scalar(op.arith(l, r))),
        (Value::Vector(l), Value::Scalar(r)) => Ok(Value::Vector(sort_vec(
            l.into_iter()
                .map(|s| Sample { name: String::new(), value: op.arith(s.value, r), ..s })
                .collect(),
        ))),
        (Value::Scalar(l), Value::Vector(r)) => Ok(Value::Vector(sort_vec(
            r.into_iter()
                .map(|s| Sample { name: String::new(), value: op.arith(l, s.value), ..s })
                .collect(),
        ))),
        (Value::Vector(l), Value::Vector(r)) => {
            let rmap = by_labels(r, "right")?;
            let lmap = by_labels(l, "left")?;
            let mut out = Vec::new();
            for (labels, s) in lmap {
                if let Some(o) = rmap.get(&labels) {
                    out.push(Sample {
                        name: String::new(),
                        labels,
                        value: op.arith(s.value, o.value),
                    });
                }
            }
            Ok(Value::Vector(sort_vec(out)))
        }
    }
}

fn eval_aggregate(op: AggOp, grouping: &Grouping, input: Vec<Sample>) -> Vec<Sample> {
    let mut groups: BTreeMap<Vec<(String, String)>, Vec<f64>> = BTreeMap::new();
    for s in input {
        let labels = match grouping {
            Grouping::All => Vec::new(),
            Grouping::By(keys) => {
                s.labels.iter().filter(|(k, _)| keys.contains(k)).cloned().collect()
            }
            Grouping::Without(keys) => {
                s.labels.iter().filter(|(k, _)| !keys.contains(k)).cloned().collect()
            }
        };
        groups.entry(labels).or_default().push(s.value);
    }
    groups
        .into_iter()
        .map(|(labels, vs)| {
            let n = vs.len() as f64;
            let value = match op {
                AggOp::Sum => vs.iter().sum::<f64>(),
                AggOp::Avg => vs.iter().sum::<f64>() / n,
                AggOp::Min => vs.iter().copied().fold(f64::INFINITY, f64::min),
                AggOp::Max => vs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggOp::Count => n,
            };
            Sample { name: String::new(), labels, value }
        })
        .collect()
}

fn quantile_field(q: f64) -> Result<SampleField, EvalError> {
    if q == 0.5 {
        Ok(SampleField::P50)
    } else if q == 0.95 {
        Ok(SampleField::P95)
    } else if q == 0.99 {
        Ok(SampleField::P99)
    } else if q == 1.0 {
        Ok(SampleField::Max)
    } else {
        Err(eval_err(format!(
            "histogram_quantile supports q in {{0.5, 0.95, 0.99, 1}} (pre-sampled fields), got {q}"
        )))
    }
}

/// Evaluate `expr` against `store` at logical time `tick`.
pub fn eval(store: &Tsdb, expr: &Expr, tick: u64) -> Result<Value, EvalError> {
    match expr {
        Expr::Number(n) => Ok(Value::Scalar(*n)),
        Expr::Tick => Ok(Value::Scalar(tick as f64)),
        Expr::Selector(sel) => Ok(Value::Vector(instant(store, sel, tick))),
        Expr::Range(sel, _) => {
            Err(eval_err(format!("range selector `{}[..]` outside a range function", sel.name)))
        }
        Expr::Neg(arg) => match eval(store, arg, tick)? {
            Value::Scalar(s) => Ok(Value::Scalar(-s)),
            Value::Vector(v) => Ok(Value::Vector(sort_vec(
                v.into_iter()
                    .map(|s| Sample { name: String::new(), value: -s.value, ..s })
                    .collect(),
            ))),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(store, lhs, tick)?;
            let r = eval(store, rhs, tick)?;
            eval_binary(*op, l, r)
        }
        Expr::RangeCall { func, sel, window } => {
            Ok(Value::Vector(eval_range_fn(store, *func, sel, *window, tick)))
        }
        Expr::Aggregate { op, grouping, arg } => match eval(store, arg, tick)? {
            Value::Vector(v) => Ok(Value::Vector(eval_aggregate(*op, grouping, v))),
            Value::Scalar(_) => Err(eval_err("aggregation needs a vector argument")),
        },
        Expr::HistogramQuantile { q, sel } => {
            let q = match eval(store, q, tick)? {
                Value::Scalar(s) => s,
                Value::Vector(_) => {
                    return Err(eval_err("histogram_quantile quantile must be a scalar"))
                }
            };
            let field = quantile_field(q)?;
            let mut narrowed = sel.clone();
            narrowed.matchers.push(LabelMatcher {
                key: "field".to_string(),
                value: field.as_str().to_string(),
                negate: false,
            });
            let v = instant(store, &narrowed, tick)
                .into_iter()
                .map(|mut s| {
                    s.labels.retain(|(k, _)| k != "field");
                    Sample { name: String::new(), ..s }
                })
                .collect();
            Ok(Value::Vector(sort_vec(v)))
        }
        Expr::Clamp { is_min, arg, bound } => {
            let b = match eval(store, bound, tick)? {
                Value::Scalar(s) => s,
                Value::Vector(_) => return Err(eval_err("clamp bound must be a scalar")),
            };
            let clamp = |x: f64| if *is_min { x.max(b) } else { x.min(b) };
            match eval(store, arg, tick)? {
                Value::Scalar(s) => Ok(Value::Scalar(clamp(s))),
                Value::Vector(v) => Ok(Value::Vector(sort_vec(
                    v.into_iter().map(|s| Sample { value: clamp(s.value), ..s }).collect(),
                ))),
            }
        }
        Expr::ScalarCall { func, lhs, rhs } => {
            let l = match eval(store, lhs, tick)? {
                Value::Scalar(s) => s,
                Value::Vector(_) => return Err(eval_err("scalar min/max need scalar operands")),
            };
            let r = match eval(store, rhs, tick)? {
                Value::Scalar(s) => s,
                Value::Vector(_) => return Err(eval_err("scalar min/max need scalar operands")),
            };
            Ok(Value::Scalar(match func {
                ScalarFn::Min => l.min(r),
                ScalarFn::Max => l.max(r),
            }))
        }
    }
}

// ---------------------------------------------------------------------------
// Range evaluation and JSON rendering
// ---------------------------------------------------------------------------

/// One output series of [`eval_range`].
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSeries {
    /// Metric family name (empty for derived values).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// `(tick, value)` points in ascending tick order.
    pub points: Vec<(u64, f64)>,
}

/// Accumulator key for [`eval_range`]: series name + sorted label pairs.
type SeriesId = (String, Vec<(String, String)>);

/// Evaluate `expr` at every tick `from, from+step, ...` up to and
/// including `to`, merging per-tick vectors into per-series point lists.
/// A scalar result becomes one series with an empty name and no labels.
pub fn eval_range(
    store: &Tsdb,
    expr: &Expr,
    from: u64,
    to: u64,
    step: u64,
) -> Result<Vec<RangeSeries>, EvalError> {
    let step = step.max(1);
    let mut acc: BTreeMap<SeriesId, Vec<(u64, f64)>> = BTreeMap::new();
    let mut t = from;
    while t <= to {
        match eval(store, expr, t)? {
            Value::Scalar(v) => {
                acc.entry((String::new(), Vec::new())).or_default().push((t, v));
            }
            Value::Vector(samples) => {
                for s in samples {
                    acc.entry((s.name, s.labels)).or_default().push((t, s.value));
                }
            }
        }
        match t.checked_add(step) {
            Some(next) => t = next,
            None => break,
        }
    }
    Ok(acc
        .into_iter()
        .map(|((name, labels), points)| RangeSeries { name, labels, points })
        .collect())
}

fn push_labels_json(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::export::json_str(k));
        out.push(':');
        out.push_str(&crate::export::json_str(v));
    }
    out.push('}');
}

/// Render an instant [`Value`] as deterministic JSON:
/// `{"type":"scalar","value":v}` or
/// `{"type":"vector","samples":[{"name":..,"labels":{..},"value":..},..]}`.
pub fn value_json(v: &Value) -> String {
    let mut out = String::new();
    match v {
        Value::Scalar(s) => {
            out.push_str("{\"type\":\"scalar\",\"value\":");
            out.push_str(&crate::export::json_f64(*s));
            out.push('}');
        }
        Value::Vector(samples) => {
            out.push_str("{\"type\":\"vector\",\"samples\":[");
            for (i, s) in samples.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                out.push_str(&crate::export::json_str(&s.name));
                out.push_str(",\"labels\":");
                push_labels_json(&mut out, &s.labels);
                out.push_str(",\"value\":");
                out.push_str(&crate::export::json_f64(s.value));
                out.push('}');
            }
            out.push_str("]}");
        }
    }
    out
}

/// Parse `src` and evaluate it over `[from, to]` with `step`, rendering
/// the tick-keyed JSON served by `/query_range`. The output is a pure
/// function of the store contents, so same-seed replays produce
/// byte-identical responses.
pub fn query_range_json(
    store: &Tsdb,
    src: &str,
    from: u64,
    to: u64,
    step: u64,
) -> Result<String, QueryError> {
    let expr = parse(src).map_err(QueryError::Parse)?;
    let series = eval_range(store, &expr, from, to, step).map_err(QueryError::Eval)?;
    let mut out = String::from("{\"expr\":");
    out.push_str(&crate::export::json_str(src));
    out.push_str(&format!(",\"from\":{from},\"to\":{to},\"step\":{}", step.max(1)));
    out.push_str(",\"series\":[");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        out.push_str(&crate::export::json_str(&s.name));
        out.push_str(",\"labels\":");
        push_labels_json(&mut out, &s.labels);
        out.push_str(",\"points\":[");
        for (j, (t, v)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&t.to_string());
            out.push(',');
            out.push_str(&crate::export::json_f64(*v));
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Ok(out)
}

// ---------------------------------------------------------------------------
// Recording rules
// ---------------------------------------------------------------------------

/// A named expression the [`crate::tsdb::Scraper`] evaluates every tick,
/// writing the result back into the store as synthetic series under the
/// rule's name (Prometheus convention: colon-separated names like
/// `sub:ingest_records:rate1`, so synthetic series never collide with the
/// `commgraph_*` registry namespace).
#[derive(Debug, Clone)]
pub struct RecordingRule {
    name: String,
    src: String,
    expr: Expr,
}

impl RecordingRule {
    /// Parse `src` into a rule named `name`.
    pub fn new(name: &str, src: &str) -> Result<RecordingRule, ParseError> {
        Ok(RecordingRule { name: name.to_string(), src: src.to_string(), expr: parse(src)? })
    }

    /// The output series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source expression.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The parsed expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluate at `tick` and append the result to `store` (one series per
    /// output label set, all under this rule's name, `value` field).
    /// Returns the number of series written. Appends go through
    /// [`Tsdb::append`], so synthetic series are subject to the same
    /// eviction and max-series accounting as scraped ones.
    pub fn record(&self, store: &Tsdb, tick: u64) -> Result<usize, EvalError> {
        match eval(store, &self.expr, tick)? {
            Value::Scalar(v) => {
                store.append(
                    SeriesKey {
                        name: self.name.clone(),
                        labels: Vec::new(),
                        field: SampleField::Value,
                    },
                    tick,
                    v,
                );
                Ok(1)
            }
            Value::Vector(samples) => {
                let n = samples.len();
                for s in samples {
                    store.append(
                        SeriesKey {
                            name: self.name.clone(),
                            labels: s.labels,
                            field: SampleField::Value,
                        },
                        tick,
                        s.value,
                    );
                }
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::TsdbConfig;

    fn store() -> Tsdb {
        let s = Tsdb::new(TsdbConfig::default());
        // Two counter shards, one gauge, one histogram fan-out.
        for tick in 1..=8u64 {
            s.append(SeriesKey::value("req_total", &[("shard", "a")]), tick, (tick * 10) as f64);
            s.append(SeriesKey::value("req_total", &[("shard", "b")]), tick, (tick * 3) as f64);
            s.append(SeriesKey::value("lag_gauge", &[]), tick, 100.0 - tick as f64);
        }
        for (field, v) in
            [(SampleField::Count, 40.0), (SampleField::P95, 0.9), (SampleField::P50, 0.4)]
        {
            s.append(SeriesKey { name: "lat_seconds".into(), labels: vec![], field }, 5, v);
        }
        s
    }

    fn eval_str(s: &Tsdb, src: &str, tick: u64) -> Value {
        eval(s, &parse(src).unwrap(), tick).unwrap()
    }

    fn vec_of(v: Value) -> Vec<Sample> {
        match v {
            Value::Vector(v) => v,
            Value::Scalar(s) => panic!("expected vector, got scalar {s}"),
        }
    }

    #[test]
    fn parses_and_evals_instant_selector_with_matchers() {
        let s = store();
        let v = vec_of(eval_str(&s, "req_total{shard=\"a\"}", 8));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "req_total");
        assert_eq!(v[0].value, 80.0);
        let both = vec_of(eval_str(&s, "req_total", 8));
        assert_eq!(both.len(), 2);
        assert!(both[0].labels < both[1].labels, "deterministic label order");
        let neg = vec_of(eval_str(&s, "req_total{shard!=\"a\"}", 8));
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].value, 24.0);
    }

    #[test]
    fn glob_matchers_match_segments() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("tenant-*", "tenant-a"));
        assert!(!glob_match("tenant-*", "other"));
        assert!(glob_match("*-a", "tenant-a"));
        assert!(glob_match("t*t-*", "tenant-b"));
        assert!(!glob_match("t*x", "tenant"));
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("a*a", "a"));
        let s = store();
        let v = vec_of(eval_str(&s, "req_total{shard=\"*\"}", 8));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn increase_matches_tsdb_window_delta_exactly() {
        let s = store();
        for (w, tick) in [(2u64, 8u64), (4, 8), (8, 8), (3, 5), (20, 8)] {
            let expr = format!("increase(req_total{{shard=\"a\"}}[{w}])");
            let v = vec_of(eval_str(&s, &expr, tick));
            let q = Query::family("req_total").with_label("shard", "a");
            let want = s.window_delta(&q, w, tick).unwrap();
            assert_eq!(v[0].value, want, "w={w} tick={tick}");
        }
    }

    #[test]
    fn rate_is_increase_over_window_and_nonnegative_for_monotone() {
        let s = store();
        let v = vec_of(eval_str(&s, "rate(req_total{shard=\"a\"}[4])", 8));
        assert_eq!(v[0].value, 10.0);
        assert_eq!(v[0].name, "", "range functions drop the metric name");
    }

    #[test]
    fn over_time_functions_cover_inclusive_window() {
        let s = store();
        // Window [4, 8]: gauge values 96..=92.
        assert_eq!(vec_of(eval_str(&s, "max_over_time(lag_gauge[4])", 8))[0].value, 96.0);
        assert_eq!(vec_of(eval_str(&s, "min_over_time(lag_gauge[4])", 8))[0].value, 92.0);
        assert_eq!(vec_of(eval_str(&s, "count_over_time(lag_gauge[4])", 8))[0].value, 5.0);
        assert_eq!(vec_of(eval_str(&s, "avg_over_time(lag_gauge[4])", 8))[0].value, 94.0);
        assert_eq!(vec_of(eval_str(&s, "sum_over_time(lag_gauge[4])", 8))[0].value, 470.0);
        assert_eq!(vec_of(eval_str(&s, "delta(lag_gauge[4])", 8))[0].value, -4.0);
    }

    #[test]
    fn absent_over_time_mirrors_absence_condition() {
        let s = store();
        // Histogram sampled only at tick 5: absent when tick - 5 > w.
        assert!(!vec_of(eval_str(&s, "absent_over_time(lat_seconds{field=\"count\"}[2])", 8))
            .is_empty());
        assert!(
            vec_of(eval_str(&s, "absent_over_time(lat_seconds{field=\"count\"}[3])", 8)).is_empty()
        );
        assert!(!vec_of(eval_str(&s, "absent_over_time(no_such_series[3])", 8)).is_empty());
    }

    #[test]
    fn aggregations_group_by_and_without() {
        let s = store();
        let sum = vec_of(eval_str(&s, "sum(req_total)", 8));
        assert_eq!(sum.len(), 1);
        assert_eq!(sum[0].value, 104.0);
        assert!(sum[0].labels.is_empty());
        let by = vec_of(eval_str(&s, "sum by (shard) (req_total)", 8));
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].labels, vec![("shard".to_string(), "a".to_string())]);
        let without = vec_of(eval_str(&s, "sum without (shard) (req_total)", 8));
        assert_eq!(without.len(), 1);
        assert_eq!(without[0].value, 104.0);
        let trailing = vec_of(eval_str(&s, "avg(req_total) by (shard)", 8));
        assert_eq!(trailing.len(), 2);
        assert_eq!(vec_of(eval_str(&s, "count(req_total)", 8))[0].value, 2.0);
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let s = store();
        assert_eq!(eval_str(&s, "1 + 2 * 3", 1), Value::Scalar(7.0));
        assert_eq!(eval_str(&s, "(1 + 2) * 3", 1), Value::Scalar(9.0));
        assert_eq!(eval_str(&s, "4 > 3", 1), Value::Scalar(1.0));
        assert_eq!(eval_str(&s, "-2", 1), Value::Scalar(-2.0));
        let halved = vec_of(eval_str(&s, "req_total / 2", 8));
        assert_eq!(halved[0].value, 40.0);
        assert_eq!(halved[0].name, "", "arithmetic drops the name");
        // Vector comparison filters, keeping original values and name.
        let hot = vec_of(eval_str(&s, "req_total > 30", 8));
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].value, 80.0);
        assert_eq!(hot[0].name, "req_total");
        // Vector / vector matches on the full label set.
        let ratio = vec_of(eval_str(&s, "req_total / req_total", 8));
        assert_eq!(ratio.len(), 2);
        assert!(ratio.iter().all(|r| r.value == 1.0));
    }

    #[test]
    fn set_operators_match_label_sets() {
        let s = store();
        let both = vec_of(eval_str(&s, "(req_total > 30) or (req_total > 20)", 8));
        assert_eq!(both.len(), 2);
        let and = vec_of(eval_str(&s, "(req_total > 1) and (req_total > 30)", 8));
        assert_eq!(and.len(), 1);
        let unless = vec_of(eval_str(&s, "(req_total > 1) unless (req_total > 30)", 8));
        assert_eq!(unless.len(), 1);
        assert_eq!(unless[0].value, 24.0);
    }

    #[test]
    fn histogram_quantile_reads_presampled_fields() {
        let s = store();
        let p95 = vec_of(eval_str(&s, "histogram_quantile(0.95, lat_seconds)", 5));
        assert_eq!(p95.len(), 1);
        assert_eq!(p95[0].value, 0.9);
        assert!(p95[0].labels.is_empty(), "field label is consumed");
        let p50 = vec_of(eval_str(&s, "histogram_quantile(0.5, lat_seconds)", 5));
        assert_eq!(p50[0].value, 0.4);
        let e = eval(&s, &parse("histogram_quantile(0.9, lat_seconds)").unwrap(), 5);
        assert!(e.is_err(), "unsupported quantile is an eval error");
    }

    #[test]
    fn scalar_helpers_and_tick() {
        let s = store();
        assert_eq!(eval_str(&s, "min(2, max(tick(), 1))", 1), Value::Scalar(1.0));
        assert_eq!(eval_str(&s, "min(2, max(tick(), 1))", 7), Value::Scalar(2.0));
        let clamped = vec_of(eval_str(&s, "clamp_min(req_total - 50, 0)", 8));
        assert_eq!(clamped.iter().map(|s| s.value).collect::<Vec<_>>(), vec![30.0, 0.0]);
        assert_eq!(eval_str(&s, "clamp_max(9, 5)", 1), Value::Scalar(5.0));
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        for bad in [
            "",
            "req_total{",
            "req_total{x=}",
            "rate(req_total)",
            "rate(req_total[0])",
            "req_total[5]",
            "sum(1)",
            "histogram_quantile(lat_seconds)",
            "unknown_fn(1)",
            "1 +",
            "req_total{field=\"p95\" p50}",
            "and",
            "tick(1)",
            "min(1)",
            "histogram_quantile(0.5, lat_seconds{field=\"p95\"})",
            "a !! b",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn eval_range_merges_ticks_and_is_deterministic() {
        let s = store();
        let expr = parse("rate(req_total[2])").unwrap();
        let a = eval_range(&s, &expr, 2, 8, 2).unwrap();
        let b = eval_range(&s, &expr, 2, 8, 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].points.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![2, 4, 6, 8]);
        let json1 = query_range_json(&s, "rate(req_total[2])", 2, 8, 2).unwrap();
        let json2 = query_range_json(&s, "rate(req_total[2])", 2, 8, 2).unwrap();
        assert_eq!(json1, json2, "byte-identical replay");
        assert!(
            json1.starts_with("{\"expr\":\"rate(req_total[2])\",\"from\":2,\"to\":8,\"step\":2")
        );
    }

    #[test]
    fn recording_rule_writes_synthetic_series() {
        let s = store();
        let rule =
            RecordingRule::new("shard:req:rate2", "sum by (shard) (rate(req_total[2]))").unwrap();
        for tick in 3..=8 {
            assert_eq!(rule.record(&s, tick).unwrap(), 2);
        }
        let v = vec_of(eval_str(&s, "shard:req:rate2{shard=\"a\"}", 8));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].value, 10.0);
        // Synthetic series are queryable through the raw TSDB API too.
        assert_eq!(s.query(&Query::family("shard:req:rate2")).len(), 2);
    }

    #[test]
    fn value_json_is_stable() {
        let s = store();
        let v = eval_str(&s, "sum by (shard) (req_total)", 8);
        assert_eq!(
            value_json(&v),
            "{\"type\":\"vector\",\"samples\":[\
             {\"name\":\"\",\"labels\":{\"shard\":\"a\"},\"value\":80},\
             {\"name\":\"\",\"labels\":{\"shard\":\"b\"},\"value\":24}]}"
        );
        assert_eq!(value_json(&Value::Scalar(1.5)), "{\"type\":\"scalar\",\"value\":1.5}");
    }
}
