//! Exposition formats: Prometheus text and a JSON snapshot.
//!
//! Both exporters walk [`Registry::snapshot`], which is deterministically
//! ordered, so output is stable for golden tests. The JSON renderer is
//! hand-rolled (this crate takes no dependencies); it emits a restricted
//! but valid subset — objects, arrays, strings, numbers — that
//! `serde_json`-style parsers read back without loss.

use crate::registry::{MetricSnapshot, Registry, SnapshotValue};
use std::fmt::Write as _;

/// Render the registry in the Prometheus text exposition format (v0.0.4):
/// `# HELP` / `# TYPE` headers per family, one sample line per metric,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
/// Only non-empty buckets are emitted (plus the mandatory `+Inf`).
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for m in registry.snapshot() {
        if m.name != last_family {
            let _ = writeln!(out, "# HELP {} {}", m.name, canonical_help(&m.name, &m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.name());
            last_family = m.name.clone();
        }
        match &m.value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_set(&m.labels, None), v);
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_set(&m.labels, None), fmt_f64(*v));
            }
            SnapshotValue::Histogram(h) => {
                for b in &h.buckets {
                    let le = if b.le.is_finite() { fmt_f64(b.le) } else { "+Inf".to_string() };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_set(&m.labels, Some(("le", &le))),
                        b.cumulative
                    );
                }
                if h.buckets.last().map(|b| b.le.is_finite()).unwrap_or(true) {
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_set(&m.labels, Some(("le", "+Inf"))),
                        h.count
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    m.name,
                    label_set(&m.labels, None),
                    fmt_f64(h.sum)
                );
                let _ = writeln!(out, "{}_count{} {}", m.name, label_set(&m.labels, None), h.count);
            }
        }
    }
    out
}

/// Render the registry (metrics and buffered events) as a JSON document.
///
/// Shape:
/// ```json
/// {"metrics": [{"name": "...", "kind": "counter", "labels": {...},
///               "value": 1}, ...,
///              {"name": "...", "kind": "histogram", "labels": {...},
///               "count": 3, "sum": 0.5, "max": 0.3,
///               "p50": 0.1, "p95": 0.3, "p99": 0.3}],
///  "events": [{"level": "info", "target": "...", "message": "...",
///              "fields": {...}}]}
/// ```
pub fn json_snapshot(registry: &Registry) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, m) in registry.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&metric_json(m));
    }
    out.push_str("],\"events\":");
    write_events_array(&mut out, registry);
    out.push('}');
    out
}

/// Render only the buffered structured events as `{"events":[...]}` — the
/// body of the introspection server's `/events` endpoint.
pub fn events_json(registry: &Registry) -> String {
    let mut out = String::from("{\"events\":");
    write_events_array(&mut out, registry);
    out.push('}');
    out
}

fn write_events_array(out: &mut String, registry: &Registry) {
    out.push('[');
    for (i, e) in registry.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"level\":{},\"target\":{},\"message\":{},\"fields\":{{",
            json_str(e.level.name()),
            json_str(&e.target),
            json_str(&e.message)
        );
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), json_str(v));
        }
        out.push_str("}}");
    }
    out.push(']');
}

/// Help text for a family: the canonical [`crate::names`] table wins for
/// registered `commgraph_*` names, so lookup sites can pass `""` (the common
/// idiom in tests and deep library code) without degrading the exposition.
fn canonical_help<'a>(name: &str, registered: &'a str) -> &'a str {
    match crate::names::lookup(name) {
        Some(def) => def.help,
        None => registered,
    }
}

fn metric_json(m: &MetricSnapshot) -> String {
    let mut s =
        format!("{{\"name\":{},\"kind\":\"{}\",\"labels\":{{", json_str(&m.name), m.kind.name());
    for (i, (k, v)) in m.labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}:{}", json_str(k), json_str(v));
    }
    s.push('}');
    match &m.value {
        SnapshotValue::Counter(v) => {
            let _ = write!(s, ",\"value\":{v}");
        }
        SnapshotValue::Gauge(v) => {
            let _ = write!(s, ",\"value\":{}", json_f64(*v));
        }
        SnapshotValue::Histogram(h) => {
            let _ = write!(
                s,
                ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                h.count,
                json_f64(h.sum),
                json_f64(h.max),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99)
            );
        }
    }
    s.push('}');
    s
}

/// `{a="1",b="2"}` label rendering, with an optional extra pair appended
/// (used for histogram `le`); empty label sets render as nothing.
fn label_set(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
        first = false;
    }
    if let Some((k, v)) = extra {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    s.push('}');
    s
}

/// Prometheus label-value escaping: backslash, quote, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Float formatting shared by the text format: integral values render
/// without an exponent or trailing `.0`, everything else as shortest `f64`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

/// JSON number rendering; non-finite values become null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (shared with the trace exporter).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_rendering() {
        assert_eq!(label_set(&[], None), "");
        let labels = vec![("stage".to_string(), "build".to_string())];
        assert_eq!(label_set(&labels, None), "{stage=\"build\"}");
        assert_eq!(label_set(&labels, Some(("le", "1.4"))), "{stage=\"build\",le=\"1.4\"}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn canonical_help_overrides_empty_site_help() {
        let r = Registry::new();
        r.counter("commgraph_louvain_sweeps_total", "", &[("mode", "serial")]).inc();
        let text = prometheus_text(&r);
        assert!(
            text.contains(
                "# HELP commgraph_louvain_sweeps_total \
                 Local-move sweeps executed by Louvain clustering."
            ),
            "table help substituted: {text}"
        );
        r.counter("off_table_total", "Site help.", &[]).inc();
        assert!(prometheus_text(&r).contains("# HELP off_table_total Site help."));
    }
}
