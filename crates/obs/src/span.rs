//! RAII span timers that feed histograms.
//!
//! A [`SpanGuard`] reads the clock at most twice — on creation and on drop —
//! and only when its histogram is actually backed by a registry. The noop
//! form never touches the clock, so wrapping a stage in a span costs one
//! `Option` branch when observability is disabled.

use crate::metrics::Histogram;
use std::time::Instant;

/// Times a region of code and records the elapsed seconds into a histogram
/// when dropped (or explicitly [`SpanGuard::stop`]ped).
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Start timing into `hist`. Noop histograms produce inert guards.
    pub fn start(hist: Histogram) -> Self {
        let start = hist.is_enabled().then(Instant::now);
        SpanGuard { hist, start }
    }

    /// An inert guard (for default-constructed holders).
    pub fn noop() -> Self {
        SpanGuard { hist: Histogram::noop(), start: None }
    }

    /// Stop now and return the elapsed seconds (0.0 for an inert guard).
    /// The observation is recorded exactly once.
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        match self.start.take() {
            Some(t0) => {
                let secs = t0.elapsed().as_secs_f64();
                self.hist.record(secs);
                secs
            }
            None => 0.0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_once_on_drop() {
        let h = Histogram(Some(std::sync::Arc::new(Default::default())));
        {
            let _guard = SpanGuard::start(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002);
    }

    #[test]
    fn stop_returns_elapsed_and_drop_does_not_double_record() {
        let h = Histogram(Some(std::sync::Arc::new(Default::default())));
        let guard = SpanGuard::start(h.clone());
        let secs = guard.stop();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn noop_guard_never_touches_the_clock_state() {
        let g = SpanGuard::start(Histogram::noop());
        assert_eq!(g.stop(), 0.0);
        assert_eq!(SpanGuard::noop().stop(), 0.0);
    }
}
