//! RAII span timers that feed histograms.
//!
//! A [`SpanGuard`] reads the clock at most twice — on creation and on drop —
//! and only when its histogram is actually backed by a registry. The noop
//! form never touches the clock, so wrapping a stage in a span costs one
//! `Option` branch when observability is disabled.

use crate::metrics::Histogram;
use crate::trace::TraceSpan;
use std::time::Instant;

/// Times a region of code and records the elapsed seconds into a histogram
/// when dropped (or explicitly [`SpanGuard::stop`]ped). A guard built via
/// [`SpanGuard::traced`] additionally closes a hierarchical [`TraceSpan`]
/// so the same region lands on the run timeline.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Option<Instant>,
    trace: Option<TraceSpan>,
}

impl SpanGuard {
    /// Start timing into `hist`. Noop histograms produce inert guards.
    pub fn start(hist: Histogram) -> Self {
        // lint:allow(clock-hygiene) span timing is measurement-only; the value feeds a histogram, never pipeline output
        let start = hist.is_enabled().then(Instant::now);
        SpanGuard { hist, start, trace: None }
    }

    /// Start timing into `hist` while also carrying `trace`; both close
    /// together. A noop `trace` adds exactly one `Option` branch.
    pub fn traced(hist: Histogram, trace: TraceSpan) -> Self {
        // lint:allow(clock-hygiene) span timing is measurement-only; the value feeds a histogram, never pipeline output
        let start = hist.is_enabled().then(Instant::now);
        let trace = trace.is_enabled().then_some(trace);
        SpanGuard { hist, start, trace }
    }

    /// An inert guard (for default-constructed holders).
    pub fn noop() -> Self {
        SpanGuard { hist: Histogram::noop(), start: None, trace: None }
    }

    /// True when this guard carries an enabled trace span. Callers use this
    /// to skip building attribute strings on untraced paths.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Attach an attribute to the carried trace span, if any (no-op for
    /// guards without an enabled trace span).
    pub fn trace_attr(&mut self, key: &str, value: &str) {
        if let Some(trace) = &mut self.trace {
            trace.attr(key, value);
        }
    }

    /// Stop now and return the elapsed seconds (0.0 for an inert guard).
    /// The observation is recorded exactly once.
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        if let Some(trace) = self.trace.take() {
            trace.finish();
        }
        match self.start.take() {
            Some(t0) => {
                let secs = t0.elapsed().as_secs_f64();
                self.hist.record(secs);
                secs
            }
            None => 0.0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_once_on_drop() {
        let h = Histogram(Some(std::sync::Arc::new(Default::default())));
        {
            let _guard = SpanGuard::start(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.002);
    }

    #[test]
    fn stop_returns_elapsed_and_drop_does_not_double_record() {
        let h = Histogram(Some(std::sync::Arc::new(Default::default())));
        let guard = SpanGuard::start(h.clone());
        let secs = guard.stop();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn noop_guard_never_touches_the_clock_state() {
        let g = SpanGuard::start(Histogram::noop());
        assert_eq!(g.stop(), 0.0);
        assert_eq!(SpanGuard::noop().stop(), 0.0);
    }

    #[test]
    fn traced_guard_closes_histogram_and_trace_together() {
        let h = Histogram(Some(std::sync::Arc::new(Default::default())));
        let tracer = std::sync::Arc::new(crate::trace::Tracer::new(8));
        {
            let mut guard = SpanGuard::traced(h.clone(), tracer.span("stage"));
            guard.trace_attr("k", "v");
        }
        assert_eq!(h.count(), 1);
        let dump = tracer.dump();
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].name, "stage");
        assert_eq!(dump.spans[0].attrs, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn traced_guard_with_noop_trace_stays_inert() {
        let mut g = SpanGuard::traced(Histogram::noop(), crate::trace::TraceSpan::noop());
        g.trace_attr("ignored", "ignored");
        assert_eq!(g.stop(), 0.0);
    }
}
