//! Leveled structured events with environment-variable filtering.
//!
//! Events are key-value structured records, not format strings. They go two
//! places:
//!
//! * the owning [`crate::Registry`]'s bounded in-memory buffer (always, when
//!   a registry is installed) — tests and exporters read it back;
//! * `stderr`, when the `COMMGRAPH_LOG` environment variable enables the
//!   event's level (`error`, `warn`, `info`, `debug`, `trace`; unset or
//!   `off` silences everything).
//!
//! The filter is parsed once per process. [`LogFilter::parse`] is exposed so
//! the parsing rules stay unit-testable without mutating process state.

use std::fmt;
use std::sync::OnceLock;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The system is misbehaving.
    Error,
    /// Something surprising that operators should see.
    Warn,
    /// Lifecycle milestones (baseline ready, window closed, run finished).
    Info,
    /// Per-stage detail.
    Debug,
    /// Firehose.
    Trace,
}

impl Level {
    /// Lower-case name, as used in `COMMGRAPH_LOG` and rendered output.
    pub fn name(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What `COMMGRAPH_LOG` resolved to: emit events at or above a level, or
/// nothing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFilter {
    /// Emit nothing to stderr (the default).
    Off,
    /// Emit events whose level is at least this severe.
    AtLeast(Level),
}

impl LogFilter {
    /// Parse a `COMMGRAPH_LOG` value. Unknown strings and empty values are
    /// `Off`; matching is case-insensitive and whitespace-tolerant.
    pub fn parse(raw: &str) -> LogFilter {
        match raw.trim().to_ascii_lowercase().as_str() {
            "error" => LogFilter::AtLeast(Level::Error),
            "warn" | "warning" => LogFilter::AtLeast(Level::Warn),
            "info" => LogFilter::AtLeast(Level::Info),
            "debug" => LogFilter::AtLeast(Level::Debug),
            "trace" => LogFilter::AtLeast(Level::Trace),
            _ => LogFilter::Off,
        }
    }

    /// True when an event at `level` passes the filter.
    pub fn allows(&self, level: Level) -> bool {
        match self {
            LogFilter::Off => false,
            LogFilter::AtLeast(min) => level <= *min,
        }
    }
}

/// The process-wide filter, read from `COMMGRAPH_LOG` exactly once.
pub fn env_filter() -> LogFilter {
    static FILTER: OnceLock<LogFilter> = OnceLock::new();
    *FILTER.get_or_init(|| {
        std::env::var("COMMGRAPH_LOG").map(|v| LogFilter::parse(&v)).unwrap_or(LogFilter::Off)
    })
}

/// True when an event at `level` would reach stderr under `COMMGRAPH_LOG`.
pub fn stderr_enabled(level: Level) -> bool {
    env_filter().allows(level)
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Component that emitted the event (`engine`, `pipeline`, `monitor`…).
    pub target: String,
    /// Human-readable summary.
    pub message: String,
    /// Structured payload, in emission order.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Render as a single log line: `[level] target: message k=v k=v`.
    pub fn render(&self) -> String {
        let mut s = format!("[{}] {}: {}", self.level, self.target, self.message);
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

/// Write an event to stderr if the env filter allows it.
pub(crate) fn emit_stderr(event: &Event) {
    if stderr_enabled(event.level) {
        eprintln!("{}", event.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing() {
        assert_eq!(LogFilter::parse(""), LogFilter::Off);
        assert_eq!(LogFilter::parse("off"), LogFilter::Off);
        assert_eq!(LogFilter::parse("nonsense"), LogFilter::Off);
        assert_eq!(LogFilter::parse("INFO"), LogFilter::AtLeast(Level::Info));
        assert_eq!(LogFilter::parse(" warn "), LogFilter::AtLeast(Level::Warn));
        assert_eq!(LogFilter::parse("warning"), LogFilter::AtLeast(Level::Warn));
    }

    #[test]
    fn filter_ordering() {
        let f = LogFilter::AtLeast(Level::Info);
        assert!(f.allows(Level::Error));
        assert!(f.allows(Level::Info));
        assert!(!f.allows(Level::Debug));
        assert!(!LogFilter::Off.allows(Level::Error));
    }

    #[test]
    fn event_renders_fields_in_order() {
        let e = Event {
            level: Level::Info,
            target: "engine".into(),
            message: "finish".into(),
            fields: vec![("records".into(), "5".into()), ("windows".into(), "2".into())],
        };
        assert_eq!(e.render(), "[info] engine: finish records=5 windows=2");
    }
}
