//! `commgraph-obs` — zero-dependency observability for the streaming stack.
//!
//! The paper's systems claim is about *cost* (§3.2): graph analytics must
//! run cheaply alongside the cloud it watches. This crate is how the
//! workspace measures that claim on itself, without pulling `tracing` or
//! `prometheus` into an offline build:
//!
//! * [`metrics`] — atomic [`Counter`]/[`Gauge`] and a log-linear-bucket
//!   [`Histogram`] (lock-free record path, p50/p95/p99/max).
//! * [`registry`] — a [`Registry`] of labeled metric families plus a
//!   bounded structured-event buffer.
//! * [`span`] — RAII [`SpanGuard`] timers that feed histograms.
//! * [`trace`] — hierarchical [`TraceSpan`]s with a bounded flight-recorder
//!   ring, a Chrome-trace-event exporter, and a text tree renderer.
//! * [`serve`] — a zero-dependency HTTP/1.0 introspection server exposing
//!   `/metrics`, `/metrics.json`, `/healthz`, `/trace`, `/events`,
//!   `/query`, `/alerts`, and `/slo`.
//! * [`tsdb`] — a bounded in-memory time-series store: a [`Scraper`]
//!   samples every registry family on an injectable tick (logical in
//!   tests/pipeline, wall-clock in the live server) into fixed-capacity
//!   delta-encoded per-series rings.
//! * [`alert`] — declarative threshold/absence/burn-rate rules over the
//!   store, driven through an inactive → pending → firing → resolved
//!   state machine that mirrors to the event log.
//! * [`cardinality`] — [`LabelCap`], the per-tenant label cap with an
//!   explicit `overflow` bucket.
//! * [`log`] — leveled structured [`Event`]s with `COMMGRAPH_LOG`
//!   env-filtered stderr mirroring.
//! * [`export`] — Prometheus text exposition and a JSON snapshot.
//! * [`names`] — the canonical `commgraph_*` metric-name table (the single
//!   source of truth; the `lintcheck` metric-registry lint enforces it).
//! * [`rate`] — the shared rate-from-counter-and-duration helpers.
//!
//! # The `Obs` handle
//!
//! Instrumented components take an [`Obs`] handle — either
//! [`Obs::noop`] (the `Default`) or [`Obs::new`] around an
//! `Arc<Registry>`. Every metric lookup on a noop handle returns a noop
//! metric; every span on a noop handle never reads the clock; no path
//! allocates. Results are bit-for-bit identical either way: observability
//! only ever *times* work, it never reroutes it.
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(obs::Registry::new());
//! let o = obs::Obs::new(registry.clone());
//! let records = o.counter("demo_records_total", "Records seen.", &[]);
//! {
//!     let _span = o.stage_span("build");
//!     records.add(128);
//! }
//! let text = obs::export::prometheus_text(&registry);
//! assert!(text.contains("demo_records_total 128"));
//! assert!(text.contains("commgraph_stage_seconds_count{stage=\"build\"} 1"));
//! ```
//!
//! Deep library code (the `linalg::par` scheduler) cannot practically
//! thread a handle through every call, so a process-global registry can be
//! [`install_global`]ed once; [`global`] returns a noop handle until then.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod cardinality;
pub mod export;
pub mod log;
pub mod metrics;
pub mod names;
pub mod query;
pub mod rate;
pub mod registry;
pub mod serve;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use crate::alert::{AlertEngine, AlertRule, AlertState, Condition, Slo, SloTotal, Transition};
pub use crate::cardinality::LabelCap;
pub use crate::log::{Event, Level, LogFilter};
pub use crate::metrics::{BucketCount, Counter, Gauge, Histogram, HistogramSnapshot};
pub use crate::query::{EvalError, Expr, ParseError, QueryError, RecordingRule, Sample, Value};
pub use crate::registry::{MetricKind, MetricSnapshot, Registry, SnapshotValue};
pub use crate::serve::{IntrospectionServer, ServerHandle};
pub use crate::span::SpanGuard;
pub use crate::trace::{FlightDump, SpanEvent, SpanRecord, TraceSpan, Tracer};
pub use crate::tsdb::{Query, SampleField, Scraper, ScraperHandle, SeriesKey, Tsdb, TsdbConfig};

use std::sync::{Arc, OnceLock};

/// Name of the shared per-stage wall-time histogram family. Every pipeline
/// stage records into `commgraph_stage_seconds{stage="..."}`; `bench_report`
/// and the exporters read the breakdown back out by this name.
pub const STAGE_SECONDS: &str = "commgraph_stage_seconds";

/// The canonical stage labels of the streaming arc, in execution order.
pub const STAGES: [&str; 6] = ["ingest", "build", "similarity", "cluster", "policy", "pca"];

/// A cheap, cloneable observability handle: either inert or backed by a
/// shared [`Registry`], optionally carrying a [`Tracer`] so spans minted
/// through it also land on the run timeline. See the crate docs for the
/// cost model.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Option<Arc<Registry>>,
    tracer: Option<Arc<Tracer>>,
}

impl Obs {
    /// A handle backed by `registry` (no tracer; see [`Obs::with_tracer`]).
    pub fn new(registry: Arc<Registry>) -> Self {
        Obs { registry: Some(registry), tracer: None }
    }

    /// The inert handle (same as `Obs::default()`).
    pub fn noop() -> Self {
        Obs { registry: None, tracer: None }
    }

    /// Attach a tracer: [`Obs::span`]/[`Obs::stage_span`] guards gain a
    /// hierarchical [`TraceSpan`] alongside their histogram, and
    /// [`Obs::trace_span`] mints standalone spans.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// True when a registry is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Open a hierarchical trace span named `name` (noop — one `Option`
    /// branch, no clock read — when no tracer is attached).
    pub fn trace_span(&self, name: &str) -> TraceSpan {
        match &self.tracer {
            Some(t) => t.span(name),
            None => TraceSpan::noop(),
        }
    }

    /// Open a parentless trace span for a per-run root (`pipeline_run`,
    /// `monitor_run`); noop without a tracer.
    pub fn trace_root(&self, name: &str) -> TraceSpan {
        match &self.tracer {
            Some(t) => t.root_span(name),
            None => TraceSpan::noop(),
        }
    }

    /// Resolve (or create) a counter; noop when disabled.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.registry {
            Some(r) => r.counter(name, help, labels),
            None => Counter::noop(),
        }
    }

    /// Resolve (or create) a gauge; noop when disabled.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.registry {
            Some(r) => r.gauge(name, help, labels),
            None => Gauge::noop(),
        }
    }

    /// Resolve (or create) a histogram; noop when disabled.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.registry {
            Some(r) => r.histogram(name, help, labels),
            None => Histogram::noop(),
        }
    }

    /// Start a span into an arbitrary histogram family. With a tracer
    /// attached, the guard also opens a hierarchical trace span named
    /// `name`, parented on the innermost open span.
    pub fn span(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> SpanGuard {
        SpanGuard::traced(self.histogram(name, help, labels), self.trace_span(name))
    }

    /// Start a span into the shared [`STAGE_SECONDS`] family for one of the
    /// pipeline stages (any label value is accepted; the canonical set is
    /// [`STAGES`]). With a tracer attached, the trace span is named after
    /// the stage so stage children nest under the per-run root.
    pub fn stage_span(&self, stage: &str) -> SpanGuard {
        SpanGuard::traced(
            self.histogram(
                STAGE_SECONDS,
                "Wall-clock seconds spent per streaming-pipeline stage.",
                &[("stage", stage)],
            ),
            self.trace_span(stage),
        )
    }

    /// True when an event at `level` would be observable at all — buffered
    /// (registry attached) or printed (`COMMGRAPH_LOG` allows it). Callers
    /// use this to skip building field strings on disabled paths.
    #[inline]
    pub fn logs(&self, level: Level) -> bool {
        self.registry.is_some() || crate::log::stderr_enabled(level)
    }

    /// Emit a structured event: buffered in the registry (when attached)
    /// and mirrored to stderr under `COMMGRAPH_LOG`. Does nothing — and
    /// allocates nothing beyond what the caller already built — when
    /// [`Obs::logs`] is false for `level`.
    pub fn event(&self, level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
        if !self.logs(level) {
            return;
        }
        let event = Event {
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        match &self.registry {
            Some(r) => r.push_event(event),
            None => crate::log::emit_stderr(&event),
        }
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Install a process-global registry for code that cannot take an [`Obs`]
/// parameter (the `linalg` scheduler). First caller wins; returns whether
/// this call installed it.
pub fn install_global(registry: Arc<Registry>) -> bool {
    GLOBAL.set(registry).is_ok()
}

/// The handle onto the global registry — noop until [`install_global`].
pub fn global() -> Obs {
    match GLOBAL.get() {
        Some(r) => Obs::new(r.clone()),
        None => Obs::noop(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_obs_yields_noop_metrics() {
        let o = Obs::noop();
        assert!(!o.is_enabled());
        assert!(!o.counter("c_total", "h", &[]).is_enabled());
        assert!(!o.histogram("h_seconds", "h", &[]).is_enabled());
        let _ = o.stage_span("build"); // inert
        o.event(Level::Error, "t", "m", &[]); // best effort, must not panic
    }

    #[test]
    fn backed_obs_resolves_shared_metrics() {
        let r = Arc::new(Registry::new());
        let o = Obs::new(r.clone());
        o.counter("c_total", "h", &[]).add(2);
        assert_eq!(r.counter("c_total", "h", &[]).get(), 2);
        o.event(Level::Info, "t", "hello", &[("k", "v".to_string())]);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn stage_span_lands_in_the_shared_family() {
        let r = Arc::new(Registry::new());
        let o = Obs::new(r.clone());
        o.stage_span("pca").stop();
        let h = r.histogram(STAGE_SECONDS, "", &[("stage", "pca")]);
        assert_eq!(h.count(), 1);
    }
}
