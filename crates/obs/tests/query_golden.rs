//! Golden parser + evaluator snapshots for `obs::query` against a
//! deterministic fixture store.
//!
//! Each expression is parsed (the typed AST's `Debug` form is part of the
//! snapshot) and evaluated as a range query over the fixture's six ticks;
//! the rendered document is compared byte-for-byte against the committed
//! snapshot. After an intentional output change, regenerate with:
//!
//! ```text
//! OBS_QUERY_UPDATE_GOLDEN=1 cargo test -p commgraph-obs --test query_golden
//! ```
//!
//! and review the diff like any other source change. Because the evaluator
//! is clock-free and the fixture is hand-written, any byte drift here is a
//! behaviour change in the lexer, parser, or evaluator — never noise.

use obs::tsdb::{SampleField, SeriesKey, Tsdb, TsdbConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

const TICKS: u64 = 6;

/// A hand-written store: two counter series with different slopes (one with
/// a gap), a gauge that moves both ways, and a histogram family with the
/// quantile fields `histogram_quantile` consumes.
fn fixture_store() -> Tsdb {
    let store = Tsdb::new(TsdbConfig::default());
    for tick in 1..=TICKS {
        store.append(SeriesKey::value("requests_total", &[("sub", "a")]), tick, (tick * 10) as f64);
        // `sub="b"` skips tick 3 — instant selectors must carry the newest
        // sample at or before the tick across the gap.
        if tick != 3 {
            store.append(
                SeriesKey::value("requests_total", &[("sub", "b")]),
                tick,
                (tick * 4) as f64,
            );
        }
        let swing = if tick % 2 == 0 { 2.5 } else { -1.5 };
        store.append(SeriesKey::value("temp", &[]), tick, 20.0 + tick as f64 * swing);
        for (field, scale) in [
            (SampleField::Count, 1.0),
            (SampleField::Sum, 0.25),
            (SampleField::P50, 0.01),
            (SampleField::P95, 0.05),
            (SampleField::P99, 0.09),
            (SampleField::Max, 0.1),
        ] {
            store.append(
                SeriesKey { name: "lag_seconds".to_string(), labels: vec![], field },
                tick,
                tick as f64 * scale,
            );
        }
    }
    store
}

/// Expressions covering every construct the engine supports: selectors and
/// matchers (exact, negated, glob), every range function, aggregation with
/// `by`/`without`, arithmetic, comparisons, quantiles, scalar helpers, and
/// a few parse errors (their positions are part of the contract).
const EXPRS: &[&str] = &[
    "requests_total",
    "requests_total{sub=\"a\"}",
    "requests_total{sub!=\"a\"}",
    "requests_total{sub=\"*\"}",
    "rate(requests_total[2])",
    "increase(requests_total[3])",
    "delta(temp[2])",
    "avg_over_time(temp[3])",
    "max_over_time(temp[3])",
    "min_over_time(temp[3])",
    "count_over_time(requests_total{sub=\"b\"}[3])",
    "absent_over_time(missing_family[2])",
    "sum by (sub) (rate(requests_total[2]))",
    "sum(requests_total)",
    "count without (sub) (requests_total)",
    "histogram_quantile(0.99, lag_seconds)",
    "requests_total > 25",
    "rate(requests_total[2]) * 60 + 1",
    "clamp_max(temp, 21) and requests_total{sub=\"a\"} > 0",
    "min(tick(), 4)",
    "-temp unless missing_family",
    // Parse errors: the reported position and message are snapshotted too.
    "rate(requests_total)",
    "sum by (requests_total",
    "1 +",
    "requests_total{sub~\"a\"}",
];

fn render_snapshot() -> String {
    let store = fixture_store();
    let mut out = String::new();
    for src in EXPRS {
        let _ = writeln!(out, "== {src}");
        match obs::query::parse(src) {
            Ok(expr) => {
                let _ = writeln!(out, "ast: {expr:?}");
                match obs::query::query_range_json(&store, src, 1, TICKS, 1) {
                    Ok(json) => {
                        let _ = writeln!(out, "range: {json}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "eval error: {e}");
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "parse error: {e}");
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn parser_and_evaluator_match_the_committed_snapshot() {
    let got = render_snapshot();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("query.txt");
    if std::env::var_os("OBS_QUERY_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "golden mismatch; if intentional, regenerate with \
         OBS_QUERY_UPDATE_GOLDEN=1 cargo test -p commgraph-obs --test query_golden"
    );
}

/// The snapshot itself must be deterministic: rendering twice against two
/// independently built stores produces identical bytes.
#[test]
fn snapshot_rendering_is_deterministic() {
    assert_eq!(render_snapshot(), render_snapshot());
}
