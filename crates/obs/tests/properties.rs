//! Integration tests for the observability crate: golden exposition output,
//! correctness under thread contention, and histogram quantile accuracy
//! against an exact sorted baseline.

use obs::export::{json_snapshot, prometheus_text};
use obs::{Level, Obs, Registry};
use std::sync::Arc;

#[test]
fn prometheus_text_golden() {
    let r = Registry::new();
    let h = r.histogram("demo_latency_seconds", "Request latency.", &[("stage", "build")]);
    h.record(1.0); // falls in [1.0, 1.2)
    h.record(3.0); // falls in [3.0, 3.2)
    r.gauge("demo_queue_depth", "Queue depth.", &[]).set(3.0);
    r.counter("demo_requests_total", "Requests served.", &[("route", "a")]).add(7);
    r.counter("demo_requests_total", "Requests served.", &[("route", "b")]);

    let expected = "\
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{stage=\"build\",le=\"1.2\"} 1
demo_latency_seconds_bucket{stage=\"build\",le=\"3.2\"} 2
demo_latency_seconds_bucket{stage=\"build\",le=\"+Inf\"} 2
demo_latency_seconds_sum{stage=\"build\"} 4
demo_latency_seconds_count{stage=\"build\"} 2
# HELP demo_queue_depth Queue depth.
# TYPE demo_queue_depth gauge
demo_queue_depth 3
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route=\"a\"} 7
demo_requests_total{route=\"b\"} 0
";
    assert_eq!(prometheus_text(&r), expected);
}

#[test]
fn json_snapshot_is_parseable_and_complete() {
    let r = Registry::new();
    r.counter("a_total", "Help with \"quotes\".", &[("k", "v")]).add(5);
    r.histogram("b_seconds", "h", &[]).record(0.5);
    let o = Obs::new(Arc::new(Registry::new())); // separate: events on r directly
    drop(o);
    r.push_event(obs::Event {
        level: Level::Warn,
        target: "test".into(),
        message: "line\nbreak".into(),
        fields: vec![("x".into(), "1".into())],
    });

    let json = json_snapshot(&r);
    // Parse with the workspace's serde_json shim to prove well-formedness.
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let metrics = v.get("metrics").and_then(|m| m.as_array()).expect("metrics array");
    assert_eq!(metrics.len(), 2);
    assert_eq!(metrics[0].get("name").unwrap().as_str().unwrap(), "a_total");
    assert_eq!(metrics[0].get("value").unwrap().as_u64().unwrap(), 5);
    assert_eq!(metrics[1].get("kind").unwrap().as_str().unwrap(), "histogram");
    assert_eq!(metrics[1].get("count").unwrap().as_u64().unwrap(), 1);
    let events = v.get("events").and_then(|e| e.as_array()).expect("events array");
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].get("level").unwrap().as_str().unwrap(), "warn");
}

#[test]
fn counters_are_exact_under_contention() {
    let r = Arc::new(Registry::new());
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = r.clone();
            s.spawn(move || {
                // Every thread resolves its own handle — same underlying cell.
                let c = r.counter("contended_total", "h", &[]);
                let g = r.gauge("contended_gauge", "h", &[]);
                let h = r.histogram("contended_seconds", "h", &[]);
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1.0);
                    // Integer-valued samples keep the f64 CAS sum exact.
                    h.record((1 + (t as u64 + i) % 4) as f64);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(r.counter("contended_total", "h", &[]).get(), total);
    assert_eq!(r.gauge("contended_gauge", "h", &[]).get(), total as f64);
    let h = r.histogram("contended_seconds", "h", &[]);
    assert_eq!(h.count(), total);
    // Values cycle 1,2,3,4 uniformly per thread, so the exact sum is known.
    assert_eq!(h.sum(), (THREADS as u64 * PER_THREAD / 4 * (1 + 2 + 3 + 4)) as f64);
    assert_eq!(h.max(), 4.0);
}

/// Deterministic LCG in (0, 1).
fn lcg() -> impl FnMut() -> f64 {
    let mut state = 0x0123_4567_89AB_CDEF_u64;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

#[test]
fn histogram_quantiles_track_exact_sorted_baseline() {
    let r = Registry::new();
    let h = r.histogram("q_seconds", "h", &[]);
    let mut next = lcg();
    // Exponential-ish latencies spanning several decades.
    let values: Vec<f64> = (0..20_000).map(|_| -next().ln() * 0.05).collect();
    for &v in &values {
        h.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (q, name) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let exact = sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)];
        let est = h.quantile(q);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.25,
            "{name}: estimate {est} vs exact {exact} (rel err {rel:.3}) exceeds bucket tolerance"
        );
    }
    assert_eq!(h.quantile(1.0), h.max());
    assert_eq!(h.count(), 20_000);
}

/// Property: across any condition sequence, the alert state machine never
/// skips the pending state on the way to firing, only resolves out of
/// firing, and re-fires a resolved alert through pending again. Driven by a
/// deterministic pseudo-random signal against rules at several hold times.
#[test]
fn alert_state_machine_transitions_are_well_formed_under_random_signals() {
    use obs::alert::{Op, Selector};
    use obs::AlertState::{Firing, Inactive, Pending, Resolved};

    let store = obs::Tsdb::new(obs::TsdbConfig::default());
    let engine = obs::AlertEngine::new(Obs::noop());
    for hold in [0u64, 1, 2, 4] {
        engine.add_rule(obs::AlertRule::threshold(
            &format!("prop_hold_{hold}"),
            Selector::value("prop_signal"),
            Op::Gt,
            0.5,
            hold,
        ));
    }
    let key = obs::SeriesKey::value("prop_signal", &[]);
    let mut next = lcg();
    let mut all = Vec::new();
    for tick in 1..=600u64 {
        store.append(key.clone(), tick, next());
        all.extend(engine.evaluate(tick, &store));
    }
    assert!(all.len() > 50, "random signal exercises the machine: {}", all.len());

    let mut last = std::collections::HashMap::new();
    let mut prev_tick = 0u64;
    for t in &all {
        assert!(t.tick >= prev_tick, "transitions are tick-ordered");
        prev_tick = t.tick;
        let from = last.get(&t.rule).copied().unwrap_or(Inactive);
        assert_eq!(t.from, from, "{}: transitions chain without gaps", t.rule);
        match t.to {
            Pending => assert!(matches!(t.from, Inactive | Resolved), "{t:?}"),
            Firing => assert_eq!(t.from, Pending, "firing only enters from pending: {t:?}"),
            Resolved => assert_eq!(t.from, Firing, "resolved only exits firing: {t:?}"),
            Inactive => assert!(matches!(t.from, Pending | Resolved), "{t:?}"),
        }
        last.insert(t.rule.clone(), t.to);
    }
    // Replaying the full transition log lands exactly on the live statuses.
    for s in engine.statuses() {
        assert_eq!(s.state, last.get(&s.rule).copied().unwrap_or(Inactive), "{}", s.rule);
    }
}

/// Property: under any label stream, the cardinality cap admits at most
/// `cap` distinct values, routes everything else to the shared overflow
/// bucket, and never loses a count — per-label tallies plus the overflow
/// bucket always sum to the number of events.
#[test]
fn label_cap_conserves_counts_under_random_label_streams() {
    let r = Arc::new(Registry::new());
    let o = Obs::new(r.clone());
    let cap = obs::LabelCap::new(&o, "prop", 8);
    let mut next = lcg();
    let mut sim_admitted = std::collections::HashSet::new();
    let mut expected = std::collections::HashMap::<String, u64>::new();
    const EVENTS: u64 = 5_000;
    for _ in 0..EVENTS {
        let label = format!("tenant-{}", (next() * 40.0) as usize);
        let routed = cap.resolve(&label);
        r.counter("prop_events_total", "h", &[("tenant", &routed)]).inc();
        if sim_admitted.contains(&label) || sim_admitted.len() < 8 {
            sim_admitted.insert(label.clone());
            assert_eq!(routed, label, "admitted labels pass through unchanged");
        } else {
            assert_eq!(routed, obs::cardinality::OVERFLOW, "late labels route to overflow");
        }
        *expected.entry(routed).or_default() += 1;
    }
    assert_eq!(cap.admitted(), 8, "pool of 40 labels saturates a cap of 8");
    let mut total = 0u64;
    for m in r.snapshot() {
        if m.name != "prop_events_total" {
            continue;
        }
        let obs::SnapshotValue::Counter(v) = m.value else { panic!("counter family") };
        let label = &m.labels[0].1;
        assert_eq!(Some(&v), expected.get(label.as_str()), "tally for {label}");
        total += v;
    }
    assert_eq!(total, EVENTS, "no event lost or double-counted across the cap");
    let routed_overflow =
        r.counter("commgraph_obs_label_overflow_total", "", &[("family", "prop")]).get();
    assert_eq!(routed_overflow, expected.get(obs::cardinality::OVERFLOW).copied().unwrap_or(0));
}

#[test]
fn spans_feed_stage_histograms_through_the_handle() {
    let r = Arc::new(Registry::new());
    let o = Obs::new(r.clone());
    for stage in obs::STAGES {
        o.stage_span(stage).stop();
    }
    for stage in obs::STAGES {
        let h = r.histogram(obs::STAGE_SECONDS, "", &[("stage", stage)]);
        assert_eq!(h.count(), 1, "stage {stage} recorded");
    }
    // The exposition carries every stage label.
    let text = prometheus_text(&r);
    for stage in obs::STAGES {
        assert!(text.contains(&format!("stage=\"{stage}\"")), "{stage} exported");
    }
}

/// Property: `sum by (sub) (...)` conserves totals. For random counter
/// histories over random label sets, grouping by the label and summing the
/// groups equals the ungrouped `sum(...)` at every tick — aggregation moves
/// samples between buckets, never creates or destroys value.
#[test]
fn sum_by_conserves_totals_over_random_histories() {
    use obs::tsdb::{SeriesKey, Tsdb, TsdbConfig};

    let mut rnd = lcg();
    for case in 0..20 {
        let store = Tsdb::new(TsdbConfig::default());
        let subs = 1 + (rnd() * 5.0) as usize;
        let ticks = 2 + (rnd() * 20.0) as u64;
        for s in 0..subs {
            let sub = format!("s{s}");
            let mut total = 0.0f64;
            for tick in 1..=ticks {
                total += (rnd() * 50.0).floor();
                // Random gaps: skip ~1 in 4 ticks after the first.
                if tick == 1 || rnd() > 0.25 {
                    store.append(SeriesKey::value("req_total", &[("sub", &sub)]), tick, total);
                }
            }
        }
        let grouped = obs::query::parse("sum by (sub) (req_total)").expect("parses");
        let flat = obs::query::parse("sum(req_total)").expect("parses");
        for tick in 1..=ticks {
            let by = match obs::query::eval(&store, &grouped, tick).expect("evaluates") {
                obs::Value::Vector(v) => v.iter().map(|s| s.value).sum::<f64>(),
                obs::Value::Scalar(_) => unreachable!("aggregation yields a vector"),
            };
            let all = match obs::query::eval(&store, &flat, tick).expect("evaluates") {
                obs::Value::Vector(v) => v.iter().map(|s| s.value).sum::<f64>(),
                obs::Value::Scalar(_) => unreachable!("aggregation yields a vector"),
            };
            assert!(
                (by - all).abs() < 1e-9 * all.abs().max(1.0),
                "case {case} tick {tick}: sum by (sub) = {by}, sum = {all}"
            );
        }
    }
}

/// Property: `rate` and `increase` of a monotone counter are non-negative
/// at every tick for every window size — the window arithmetic can never
/// manufacture a decrease from a counter that only goes up.
#[test]
fn rate_of_monotone_counter_is_non_negative() {
    use obs::tsdb::{SeriesKey, Tsdb, TsdbConfig};

    let mut rnd = lcg();
    for case in 0..20 {
        let store = Tsdb::new(TsdbConfig::default());
        let ticks = 3 + (rnd() * 25.0) as u64;
        let mut total = 0.0f64;
        for tick in 1..=ticks {
            total += (rnd() * 100.0).floor();
            if tick == 1 || rnd() > 0.3 {
                store.append(SeriesKey::value("mono_total", &[]), tick, total);
            }
        }
        for window in [1u64, 2, 3, 7, 50] {
            for (func, src) in [
                ("rate", format!("rate(mono_total[{window}])")),
                ("increase", format!("increase(mono_total[{window}])")),
            ] {
                let expr = obs::query::parse(&src).expect("parses");
                for tick in 1..=ticks + 2 {
                    if let obs::Value::Vector(v) =
                        obs::query::eval(&store, &expr, tick).expect("evaluates")
                    {
                        for s in &v {
                            assert!(
                                s.value >= 0.0,
                                "case {case}: {func}[{window}] at tick {tick} went \
                                 negative: {}",
                                s.value
                            );
                        }
                    }
                }
            }
        }
    }
}
