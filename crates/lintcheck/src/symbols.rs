//! Workspace symbol index: every function and method in library code,
//! with its module path, owning `impl`/`trait` type, body token range, and
//! per-file `use`-import table.
//!
//! The index is the substrate for the interprocedural lints (L5–L7): the
//! call-graph builder ([`crate::callgraph`]) resolves call sites against
//! it. Extraction walks the flat token stream with an explicit scope stack
//! (`mod` blocks, `impl`/`trait` blocks, `fn` bodies) — no syntax tree —
//! and every container is a `BTreeMap` so index order, and therefore every
//! downstream finding list, is deterministic.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One indexed function or method.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Fully qualified name: `crate::module::fn` or
    /// `crate::module::Type::method`.
    pub qname: String,
    /// Lib crate name (`obs`, `algos`, `commgraph_graph`, ...).
    pub crate_name: String,
    /// Module path within the crate (empty segments joined with `::`),
    /// including the crate name head.
    pub module: String,
    /// Bare function name (last path segment).
    pub name: String,
    /// `impl`/`trait` type the function is defined on, if any.
    pub owner: Option<String>,
    /// Index into the parsed-file list this symbol came from.
    pub file_idx: usize,
    /// Workspace-relative path (denormalized for findings).
    pub file: String,
    /// 1-based line/col of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token range `[start, end)` of the body block, braces included.
    pub body: (usize, usize),
    /// True when the definition sits inside a `#[cfg(test)]`/`#[test]`
    /// region — excluded from contract propagation.
    pub is_test: bool,
}

/// One call site extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `name(...)` — unqualified call.
    Free {
        /// Callee name.
        name: String,
        /// 1-based line of the call.
        line: u32,
        /// Token index of the callee name in the file's token stream.
        tok: usize,
    },
    /// `seg::seg::name(...)` — path-qualified call; `path` holds every
    /// segment before the final name.
    Path {
        /// Leading path segments.
        path: Vec<String>,
        /// Callee name.
        name: String,
        /// 1-based line of the call.
        line: u32,
        /// Token index of the callee name in the file's token stream.
        tok: usize,
    },
    /// `self.name(...)` / `Self::name(...)` — resolved against the
    /// enclosing `impl` type.
    SelfMethod {
        /// Method name.
        name: String,
        /// 1-based line of the call.
        line: u32,
        /// Token index of the callee name in the file's token stream.
        tok: usize,
    },
    /// `expr.name(...)` — receiver type unknown; resolved only when the
    /// method name is unambiguous workspace-wide.
    Method {
        /// Method name.
        name: String,
        /// 1-based line of the call.
        line: u32,
        /// Token index of the callee name in the file's token stream.
        tok: usize,
    },
}

impl CallSite {
    /// The callee's bare name.
    pub fn name(&self) -> &str {
        match self {
            CallSite::Free { name, .. }
            | CallSite::Path { name, .. }
            | CallSite::SelfMethod { name, .. }
            | CallSite::Method { name, .. } => name,
        }
    }

    /// 1-based source line of the call.
    pub fn line(&self) -> u32 {
        match self {
            CallSite::Free { line, .. }
            | CallSite::Path { line, .. }
            | CallSite::SelfMethod { line, .. }
            | CallSite::Method { line, .. } => *line,
        }
    }

    /// Token index of the callee name in its file's token stream.
    pub fn tok(&self) -> usize {
        match self {
            CallSite::Free { tok, .. }
            | CallSite::Path { tok, .. }
            | CallSite::SelfMethod { tok, .. }
            | CallSite::Method { tok, .. } => *tok,
        }
    }
}

/// The whole-workspace index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Symbols in deterministic (qname-sorted) order.
    pub fns: Vec<FnSym>,
    /// qname → index into `fns`.
    pub by_qname: BTreeMap<String, usize>,
    /// `module` → bare name → index (free functions only).
    pub by_module: BTreeMap<String, BTreeMap<String, usize>>,
    /// `(owner type, method name)` → indices (an owner name may be reused
    /// across crates).
    pub by_owner_method: BTreeMap<(String, String), Vec<usize>>,
    /// method name → indices of every method with that bare name.
    pub by_method_name: BTreeMap<String, Vec<usize>>,
    /// file index → import table: bare name → full `::`-joined path.
    pub imports: Vec<BTreeMap<String, String>>,
    /// Call sites per symbol (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
}

/// Derive the lib crate name for each source file from the manifest set:
/// `(manifest rel dir → crate name)`. The name comes from the `[lib]`
/// section's `name` when present, else the `[package]` name with `-`
/// mapped to `_`.
pub fn crate_names(manifests: &[(String, String)]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (rel, text) in manifests {
        let dir = rel.strip_suffix("Cargo.toml").unwrap_or(rel).trim_end_matches('/').to_string();
        if let Some(name) = manifest_lib_name(text) {
            out.insert(dir, name);
        }
    }
    out
}

/// Pull the lib name out of one manifest: prefer `[lib] name = "..."`,
/// fall back to `[package] name = "..."` (dashes normalized).
fn manifest_lib_name(text: &str) -> Option<String> {
    let mut section = "";
    let mut package: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']');
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                let name = v.trim().trim_matches('"').replace('-', "_");
                match section {
                    "lib" => return Some(name),
                    "package" if package.is_none() => package = Some(name),
                    _ => {}
                }
            }
        }
    }
    package
}

/// The crate name and module path for one source file, from its path:
/// `crates/obs/src/tsdb.rs` → (`obs`, `obs::tsdb`), `src/lib.rs` → the
/// root package. `mod.rs` and `lib.rs` map to their directory module.
fn file_module(rel: &str, crates: &BTreeMap<String, String>) -> Option<(String, String)> {
    // Longest manifest-dir prefix wins (the workspace root is "" and
    // matches everything).
    let mut best: Option<(&str, &str)> = None;
    for (dir, name) in crates {
        let matches = dir.is_empty() || rel.starts_with(&format!("{dir}/"));
        if matches && best.is_none_or(|(d, _)| dir.len() >= d.len()) {
            best = Some((dir.as_str(), name.as_str()));
        }
    }
    let (dir, crate_name) = best?;
    let tail = if dir.is_empty() { rel } else { rel.strip_prefix(dir)?.trim_start_matches('/') };
    let tail = tail.strip_prefix("src/")?;
    let mut mods: Vec<&str> = Vec::new();
    for part in tail.split('/') {
        if let Some(stem) = part.strip_suffix(".rs") {
            if stem != "lib" && stem != "mod" && stem != "main" {
                mods.push(stem);
            }
        } else {
            mods.push(part);
        }
    }
    let mut module = crate_name.to_string();
    for m in &mods {
        module.push_str("::");
        module.push_str(m);
    }
    Some((crate_name.to_string(), module))
}

/// Build the index over the parsed library files. `files` must be the
/// full parse list; non-lib files should be filtered by the caller via
/// `in_scope`.
pub fn index(
    files: &[SourceFile<'_>],
    in_scope: &[bool],
    crates: &BTreeMap<String, String>,
) -> SymbolIndex {
    let mut raw: Vec<(FnSym, Vec<CallSite>)> = Vec::new();
    let mut imports: Vec<BTreeMap<String, String>> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        if !in_scope[file_idx] {
            imports.push(BTreeMap::new());
            continue;
        }
        let Some((crate_name, module)) = file_module(&file.rel, crates) else {
            imports.push(BTreeMap::new());
            continue;
        };
        let (syms, imp) = extract_file(file, file_idx, &crate_name, &module);
        raw.extend(syms);
        imports.push(imp);
    }
    raw.sort_by(|a, b| (&a.0.qname, a.0.line).cmp(&(&b.0.qname, b.0.line)));

    let mut idx = SymbolIndex { imports, ..SymbolIndex::default() };
    for (sym, calls) in raw {
        let i = idx.fns.len();
        idx.by_qname.entry(sym.qname.clone()).or_insert(i);
        if let Some(owner) = &sym.owner {
            idx.by_owner_method.entry((owner.clone(), sym.name.clone())).or_default().push(i);
            idx.by_method_name.entry(sym.name.clone()).or_default().push(i);
        } else {
            idx.by_module
                .entry(sym.module.clone())
                .or_default()
                .entry(sym.name.clone())
                .or_insert(i);
        }
        idx.fns.push(sym);
        idx.calls.push(calls);
    }
    idx
}

/// One scope on the extraction stack.
enum Scope {
    /// `mod name {` — closes at token index `.1`.
    Module(String, usize),
    /// `impl Type {` / `trait Type {`.
    Impl(String, usize),
    /// A function body (nested items inherit its path).
    Fn(usize),
}

impl Scope {
    fn end(&self) -> usize {
        match self {
            Scope::Module(_, e) | Scope::Impl(_, e) | Scope::Fn(e) => *e,
        }
    }
}

fn extract_file(
    file: &SourceFile<'_>,
    file_idx: usize,
    crate_name: &str,
    module: &str,
) -> (Vec<(FnSym, Vec<CallSite>)>, BTreeMap<String, String>) {
    let toks = &file.lexed.toks;
    let mut out: Vec<(FnSym, Vec<CallSite>)> = Vec::new();
    let mut imports: BTreeMap<String, String> = BTreeMap::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while stack.last().is_some_and(|s| s.end() <= i) {
            stack.pop();
        }
        let t = &toks[i];
        if t.is_ident("use") {
            i = parse_use(toks, i, module, &mut imports);
            continue;
        }
        if t.is_ident("mod") {
            // `mod name {` opens a scope; `mod name;` is a file reference.
            if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                if name.kind == TokKind::Ident && open.is_punct('{') {
                    let end = match_brace(toks, i + 2);
                    stack.push(Scope::Module(name.text.to_string(), end));
                    i += 3;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((owner, body_open)) = impl_owner(toks, i) {
                let end = match_brace(toks, body_open);
                stack.push(Scope::Impl(owner, end));
                i = body_open + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some((name_tok, body)) = fn_header(toks, i) {
                let owner = stack.iter().rev().find_map(|s| match s {
                    Scope::Impl(o, _) => Some(o.clone()),
                    _ => None,
                });
                let mod_path = full_module(module, &stack);
                let qname = match &owner {
                    Some(o) => format!("{mod_path}::{o}::{}", name_tok.text),
                    None => format!("{mod_path}::{}", name_tok.text),
                };
                let calls = match body {
                    Some((s, e)) => extract_calls(toks, s, e),
                    None => Vec::new(),
                };
                let (bs, be) = body.unwrap_or((i, i + 1));
                out.push((
                    FnSym {
                        qname,
                        crate_name: crate_name.to_string(),
                        module: mod_path,
                        name: name_tok.text.to_string(),
                        owner,
                        file_idx,
                        file: file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        body: (bs, be),
                        is_test: file.in_test_region(i),
                    },
                    calls,
                ));
                if let Some((s, e)) = body {
                    stack.push(Scope::Fn(e));
                    i = s + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    (out, imports)
}

/// The module path including enclosing `mod` blocks (fn scopes do not
/// extend the path; nested items inside bodies are rare and keeping them
/// on the file module keeps resolution simple).
fn full_module(base: &str, stack: &[Scope]) -> String {
    let mut path = base.to_string();
    for s in stack {
        if let Scope::Module(name, _) = s {
            path.push_str("::");
            path.push_str(name);
        }
    }
    path
}

/// Token index of the `}` matching the `{` at `open` (or the end of the
/// stream when unbalanced, so extraction degrades instead of panicking).
fn match_brace(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// For an `impl`/`trait` keyword at `kw`: the owning type name and the
/// body-open brace index. Skips `<...>` generic params (tolerating `->`
/// inside), takes the last depth-0 path ident before the body — which
/// handles `impl Type`, `impl Trait for Type`, and `impl x::y::Type<T>`.
fn impl_owner(toks: &[Tok<'_>], kw: usize) -> Option<(String, usize)> {
    let mut depth = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut j = kw + 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` return arrows inside generic bounds do not close a
            // bracket.
            if !(j >= 1 && toks[j - 1].is_punct('-')) {
                depth -= 1;
            }
        } else if depth == 0 {
            if t.is_punct('{') {
                return last_ident.map(|n| (n.to_string(), j));
            }
            if t.is_punct(';') {
                return None; // `impl Trait for Type;` / opaque forms
            }
            if t.is_ident("for") {
                last_ident = None; // the type follows; restart
            } else if t.kind == TokKind::Ident && !t.is_ident("where") {
                last_ident = Some(t.text);
            }
        }
        j += 1;
        if j > kw + 120 {
            return None;
        }
    }
    None
}

/// For a `fn` keyword at `kw`: the name token and, when the item has a
/// body, its `{`/`}` token range. Trait-method declarations end at `;`.
fn fn_header<'a, 't>(
    toks: &'a [Tok<'t>],
    kw: usize,
) -> Option<(&'a Tok<'t>, Option<(usize, usize)>)> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Scan past generics/params/return type/where clause to `{` or `;`.
    let mut j = kw + 2;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(j >= 1 && toks[j - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if angle <= 0 && paren == 0 {
            if t.is_punct('{') {
                return Some((name, Some((j, match_brace(toks, j)))));
            }
            if t.is_punct(';') {
                return Some((name, None));
            }
        }
        j += 1;
    }
    None
}

/// Parse one `use` item starting at the `use` keyword; extends `imports`
/// and returns the index just past the terminating `;`. Handles paths,
/// `as` renames, nested `{...}` groups, and records globs as
/// `<path>::*`-keyed entries (consulted as a resolution fallback).
fn parse_use(
    toks: &[Tok<'_>],
    kw: usize,
    module: &str,
    imports: &mut BTreeMap<String, String>,
) -> usize {
    // Collect tokens to the `;`.
    let mut end = kw + 1;
    while end < toks.len() && !toks[end].is_punct(';') {
        end += 1;
    }
    let path_toks = &toks[kw + 1..end.min(toks.len())];
    collect_use(path_toks, &[], module, imports);
    end + 1
}

fn collect_use(
    toks: &[Tok<'_>],
    prefix: &[String],
    module: &str,
    imports: &mut BTreeMap<String, String>,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(':') {
            i += 1;
        } else if t.is_punct('{') {
            // Split the group on its top-level commas and recurse with the
            // accumulated prefix.
            let mut depth = 0i32;
            let mut start = i + 1;
            for (j, u) in toks.iter().enumerate().skip(i) {
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        if start < j {
                            collect_use(&toks[start..j], &segs, module, imports);
                        }
                        return;
                    }
                } else if u.is_punct(',') && depth == 1 {
                    if start < j {
                        collect_use(&toks[start..j], &segs, module, imports);
                    }
                    start = j + 1;
                }
            }
            return;
        } else if t.is_punct('*') {
            segs.push("*".to_string());
            i += 1;
        } else if t.is_ident("as") {
            record_use(&segs, toks.get(i + 1).map(|r| r.text), module, imports);
            return;
        } else if t.kind == TokKind::Ident {
            segs.push(t.text.to_string());
            i += 1;
        } else {
            i += 1;
        }
    }
    if segs.len() > prefix.len() {
        record_use(&segs, None, module, imports);
    }
}

/// Record one resolved `use` path under its binding name, normalizing
/// `crate`/`self`/`super` heads against the file module.
fn record_use(
    segs: &[String],
    rename: Option<&str>,
    module: &str,
    imports: &mut BTreeMap<String, String>,
) {
    if segs.is_empty() {
        return;
    }
    let mut mod_parts: Vec<&str> = module.split("::").collect();
    let mut rest: &[String] = segs;
    match segs[0].as_str() {
        "crate" => {
            mod_parts.truncate(1);
            rest = &segs[1..];
        }
        "self" => {
            rest = &segs[1..];
        }
        "super" => {
            let mut k = 0;
            while rest.first().is_some_and(|s| s == "super") {
                k += 1;
                rest = &rest[1..];
            }
            mod_parts.truncate(mod_parts.len().saturating_sub(k).max(1));
        }
        _ => mod_parts.clear(),
    }
    let mut full: Vec<String> = mod_parts.iter().map(|s| s.to_string()).collect();
    full.extend(rest.iter().cloned());
    if full.is_empty() {
        return;
    }
    let name = match rename {
        Some(r) => r.to_string(),
        None => full.last().cloned().unwrap_or_default(),
    };
    if name == "*" {
        // Glob: remember the module under a reserved key for fallback
        // resolution.
        let path = full[..full.len() - 1].join("::");
        let key = format!("*{}", imports.len());
        imports.insert(key, path);
    } else if !name.is_empty() {
        imports.insert(name, full.join("::"));
    }
}

/// Extract call sites from the body token range `[start, end)`.
fn extract_calls(toks: &[Tok<'_>], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Skip definitions and macros (`fn name(` never matches here
        // because `name` is followed by `(` only after generics; macro
        // calls are `name!(` so the `(` is not adjacent).
        if i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('!')) {
            continue;
        }
        let line = t.line;
        let name = t.text.to_string();
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            // Path call: walk the `seg ::` pairs back from the name.
            let mut path: Vec<String> = Vec::new();
            let mut j = i; // index of the token after the current `::`
            while j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokKind::Ident
            {
                path.push(toks[j - 3].text.to_string());
                j -= 3;
            }
            path.reverse();
            if path.last().is_some_and(|s| s == "Self") {
                out.push(CallSite::SelfMethod { name, line, tok: i });
            } else if !path.is_empty() {
                out.push(CallSite::Path { path, name, line, tok: i });
            } else {
                out.push(CallSite::Free { name, line, tok: i });
            }
        } else if i >= 1 && toks[i - 1].is_punct('.') {
            if i >= 2 && toks[i - 2].is_ident("self") && !(i >= 3 && toks[i - 3].is_punct('.')) {
                out.push(CallSite::SelfMethod { name, line, tok: i });
            } else {
                out.push(CallSite::Method { name, line, tok: i });
            }
        } else {
            out.push(CallSite::Free { name, line, tok: i });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_crates() -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("crates/obs".to_string(), "obs".to_string());
        m.insert("crates/graph".to_string(), "commgraph_graph".to_string());
        m.insert(String::new(), "commgraph_root".to_string());
        m
    }

    fn parse_one<'a>(rel: &str, text: &'a str) -> SourceFile<'a> {
        SourceFile::parse(rel.to_string(), text)
    }

    #[test]
    fn file_module_maps_paths() {
        let c = ws_crates();
        assert_eq!(
            file_module("crates/obs/src/tsdb.rs", &c),
            Some(("obs".into(), "obs::tsdb".into()))
        );
        assert_eq!(file_module("crates/obs/src/lib.rs", &c), Some(("obs".into(), "obs".into())));
        assert_eq!(
            file_module("src/lib.rs", &c),
            Some(("commgraph_root".into(), "commgraph_root".into()))
        );
        assert_eq!(file_module("crates/obs/tests/t.rs", &c), None, "non-src files have no module");
    }

    #[test]
    fn manifest_lib_name_prefers_lib_section() {
        assert_eq!(
            manifest_lib_name("[package]\nname = \"commgraph-obs\"\n[lib]\nname = \"obs\"\n"),
            Some("obs".into())
        );
        assert_eq!(
            manifest_lib_name("[package]\nname = \"commgraph-graph\"\n"),
            Some("commgraph_graph".into())
        );
        assert_eq!(manifest_lib_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn indexes_free_fns_methods_and_nested_mods() {
        let src = "\
pub fn top() { helper(); }\n\
fn helper() {}\n\
pub struct Tsdb;\n\
impl Tsdb {\n\
    pub fn scrape(&self) { self.lock(); other::thing(); }\n\
    fn lock(&self) {}\n\
}\n\
mod inner {\n\
    pub fn nested() {}\n\
}\n";
        let f = parse_one("crates/obs/src/tsdb.rs", src);
        let idx = index(&[f], &[true], &ws_crates());
        let names: Vec<&str> = idx.fns.iter().map(|s| s.qname.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "obs::tsdb::Tsdb::lock",
                "obs::tsdb::Tsdb::scrape",
                "obs::tsdb::helper",
                "obs::tsdb::inner::nested",
                "obs::tsdb::top",
            ]
        );
        let scrape = &idx.calls[idx.by_qname["obs::tsdb::Tsdb::scrape"]];
        assert!(scrape
            .iter()
            .any(|c| matches!(c, CallSite::SelfMethod { name, .. } if name == "lock")));
        assert!(scrape.iter().any(
            |c| matches!(c, CallSite::Path { path, name, .. } if name == "thing" && path == &vec!["other".to_string()])
        ));
        let top = &idx.calls[idx.by_qname["obs::tsdb::top"]];
        assert!(top.iter().any(|c| matches!(c, CallSite::Free { name, .. } if name == "helper")));
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let src = "trait Render { fn render(&self); }\n\
                   struct Row;\n\
                   impl Render for Row { fn render(&self) { draw(); } }\n\
                   impl<'a, T: Clone> Holder<'a, T> { fn get(&self) -> T { self.v.clone() } }\n";
        let f = parse_one("crates/obs/src/x.rs", src);
        let idx = index(&[f], &[true], &ws_crates());
        assert!(idx.by_qname.contains_key("obs::x::Row::render"));
        assert!(idx.by_qname.contains_key("obs::x::Holder::get"));
        // The trait's own declaration (no body) is indexed under the trait.
        assert!(idx.by_qname.contains_key("obs::x::Render::render"));
    }

    #[test]
    fn use_imports_resolve_groups_renames_and_crate_prefix() {
        let src = "use std::collections::{BTreeMap, HashMap as Map};\n\
                   use crate::tsdb::Tsdb;\n\
                   use obs::alert::AlertManager;\n\
                   fn f() {}\n";
        let f = parse_one("crates/obs/src/serve.rs", src);
        let idx = index(&[f], &[true], &ws_crates());
        let imp = &idx.imports[0];
        assert_eq!(imp["BTreeMap"], "std::collections::BTreeMap");
        assert_eq!(imp["Map"], "std::collections::HashMap");
        assert_eq!(imp["Tsdb"], "obs::tsdb::Tsdb");
        assert_eq!(imp["AlertManager"], "obs::alert::AlertManager");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let f = parse_one("crates/obs/src/x.rs", src);
        let idx = index(&[f], &[true], &ws_crates());
        assert!(!idx.fns[idx.by_qname["obs::x::lib"]].is_test);
        assert!(idx.fns[idx.by_qname["obs::x::tests::helper"]].is_test);
    }

    #[test]
    fn method_calls_on_exprs_are_name_only() {
        let src = "fn f(v: &Thing) { v.poke(); self.field.poke(); Self::assoc(); }\n";
        let f = parse_one("crates/obs/src/x.rs", src);
        let idx = index(&[f], &[true], &ws_crates());
        let calls = &idx.calls[0];
        assert_eq!(
            calls
                .iter()
                .filter(|c| matches!(c, CallSite::Method { name, .. } if name == "poke"))
                .count(),
            2,
            "self.field.poke() is a field method call, not a self method: {calls:?}"
        );
        assert!(calls
            .iter()
            .any(|c| matches!(c, CallSite::SelfMethod { name, .. } if name == "assoc")));
    }
}
