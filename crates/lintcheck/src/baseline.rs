//! Baseline support: pre-existing findings recorded for incremental
//! burn-down.
//!
//! The baseline is a plain-text file, one finding per line:
//!
//! ```text
//! lint-name<TAB>workspace/relative/path.rs<TAB>trimmed source excerpt
//! ```
//!
//! Lines starting with `#` are comments. Matching is by `(lint, file,
//! excerpt)` as a multiset — line numbers are deliberately absent so the
//! baseline survives unrelated edits above a finding. Regenerate with
//! `cargo run -p lintcheck -- --write-baseline` (after verifying the new
//! findings really are acceptable debt).

use crate::Finding;
use std::collections::BTreeMap;

/// A parsed baseline: multiset of finding keys.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parse the text format. Unparseable lines are ignored (a baseline
    /// must never crash the linter).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(lint), Some(file), Some(excerpt)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            *entries
                .entry((lint.to_string(), file.to_string(), excerpt.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Render findings into the text format (sorted, deterministic).
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}\t{}", f.lint.name(), f.file, key_text(f)))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# lintcheck baseline: pre-existing findings tolerated during burn-down.\n\
             # Format: lint<TAB>file<TAB>trimmed excerpt. Regenerate with\n\
             # `cargo run -p lintcheck -- --write-baseline`.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Split `findings` into (baselined, fresh), consuming baseline entries
    /// as a multiset.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut remaining = self.entries.clone();
        let mut baselined = Vec::new();
        let mut fresh = Vec::new();
        for f in findings {
            let key = (f.lint.name().to_string(), f.file.clone(), key_text(&f).to_string());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (baselined, fresh)
    }

    /// Number of distinct entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The third key component: the excerpt when present, the message
/// otherwise — an empty field would be eaten by whitespace-trimming
/// editors and never match again.
fn key_text(f: &Finding) -> &str {
    if f.excerpt.is_empty() {
        &f.message
    } else {
        &f.excerpt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintId;

    fn finding(lint: LintId, file: &str, excerpt: &str) -> Finding {
        Finding {
            lint,
            file: file.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn round_trip_and_multiset_matching() {
        let fs = vec![
            finding(LintId::PanicPath, "a.rs", "x.unwrap();"),
            finding(LintId::PanicPath, "a.rs", "x.unwrap();"),
            finding(LintId::NondetIter, "b.rs", "for k in &m {"),
        ];
        let b = Baseline::parse(&Baseline::render(&fs));
        assert_eq!(b.len(), 3);

        // Same findings: all baselined.
        let (base, fresh) = b.partition(fs.clone());
        assert_eq!((base.len(), fresh.len()), (3, 0));

        // A third identical unwrap exceeds the multiset: one fresh.
        let mut more = fs.clone();
        more.push(finding(LintId::PanicPath, "a.rs", "x.unwrap();"));
        let (base, fresh) = b.partition(more);
        assert_eq!((base.len(), fresh.len()), (3, 1));

        // Different excerpt: fresh.
        let (_, fresh) = b.partition(vec![finding(LintId::PanicPath, "a.rs", "y.unwrap();")]);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn comments_and_garbage_are_tolerated() {
        let b = Baseline::parse("# comment\n\nnot a valid line\npanic-path\tf.rs\tx.unwrap();\n");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
