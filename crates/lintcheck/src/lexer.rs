//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The lexer turns source text into a stream of significant tokens plus a
//! side list of comments (the lints read allow-markers out of the latter).
//! It understands everything that would otherwise corrupt a token walk —
//! nested block comments, raw/byte/raw-byte strings with arbitrary `#`
//! fences, char literals vs. lifetimes — but deliberately does not build a
//! syntax tree: the lints pattern-match on the flat token stream.

/// Kind of one significant token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unsafe`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — quote included in the text.
    Lifetime,
    /// Character or byte-character literal, quotes included.
    Char,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), quotes and
    /// prefixes included; see [`Tok::str_content`].
    Str,
    /// Numeric literal (integer or float, any base, suffix included).
    Num,
    /// A single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
}

/// One significant token: kind, verbatim text, and 1-based position.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The verbatim source slice.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// True when the token is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// True when the token is the identifier/keyword `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// For [`TokKind::Str`] tokens: the literal's content with prefixes,
    /// fences, and quotes stripped (escape sequences are left verbatim —
    /// metric names never contain any).
    pub fn str_content(&self) -> &'a str {
        let s = self.text;
        let body = s.trim_start_matches(['b', 'r', 'c']);
        let body = body.trim_start_matches('#');
        let body = body.trim_end_matches('#');
        body.strip_prefix('"').and_then(|b| b.strip_suffix('"')).unwrap_or(body)
    }
}

/// One comment (line or block), with its full text and starting position.
#[derive(Debug, Clone)]
pub struct Comment<'a> {
    /// Verbatim comment including delimiters.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexer's output: significant tokens and comments, both in source
/// order.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Significant tokens.
    pub toks: Vec<Tok<'a>>,
    /// Comments (line and block), for allow-marker parsing.
    pub comments: Vec<Comment<'a>>,
}

/// Lex `src`. The lexer never fails: malformed input (unterminated string,
/// stray byte) degrades to best-effort tokens, which is the right behavior
/// for a linter that must not crash on the code it critiques.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment(start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment(start, line);
                }
                b'"' => {
                    self.take_string();
                    self.push(TokKind::Str, start, line, col);
                }
                b'\'' => self.take_quote(start, line, col),
                b'r' | b'b' | b'c' if self.raw_or_byte_string(start, line, col) => {}
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.take_ident();
                    self.push(TokKind::Ident, start, line, col);
                }
                _ if b.is_ascii_digit() => {
                    self.take_number();
                    self.push(TokKind::Num, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text: &self.src[start..self.pos], line, col });
    }

    fn take_line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment { text: &self.src[start..self.pos], line });
    }

    fn take_block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment { text: &self.src[start..self.pos], line });
    }

    /// Ordinary (possibly byte) string starting at the current `"`.
    fn take_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Raw string starting at the current `"` with `fence` trailing hashes.
    fn take_raw_string(&mut self, fence: usize) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut hashes = 0;
                while hashes < fence && self.peek(1 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if hashes == fence {
                    for _ in 0..=fence {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// `'…'` char literal or `'a` lifetime, starting at the `'`.
    fn take_quote(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                if self.pos < self.bytes.len() {
                    self.bump(); // the escaped character
                }
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump(); // \u{...} bodies
                }
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                self.push(TokKind::Char, start, line, col);
            }
            Some(b) if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 => {
                let ident_start = self.pos;
                self.take_ident();
                let one_char = self.src[ident_start..self.pos].chars().count() == 1;
                if one_char && self.peek(0) == Some(b'\'') {
                    self.bump();
                    self.push(TokKind::Char, start, line, col);
                } else {
                    self.push(TokKind::Lifetime, start, line, col);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, start, line, col);
            }
            None => self.push(TokKind::Punct, start, line, col),
        }
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`, and raw
    /// identifiers (`r#fn`). Returns false when the `r`/`b`/`c` starts a
    /// plain identifier.
    fn raw_or_byte_string(&mut self, start: usize, line: u32, col: u32) -> bool {
        // Raw identifier `r#ident`: one Ident token. Without this, `r#fn`
        // lexes as `r`, `#`, `fn` and the stray keyword corrupts symbol
        // extraction with a phantom function.
        if self.peek(0) == Some(b'r')
            && self.peek(1) == Some(b'#')
            && self.peek(2).is_some_and(|b| b == b'_' || b.is_ascii_alphabetic() || b >= 0x80)
        {
            self.bump(); // r
            self.bump(); // #
            self.take_ident();
            self.push(TokKind::Ident, start, line, col);
            return true;
        }
        let mut prefix_len = 1usize;
        if (self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r'))
            || (self.peek(0) == Some(b'r') && self.peek(1) == Some(b'b'))
        {
            prefix_len = 2;
        }
        let raw = self.src[self.pos..self.pos + prefix_len].contains('r');
        let mut fence = 0usize;
        while raw && self.peek(prefix_len + fence) == Some(b'#') {
            fence += 1;
        }
        match self.peek(prefix_len + fence) {
            Some(b'"') if raw || fence == 0 => {
                for _ in 0..prefix_len + fence {
                    self.bump();
                }
                if raw {
                    self.take_raw_string(fence);
                } else {
                    self.take_string();
                }
                self.push(TokKind::Str, start, line, col);
                true
            }
            Some(b'\'') if prefix_len == 1 && fence == 0 && self.peek(0) == Some(b'b') => {
                self.bump(); // b
                self.take_quote(start, line, col);
                // take_quote pushed a token starting at `'`; rewrite it to
                // cover the `b` prefix and be a char literal.
                if let Some(t) = self.out.toks.last_mut() {
                    t.kind = TokKind::Char;
                    t.text = &self.src[start..self.pos];
                    t.col = col;
                }
                true
            }
            _ => false,
        }
    }

    fn take_ident(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn take_number(&mut self) {
        let mut seen_dot = false;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Exponent sign: 1e-5 / 2.5E+3.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                    self.bump();
                    continue;
                }
                self.bump();
            } else if b == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 1..n;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Num, "1"),
                (TokKind::Punct, "."),
                (TokKind::Punct, "."),
                (TokKind::Ident, "n"),
                (TokKind::Punct, ";"),
            ]
        );
        assert_eq!(kinds("2.5e-3f64"), vec![(TokKind::Num, "2.5e-3f64")]);
        assert_eq!(kinds("0xff_u8"), vec![(TokKind::Num, "0xff_u8")]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = '\\n'; let u = '\\u{41}'; }")
                .iter()
                .filter(|(k, _)| *k == TokKind::Char || *k == TokKind::Lifetime)
                .cloned()
                .collect::<Vec<_>>(),
            vec![
                (TokKind::Lifetime, "'a"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Char, "'x'"),
                (TokKind::Char, "'\\n'"),
                (TokKind::Char, "'\\u{41}'"),
            ]
        );
        assert_eq!(kinds("'static"), vec![(TokKind::Lifetime, "'static")]);
        assert_eq!(kinds("'_"), vec![(TokKind::Lifetime, "'_")]);
        assert_eq!(kinds("'('"), vec![(TokKind::Char, "'('")]);
    }

    #[test]
    fn string_flavors() {
        let l = lex(r####"let a = "plain \" quote"; let b = r#"raw "inner" text"#;"####);
        let strs: Vec<&str> =
            l.toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text).collect();
        assert_eq!(strs, vec![r#""plain \" quote""#, r###"r#"raw "inner" text"#"###]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);

        let l = lex(r####"b"bytes" br##"raw bytes"## r"no fence""####);
        let strs: Vec<&str> = l.toks.iter().map(|t| t.text).collect();
        assert_eq!(strs, vec![r#"b"bytes""#, r####"br##"raw bytes"##"####, r#"r"no fence""#]);
    }

    #[test]
    fn str_content_strips_all_flavors() {
        let l = lex(r####""x" r#"y"# b"z" br##"w"##"####);
        let contents: Vec<&str> = l.toks.iter().map(|t| t.str_content()).collect();
        assert_eq!(contents, vec!["x", "y", "z", "w"]);
    }

    #[test]
    fn byte_char_is_a_char() {
        assert_eq!(kinds("b'x'"), vec![(TokKind::Char, "b'x'")]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still outer */ b // line\nc");
        let toks: Vec<&str> = l.toks.iter().map(|t| t.text).collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("inner"));
        assert_eq!(l.comments[1].text, "// line");
    }

    #[test]
    fn strings_hide_comment_markers_and_vice_versa() {
        let l = lex(r#"let url = "https://example.com"; // real comment"#);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, "// real comment");
        let l = lex(r#"// commented out: let s = "unterminated"#);
        assert!(l.toks.is_empty());

        // A quote inside a comment must not open a string.
        let l = lex("/* it's fine */ x");
        assert_eq!(l.toks.len(), 1);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let l = lex("a\n  b");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_lex_as_one_token() {
        // `r#fn` must not shed a bare `fn` keyword into the stream.
        assert_eq!(
            kinds("let r#fn = r#type + 1;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "r#fn"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "r#type"),
                (TokKind::Punct, "+"),
                (TokKind::Num, "1"),
                (TokKind::Punct, ";"),
            ]
        );
        // A genuine raw-named function still shows its `fn` keyword once.
        assert_eq!(
            kinds("fn r#match() {}"),
            vec![
                (TokKind::Ident, "fn"),
                (TokKind::Ident, "r#match"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
                (TokKind::Punct, "{"),
                (TokKind::Punct, "}"),
            ]
        );
        // `r#"…"#` stays a raw string, not a raw identifier.
        assert_eq!(kinds(r###"r#"text"#"###), vec![(TokKind::Str, r###"r#"text"#"###)]);
    }

    #[test]
    fn brace_char_literals_do_not_unbalance_the_stream() {
        // `'{'` / `'}'` are Char tokens; the only Punct braces are the
        // real block delimiters, so downstream brace matching stays sound.
        let l = lex("fn f() { let a = '{'; let b = '}'; let c = b'{'; }");
        let punct_braces: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && (t.text == "{" || t.text == "}"))
            .map(|t| t.text)
            .collect();
        assert_eq!(punct_braces, vec!["{", "}"]);
        let chars: Vec<&str> =
            l.toks.iter().filter(|t| t.kind == TokKind::Char).map(|t| t.text).collect();
        assert_eq!(chars, vec!["'{'", "'}'", "b'{'"]);
    }

    #[test]
    fn raw_strings_and_comments_hide_code_shaped_text() {
        // A raw string and a nested block comment both containing `fn` and
        // an unbalanced `{` must contribute no Ident/Punct tokens.
        let src = r###"
            fn real() { let s = r#"fn fake() {"#; }
            /* fn also_fake() { /* nested { */ still hidden */
            fn real2() {}
        "###;
        let fns: Vec<&str> =
            lex(src).toks.windows(2).filter(|w| w[0].is_ident("fn")).map(|w| w[1].text).collect();
        assert_eq!(fns, vec!["real", "real2"]);
        let l = lex(src);
        let opens = l.toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = l.toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!(opens, closes, "braces balance once strings/comments are hidden");
    }

    #[test]
    fn unterminated_inputs_do_not_hang_or_panic() {
        lex("\"never closed");
        lex("/* never closed");
        lex("r##\"never closed\"#");
        lex("'");
    }
}
