//! Deterministic workspace tree walk.
//!
//! Collects `.rs` sources and `Cargo.toml` manifests under the root,
//! skipping build output (`target/`), VCS metadata, hidden directories, and
//! lint fixture trees (any `fixtures` directory under a `tests` directory —
//! those contain deliberately seeded violations). Results are sorted so
//! every sweep, baseline, and golden output is reproducible.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The files one sweep looks at.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// All `.rs` files, workspace-relative, sorted.
    pub sources: Vec<PathBuf>,
    /// All `Cargo.toml` files, workspace-relative, sorted.
    pub manifests: Vec<PathBuf>,
}

/// Walk `root` and classify files. Paths in the result are relative to
/// `root` and use `/` separators via [`rel_str`].
pub fn walk(root: &Path) -> io::Result<WorkspaceFiles> {
    let mut out = WorkspaceFiles::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || is_fixture_dir(root, &path) {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                out.manifests.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            } else if name.ends_with(".rs") {
                out.sources.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sources.sort();
    out.manifests.sort();
    Ok(out)
}

/// Walk upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]` — the root a default sweep should cover.
pub fn find_root_above(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// A `fixtures` directory directly under a `tests` directory.
fn is_fixture_dir(root: &Path, path: &Path) -> bool {
    let rel = rel_str(root, path);
    rel.ends_with("tests/fixtures") || rel.contains("/tests/fixtures/")
}

/// `path` relative to `root` as a `/`-separated string.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_target_hidden_and_fixtures() {
        let base = std::env::temp_dir().join(format!("lintcheck-walk-{}", std::process::id()));
        let mk = |p: &str| {
            let full = base.join(p);
            if let Some(parent) = full.parent() {
                fs::create_dir_all(parent).expect("mkdir");
            }
            fs::write(&full, "fn x() {}").expect("write");
        };
        mk("crates/a/src/lib.rs");
        mk("crates/a/Cargo.toml");
        mk("crates/a/tests/fixtures/ws/bad.rs");
        mk("target/debug/gen.rs");
        mk(".git/hook.rs");
        let files = walk(&base).expect("walk");
        let sources: Vec<String> = files.sources.iter().map(|p| rel_str(&base, p)).collect();
        assert_eq!(sources, vec!["crates/a/src/lib.rs"]);
        let manifests: Vec<String> = files.manifests.iter().map(|p| rel_str(&base, p)).collect();
        assert_eq!(manifests, vec!["crates/a/Cargo.toml"]);
        fs::remove_dir_all(&base).ok();
    }
}
