//! Workspace call graph over the [`crate::symbols`] index.
//!
//! Edges are resolved conservatively from the four call-site shapes:
//!
//! * **Free calls** resolve through the file's `use`-import table, then the
//!   enclosing module, then glob imports.
//! * **Path calls** (`seg::seg::name(`) resolve their head segment the same
//!   way (tolerating `crate`/`self`/`super` heads), then match either a
//!   free function at the joined path or a `Type::method` pair.
//! * **`self`/`Self` method calls** resolve against the enclosing `impl`
//!   type — precise, and the dominant call shape in this codebase.
//! * **Expression method calls** (`x.name(`) carry no receiver type; they
//!   resolve only when exactly one workspace method bears that name, and
//!   the edge is marked [`EdgeKind::NameOnly`] so lints can weigh it.
//!
//! Unresolved calls (std, shims, closures) simply produce no edge: the
//! interprocedural lints treat the std library and vendored shims as
//! opaque, which is the same trust boundary the per-file lints draw.
//! All adjacency is index-sorted, so traversal order — and every finding
//! derived from it — is deterministic.

use crate::symbols::{CallSite, SymbolIndex};
use std::collections::BTreeMap;

/// How an edge's callee was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Import/module/path/impl-resolved: the callee is certain.
    Resolved,
    /// Matched by bare method name (unique workspace-wide); treated as
    /// certain by the lints but distinguishable in output.
    NameOnly,
}

/// One call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index of the callee in [`SymbolIndex::fns`].
    pub callee: usize,
    /// 1-based source line of the call site in the caller's file.
    pub line: u32,
    /// Resolution confidence.
    pub kind: EdgeKind,
}

/// The call graph: forward and reverse adjacency, parallel to
/// [`SymbolIndex::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function, sorted by (callee, line).
    pub out: Vec<Vec<Edge>>,
    /// Incoming caller indices per function, sorted and deduplicated.
    pub rev: Vec<Vec<usize>>,
    /// Total resolved edge count.
    pub edges: usize,
}

impl CallGraph {
    /// Number of nodes (indexed functions).
    pub fn nodes(&self) -> usize {
        self.out.len()
    }
}

/// Build the graph by resolving every recorded call site.
pub fn build(index: &SymbolIndex) -> CallGraph {
    let n = index.fns.len();
    let mut out: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0usize;
    for (caller, calls) in index.calls.iter().enumerate() {
        for call in calls {
            let Some((callee, kind)) = resolve(index, caller, call) else { continue };
            if callee == caller {
                continue; // self-recursion adds nothing to reachability
            }
            out[caller].push(Edge { callee, line: call.line(), kind });
            rev[callee].push(caller);
            edges += 1;
        }
    }
    for adj in &mut out {
        adj.sort_by_key(|e| (e.callee, e.line, e.kind));
    }
    for r in &mut rev {
        r.sort_unstable();
        r.dedup();
    }
    CallGraph { out, rev, edges }
}

/// Resolve one call site to a symbol index.
pub fn resolve(index: &SymbolIndex, caller: usize, call: &CallSite) -> Option<(usize, EdgeKind)> {
    let sym = &index.fns[caller];
    match call {
        CallSite::Free { name, .. } => {
            // Same module first, then imports, then glob imports.
            if let Some(&i) = index.by_module.get(&sym.module).and_then(|m| m.get(name)) {
                return Some((i, EdgeKind::Resolved));
            }
            let imp = index.imports.get(sym.file_idx)?;
            if let Some(path) = imp.get(name) {
                if let Some(&i) = index.by_qname.get(path) {
                    return Some((i, EdgeKind::Resolved));
                }
            }
            for (key, module) in imp.iter() {
                if key.starts_with('*') {
                    if let Some(&i) = index.by_module.get(module).and_then(|m| m.get(name)) {
                        return Some((i, EdgeKind::Resolved));
                    }
                }
            }
            None
        }
        CallSite::SelfMethod { name, .. } => {
            let owner = sym.owner.as_deref()?;
            best_method(index, owner, name, &sym.crate_name)
        }
        CallSite::Path { path, name, .. } => resolve_path(index, caller, path, name),
        CallSite::Method { name, .. } => {
            let cands = index.by_method_name.get(name)?;
            let non_test: Vec<usize> =
                cands.iter().copied().filter(|&i| !index.fns[i].is_test).collect();
            match non_test.as_slice() {
                [only] => Some((*only, EdgeKind::NameOnly)),
                _ => None,
            }
        }
    }
}

/// `Type::method` lookup preferring the caller's own crate when the owner
/// name is reused across crates.
fn best_method(
    index: &SymbolIndex,
    owner: &str,
    name: &str,
    crate_name: &str,
) -> Option<(usize, EdgeKind)> {
    let cands = index.by_owner_method.get(&(owner.to_string(), name.to_string()))?;
    let local = cands.iter().copied().find(|&i| index.fns[i].crate_name == crate_name);
    local.or(cands.first().copied()).map(|i| (i, EdgeKind::Resolved))
}

/// Resolve `path::name(`: normalize the head segment, then try a free
/// function at the full path, then a `Type::method` on the path tail.
fn resolve_path(
    index: &SymbolIndex,
    caller: usize,
    path: &[String],
    name: &str,
) -> Option<(usize, EdgeKind)> {
    let sym = &index.fns[caller];
    let imp = index.imports.get(sym.file_idx);
    let mut full: Vec<String> = Vec::new();
    let head = path.first()?;
    match head.as_str() {
        "crate" => {
            full.push(sym.crate_name.clone());
            full.extend(path[1..].iter().cloned());
        }
        "self" => {
            full.extend(sym.module.split("::").map(str::to_string));
            full.extend(path[1..].iter().cloned());
        }
        "super" => {
            let mut mods: Vec<&str> = sym.module.split("::").collect();
            let mut rest = path;
            while rest.first().is_some_and(|s| s == "super") {
                if mods.len() > 1 {
                    mods.pop();
                }
                rest = &rest[1..];
            }
            full.extend(mods.iter().map(|s| s.to_string()));
            full.extend(rest.iter().cloned());
        }
        _ => {
            // Imported head (`Tsdb::new` after `use crate::tsdb::Tsdb`,
            // `walk::find_root_above` after `use lintcheck::walk`), else
            // treat the head as a crate/module root.
            if let Some(mapped) = imp.and_then(|m| m.get(head)) {
                full.extend(mapped.split("::").map(str::to_string));
            } else {
                full.push(head.clone());
            }
            full.extend(path[1..].iter().cloned());
        }
    }
    // Free function at the joined path.
    let joined = format!("{}::{name}", full.join("::"));
    if let Some(&i) = index.by_qname.get(&joined) {
        return Some((i, EdgeKind::Resolved));
    }
    // `Type::method`: the path tail is the owner.
    if let Some(owner) = full.last() {
        if let Some(hit) = best_method(index, owner, name, &sym.crate_name) {
            return Some(hit);
        }
    }
    // Sibling module within the caller's crate (`tsdb::helper(...)`
    // without an explicit import, via a glob or local `mod`).
    let sibling = format!("{}::{}::{name}", sym.module, full.join("::"));
    if let Some(&i) = index.by_qname.get(&sibling) {
        return Some((i, EdgeKind::Resolved));
    }
    None
}

/// Breadth-first reachability *to* a source set over reversed edges:
/// returns, for every function index, the next hop toward a source
/// (`hops[i] = Some(j)` means `i` calls `j` and `j` reaches a source; a
/// source maps to itself). Deterministic: sources seed in index order and
/// adjacency is sorted.
pub fn reach_sources(graph: &CallGraph, sources: &[usize]) -> BTreeMap<usize, usize> {
    let mut next: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = Default::default();
    for &s in sources {
        if !next.contains_key(&s) {
            next.insert(s, s);
            queue.push_back(s);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &caller in &graph.rev[cur] {
            if !next.contains_key(&caller) {
                next.insert(caller, cur);
                queue.push_back(caller);
            }
        }
    }
    next
}

/// Render the call chain from `from` to a source as
/// `a::b → c::d → source::fn`, following `hops` from [`reach_sources`].
pub fn chain(index: &SymbolIndex, hops: &BTreeMap<usize, usize>, from: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut cur = from;
    for _ in 0..64 {
        parts.push(&index.fns[cur].qname);
        match hops.get(&cur) {
            Some(&n) if n != cur => cur = n,
            _ => break,
        }
    }
    parts.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::symbols;
    use std::collections::BTreeMap as Map;

    fn ws() -> Map<String, String> {
        let mut m = Map::new();
        m.insert("crates/a".to_string(), "a".to_string());
        m.insert("crates/b".to_string(), "b".to_string());
        m
    }

    fn graph_of(files: &[(&str, &str)]) -> (SymbolIndex, CallGraph) {
        let parsed: Vec<SourceFile<'_>> =
            files.iter().map(|(rel, text)| SourceFile::parse(rel.to_string(), text)).collect();
        let in_scope: Vec<bool> = parsed.iter().map(|_| true).collect();
        let idx = symbols::index(&parsed, &in_scope, &ws());
        let g = build(&idx);
        (idx, g)
    }

    #[test]
    fn cross_crate_edges_via_imports() {
        let (idx, g) = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn leaf() {}"),
            (
                "crates/b/src/lib.rs",
                "use a::leaf;\npub fn caller() { leaf(); }\npub fn pathy() { a::leaf(); }",
            ),
        ]);
        let leaf = idx.by_qname["a::leaf"];
        let caller = idx.by_qname["b::caller"];
        let pathy = idx.by_qname["b::pathy"];
        assert!(g.out[caller].iter().any(|e| e.callee == leaf));
        assert!(g.out[pathy].iter().any(|e| e.callee == leaf));
        assert_eq!(g.rev[leaf], vec![caller, pathy]);
    }

    #[test]
    fn self_method_and_type_method_resolution() {
        let (idx, g) = graph_of(&[(
            "crates/a/src/m.rs",
            "pub struct T;\nimpl T {\n  pub fn outer(&self) { self.inner(); T::assoc(); }\n  \
             fn inner(&self) {}\n  fn assoc() {}\n}",
        )]);
        let outer = idx.by_qname["a::m::T::outer"];
        let inner = idx.by_qname["a::m::T::inner"];
        let assoc = idx.by_qname["a::m::T::assoc"];
        let callees: Vec<usize> = g.out[outer].iter().map(|e| e.callee).collect();
        assert!(callees.contains(&inner) && callees.contains(&assoc));
    }

    #[test]
    fn ambiguous_method_names_produce_no_edge() {
        let (idx, g) = graph_of(&[(
            "crates/a/src/m.rs",
            "pub struct A; impl A { pub fn go(&self) {} }\n\
             pub struct B; impl B { pub fn go(&self) {} }\n\
             pub fn f(x: &A) { x.go(); }",
        )]);
        let f = idx.by_qname["a::m::f"];
        assert!(g.out[f].is_empty(), "two `go` methods: no edge without a receiver type");

        let (idx, g) = graph_of(&[(
            "crates/a/src/m.rs",
            "pub struct A; impl A { pub fn go(&self) {} }\npub fn f(x: &A) { x.go(); }",
        )]);
        let f = idx.by_qname["a::m::f"];
        let go = idx.by_qname["a::m::A::go"];
        assert_eq!(g.out[f].len(), 1);
        assert_eq!(g.out[f][0].callee, go);
        assert_eq!(g.out[f][0].kind, EdgeKind::NameOnly);
    }

    #[test]
    fn reachability_and_chain_rendering() {
        let (idx, g) = graph_of(&[(
            "crates/a/src/m.rs",
            "pub fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn lonely() {}",
        )]);
        let top = idx.by_qname["a::m::top"];
        let leaf = idx.by_qname["a::m::leaf"];
        let lonely = idx.by_qname["a::m::lonely"];
        let hops = reach_sources(&g, &[leaf]);
        assert!(hops.contains_key(&top));
        assert!(!hops.contains_key(&lonely));
        assert_eq!(chain(&idx, &hops, top), "a::m::top -> a::m::mid -> a::m::leaf");
    }

    #[test]
    fn crate_and_super_path_heads_normalize() {
        let (idx, g) = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn root_fn() {}"),
            ("crates/a/src/sub.rs", "pub fn here() { crate::root_fn(); super::root_fn(); }"),
        ]);
        let root = idx.by_qname["a::root_fn"];
        let here = idx.by_qname["a::sub::here"];
        assert_eq!(g.out[here].iter().filter(|e| e.callee == root).count(), 2);
    }
}
