//! The `lintcheck` binary: sweep the workspace, print findings, exit
//! non-zero when anything fresh (non-baselined) turns up.
//!
//! ```text
//! cargo run -p lintcheck                      # human output, auto baseline
//! cargo run -p lintcheck -- --json            # machine output for CI
//! cargo run -p lintcheck -- --no-baseline     # strict: ignore the baseline
//! cargo run -p lintcheck -- --write-baseline  # record current findings
//! cargo run -p lintcheck -- --root ../ws      # sweep another tree
//! ```
//!
//! The baseline lives at `<root>/lintcheck.baseline`; a missing file is an
//! empty baseline.

use lintcheck::baseline::Baseline;
use lintcheck::{jsonout, Config, LintId};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    write_baseline: bool,
    no_baseline: bool,
    only: Vec<LintId>,
    baseline_path: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        json: false,
        write_baseline: false,
        no_baseline: false,
        only: Vec::new(),
        baseline_path: None,
    };
    let mut root: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--no-baseline" => args.no_baseline = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                args.baseline_path = Some(PathBuf::from(v));
            }
            "--lint" => {
                let v = it.next().ok_or("--lint needs a lint name")?;
                let id = LintId::from_name(&v)
                    .ok_or_else(|| format!("unknown lint `{v}` (see --help)"))?;
                args.only.push(id);
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    args.root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    Ok(args)
}

fn print_help() {
    println!(
        "lintcheck: the workspace's own static-analysis pass\n\n\
         USAGE: lintcheck [--root DIR] [--json] [--no-baseline] \
         [--write-baseline] [--baseline FILE] [--lint NAME]...\n\n\
         Lints: nondet-iter, panic-path, metric-registry, dependency-policy,\n\
         clock-hygiene, lock-order, panic-propagation\n\
         (allow-marker hygiene always runs; the last three are\n\
         interprocedural — they build a workspace call graph first).\n\
         Default baseline file: <root>/lintcheck.baseline; missing file =\n\
         empty baseline."
    );
}

/// Workspace root above the current directory, so the binary works from
/// any crate directory.
fn find_workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    lintcheck::walk::find_root_above(&cwd)
        .ok_or_else(|| "no workspace root found above the current directory; pass --root".into())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lintcheck: {e}");
            return ExitCode::from(2);
        }
    };

    let mut cfg = Config::for_workspace(args.root.clone());
    if !args.only.is_empty() {
        cfg.lints = args.only.clone();
    }

    let baseline_path =
        args.baseline_path.clone().unwrap_or_else(|| args.root.join("lintcheck.baseline"));
    let baseline = if args.no_baseline || args.write_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Baseline::default(),
        }
    };

    let report = match lintcheck::run(&cfg, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lintcheck: sweep failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let text = Baseline::render(&report.fresh);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("lintcheck: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {} finding(s) to {}", report.fresh.len(), baseline_path.display());
        return ExitCode::SUCCESS;
    }

    // Write through a locked handle and swallow errors: a consumer closing
    // the pipe early (`lintcheck | head`) must not turn into a panic — the
    // exit code below still reflects the sweep.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.json {
        let _ = writeln!(out, "{}", jsonout::report_json(&report));
    } else {
        for f in &report.fresh {
            let _ = writeln!(out, "{f}");
            if !f.excerpt.is_empty() {
                let _ = writeln!(out, "    {}", f.excerpt);
            }
        }
        let _ = writeln!(
            out,
            "lintcheck: {} file(s) scanned, call graph {}/{} fns/edges, \
             {} finding(s) ({} baselined, {} fresh)",
            report.files_scanned,
            report.callgraph_nodes,
            report.callgraph_edges,
            report.fresh.len() + report.baselined.len(),
            report.baselined.len(),
            report.fresh.len()
        );
    }

    if report.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
