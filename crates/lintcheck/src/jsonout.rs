//! Hand-rolled JSON rendering of a lint report (this crate takes no
//! external dependencies; same restricted-but-valid subset as
//! `obs::export`).

use crate::{Finding, Report};

/// Render a [`Report`] as a JSON document:
///
/// ```json
/// {"files_scanned": 140, "callgraph_nodes": 900, "callgraph_edges": 1200,
///  "total": 3, "baselined": 2, "fresh": 1,
///  "findings": [{"lint": "panic-path", "file": "crates/x/src/lib.rs",
///                "line": 10, "col": 13, "baselined": false,
///                "message": "...", "excerpt": "..."}]}
/// ```
pub fn report_json(report: &Report) -> String {
    let mut out = format!(
        "{{\"files_scanned\":{},\"callgraph_nodes\":{},\"callgraph_edges\":{},\
         \"total\":{},\"baselined\":{},\"fresh\":{},\"findings\":[",
        report.files_scanned,
        report.callgraph_nodes,
        report.callgraph_edges,
        report.baselined.len() + report.fresh.len(),
        report.baselined.len(),
        report.fresh.len()
    );
    let all =
        report.fresh.iter().map(|f| (f, false)).chain(report.baselined.iter().map(|f| (f, true)));
    for (i, (f, baselined)) in all.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&finding_json(f, baselined));
    }
    out.push_str("]}");
    out
}

fn finding_json(f: &Finding, baselined: bool) -> String {
    format!(
        "{{\"lint\":{},\"file\":{},\"line\":{},\"col\":{},\"baselined\":{},\
         \"message\":{},\"excerpt\":{}}}",
        json_str(f.lint.name()),
        json_str(&f.file),
        f.line,
        f.col,
        baselined,
        json_str(&f.message),
        json_str(&f.excerpt)
    )
}

/// Minimal JSON string escaping (mirrors `obs::export`).
pub fn json_str(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintId;

    #[test]
    fn renders_fresh_before_baselined_with_flags() {
        let f = |lint: LintId, file: &str| Finding {
            lint,
            file: file.into(),
            line: 2,
            col: 7,
            message: "msg \"quoted\"".into(),
            excerpt: "x\ty".into(),
        };
        let report = Report {
            files_scanned: 5,
            callgraph_nodes: 40,
            callgraph_edges: 40,
            baselined: vec![f(LintId::PanicPath, "a.rs")],
            fresh: vec![f(LintId::NondetIter, "b.rs")],
        };
        let j = report_json(&report);
        assert!(j.starts_with(
            "{\"files_scanned\":5,\"callgraph_nodes\":40,\"callgraph_edges\":40,\
             \"total\":2,\"baselined\":1,\"fresh\":1,"
        ));
        assert!(j.contains("\"lint\":\"nondet-iter\",\"file\":\"b.rs\""));
        assert!(j.contains("\"baselined\":true"));
        assert!(j.contains("msg \\\"quoted\\\""));
        assert!(j.contains("x\\ty"));
        let fresh_pos = j.find("b.rs").expect("fresh present");
        let base_pos = j.find("a.rs").expect("baselined present");
        assert!(fresh_pos < base_pos, "fresh findings listed first");
    }
}
