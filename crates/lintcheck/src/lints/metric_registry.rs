//! L3 `metric-registry`: every `commgraph_*` metric literal must match the
//! canonical table, and every table entry must be used.
//!
//! The table lives in `crates/obs/src/names.rs` (see
//! `obs::names`) and is the single source of truth for
//! dashboards and exporters. This lint closes the loop from the code side:
//!
//! * an unknown `commgraph_*` string literal (typo'd or unregistered name)
//!   is a finding at the literal;
//! * a malformed name (not snake_case, missing unit suffix) is a finding
//!   even if someone added it to the table by hand;
//! * a registration site whose method kind (`counter` / `gauge` /
//!   `histogram`) disagrees with the table is a finding;
//! * a table entry no workspace code references is a finding at its
//!   definition.

use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};
use crate::{Finding, LintId, MetricSpec};
use std::collections::BTreeMap;

/// Cross-file state the lint accumulates during a sweep.
#[derive(Debug, Default)]
pub struct MetricScan {
    /// Literal-site findings, ready to emit.
    pub findings: Vec<Finding>,
    /// Reference counts per canonical name (references outside the table
    /// file).
    pub references: BTreeMap<String, usize>,
    /// Where each canonical name's literal appears in the table file.
    pub def_sites: BTreeMap<String, u32>,
}

/// True when `file` participates (everything but shims; the fixture trees
/// are already excluded by the walker).
pub fn in_scope(file: &SourceFile<'_>) -> bool {
    file.kind != FileKind::Shim
}

/// Scan one file's string literals, accumulating into `scan`.
/// `table_file` is the workspace-relative path of the canonical table.
pub fn check_file(
    scan: &mut MetricScan,
    file: &SourceFile<'_>,
    table: &BTreeMap<String, MetricSpec>,
    table_file: &str,
) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Str {
            continue;
        }
        // `#[cfg(test)]` fixtures fabricate metric-shaped names at will; the
        // contract governs production emission sites only.
        if file.in_test_region(i) {
            continue;
        }
        let name = t.str_content();
        if !looks_like_metric_name(name) {
            continue;
        }
        if file.rel == table_file {
            scan.def_sites.entry(name.to_string()).or_insert(t.line);
            continue;
        }
        *scan.references.entry(name.to_string()).or_insert(0) += 1;
        // Suppression happens here rather than in the driver: the scan
        // outlives the file, so the markers must be consulted now.
        if file.allowed(LintId::MetricRegistry.name(), t.line) {
            continue;
        }
        let spec = table.get(name);
        if spec.is_none() {
            let hint = if obs::names::well_formed(name) {
                "add it to crates/obs/src/names.rs or fix the typo"
            } else {
                "snake_case with a unit suffix, declared in crates/obs/src/names.rs"
            };
            scan.findings.push(Finding {
                lint: LintId::MetricRegistry,
                file: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!("metric `{name}` is not in the canonical table; {hint}"),
                excerpt: file.line_text(t.line).to_string(),
            });
            continue;
        }
        // Kind check: `<recv>.counter("name"` / `.gauge(` / `.histogram(`.
        if let (Some(spec), Some(site_kind)) = (spec, registration_kind(toks, i)) {
            if site_kind != spec.kind {
                scan.findings.push(Finding {
                    lint: LintId::MetricRegistry,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "metric `{name}` registered as {site_kind} but the canonical table \
                         declares it a {}",
                        spec.kind
                    ),
                    excerpt: file.line_text(t.line).to_string(),
                });
            }
        }
    }
}

/// After all files: malformed or unreferenced table entries.
pub fn finish(scan: &mut MetricScan, table: &BTreeMap<String, MetricSpec>, table_file: &str) {
    for name in table.keys() {
        let line = scan.def_sites.get(name).copied().unwrap_or(1);
        if !obs::names::well_formed(name) {
            scan.findings.push(Finding {
                lint: LintId::MetricRegistry,
                file: table_file.to_string(),
                line,
                col: 1,
                message: format!(
                    "table entry `{name}` violates the naming contract \
                     (commgraph_ prefix, snake_case, unit suffix)"
                ),
                excerpt: name.clone(),
            });
        }
        if scan.references.get(name).copied().unwrap_or(0) == 0 {
            scan.findings.push(Finding {
                lint: LintId::MetricRegistry,
                file: table_file.to_string(),
                line,
                col: 1,
                message: format!(
                    "table entry `{name}` is never referenced by workspace code; \
                     remove it or wire it up"
                ),
                excerpt: name.clone(),
            });
        }
    }
}

/// A literal participates when it is exactly a `commgraph_`-prefixed
/// metric-shaped name (lowercase/digits/underscores). Literals that merely
/// embed the prefix (file names, prose) are ignored.
fn looks_like_metric_name(s: &str) -> bool {
    s.starts_with("commgraph_")
        && s.len() > "commgraph_".len()
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// When the literal at `lit_pos` is the first argument of a
/// `.counter(` / `.gauge(` / `.histogram(` call, return that method name.
fn registration_kind(toks: &[crate::lexer::Tok<'_>], lit_pos: usize) -> Option<&'static str> {
    if lit_pos < 3 || !toks[lit_pos - 1].is_punct('(') {
        return None;
    }
    let m = &toks[lit_pos - 2];
    if !toks[lit_pos - 3].is_punct('.') {
        return None;
    }
    ["counter", "gauge", "histogram"].into_iter().find(|k| m.is_ident(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricSpec;

    fn table() -> BTreeMap<String, MetricSpec> {
        let mut t = BTreeMap::new();
        for (name, kind) in [
            ("commgraph_demo_records_total", "counter"),
            ("commgraph_demo_wait_seconds", "histogram"),
            ("commgraph_demo_unused_total", "counter"),
        ] {
            t.insert(
                name.to_string(),
                MetricSpec { name: name.into(), kind: kind.into(), labels: vec![] },
            );
        }
        t
    }

    fn sweep(files: &[(&str, &str)]) -> MetricScan {
        let table = table();
        let mut scan = MetricScan::default();
        for (rel, src) in files {
            let f = SourceFile::parse(rel.to_string(), src);
            check_file(&mut scan, &f, &table, "crates/obs/src/names.rs");
        }
        finish(&mut scan, &table, "crates/obs/src/names.rs");
        scan
    }

    #[test]
    fn known_and_referenced_names_are_clean() {
        let scan = sweep(&[
            (
                "crates/a/src/lib.rs",
                r#"fn f(o: &Obs) { o.counter("commgraph_demo_records_total", "h", &[]); }"#,
            ),
            (
                "crates/a/src/h.rs",
                r#"fn g(o: &Obs) { o.histogram("commgraph_demo_wait_seconds", "h", &[]); }"#,
            ),
            ("crates/b/src/u.rs", r#"const N: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }

    #[test]
    fn unknown_literal_is_flagged() {
        let scan = sweep(&[
            ("crates/a/src/lib.rs", r#"fn f() { emit("commgraph_demo_recods_total"); }"#),
            ("crates/a/src/r.rs", r#"const A: &str = "commgraph_demo_records_total";"#),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
            ("crates/a/src/u.rs", r#"const C: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].message.contains("recods"));
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let scan = sweep(&[
            (
                "crates/a/src/lib.rs",
                r#"fn f(o: &Obs) { o.gauge("commgraph_demo_records_total", "h", &[]); }"#,
            ),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
            ("crates/a/src/u.rs", r#"const C: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].message.contains("registered as gauge"));
    }

    #[test]
    fn unreferenced_table_entry_is_flagged_at_def_site() {
        let scan = sweep(&[
            (
                "crates/obs/src/names.rs",
                "const T: &[&str] = &[\n\"commgraph_demo_records_total\",\n\
                 \"commgraph_demo_wait_seconds\",\n\"commgraph_demo_unused_total\",\n];",
            ),
            ("crates/a/src/lib.rs", r#"fn f() { emit("commgraph_demo_records_total"); }"#),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
        ]);
        assert_eq!(scan.findings.len(), 1);
        let f = &scan.findings[0];
        assert!(f.message.contains("commgraph_demo_unused_total"));
        assert_eq!(f.file, "crates/obs/src/names.rs");
        assert_eq!(f.line, 4, "reported at the table literal");
    }

    #[test]
    fn allow_marker_suppresses_literal_site_findings() {
        let scan = sweep(&[
            (
                "crates/a/src/lib.rs",
                "fn f() { // lint:allow(metric-registry) fabricated for a demo\n  \
                 emit(\"commgraph_made_up_total\"); }",
            ),
            ("crates/a/src/r.rs", r#"const A: &str = "commgraph_demo_records_total";"#),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
            ("crates/a/src/u.rs", r#"const C: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }

    #[test]
    fn test_region_literals_are_exempt() {
        let scan = sweep(&[
            (
                "crates/a/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n  fn t() { emit(\"commgraph_made_up_total\"); }\n}\n",
            ),
            ("crates/a/src/r.rs", r#"const A: &str = "commgraph_demo_records_total";"#),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
            ("crates/a/src/u.rs", r#"const C: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }

    #[test]
    fn prose_and_filenames_are_ignored() {
        let scan = sweep(&[
            ("crates/a/src/lib.rs", r#"const P: &str = "commgraph_security_report.json";"#),
            ("crates/a/src/r.rs", r#"const A: &str = "commgraph_demo_records_total";"#),
            ("crates/a/src/w.rs", r#"const B: &str = "commgraph_demo_wait_seconds";"#),
            ("crates/a/src/u.rs", r#"const C: &str = "commgraph_demo_unused_total";"#),
        ]);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }
}
