//! L1 `nondet-iter`: iteration over `HashMap`/`HashSet` inside the
//! determinism-contract crates.
//!
//! The parallel kernels in `algos` and `linalg` promise bit-for-bit
//! serial-identical results. `std`'s hash collections iterate in a
//! per-process random order, so *any* iteration over them on a path that
//! feeds scores, labels, or float accumulation silently breaks that
//! contract. The lint is intraprocedural and name-based: it tracks
//! identifiers whose declared or constructed type mentions `HashMap` /
//! `HashSet` in the same file, then flags
//! `for … in <ident>` and `<ident>.iter()/keys()/values()/drain()/…` sites.
//!
//! A site is exempt when the same statement visibly re-establishes order —
//! a `sort*` call or a `BTreeMap`/`BTreeSet` collection target — or when it
//! carries a `// lint:allow(nondet-iter) <reason>` marker.

use crate::lexer::{Tok, TokKind};
use crate::source::{FileKind, SourceFile};
use crate::{Finding, LintId};
use std::collections::BTreeSet;

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 7] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter"];

/// True when `file` is in scope for this lint (library code of a
/// determinism-contract crate).
pub fn in_scope(file: &SourceFile<'_>, nondet_prefixes: &[String]) -> bool {
    file.kind == FileKind::Lib && nondet_prefixes.iter().any(|p| file.rel.starts_with(p.as_str()))
}

/// Run the lint over one in-scope file.
pub fn check(file: &SourceFile<'_>) -> Vec<Finding> {
    let toks = &file.lexed.toks;
    let tracked = tracked_hash_names(toks);
    let mut out = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if file.in_test_region(i) {
            continue;
        }
        // `<recv>.method(` where method is an iteration entry point.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text)
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let recv = receiver_name(toks, i - 2);
            if let Some(name) = recv {
                if tracked.contains(name) && !statement_restores_order(toks, i) {
                    out.push(finding(file, t, name, t.text));
                }
            }
        }
        // `for <pat> in [&mut] <ident> {`.
        if t.is_ident("for") {
            if let Some((j, name)) = for_loop_hash_source(toks, i, &tracked) {
                out.push(finding(file, &toks[j], name, "for-in"));
            }
        }
    }
    out
}

/// Identifiers declared or constructed as hash collections anywhere in the
/// file: `let x: HashMap<..> = ..`, `let x = HashMap::new()`,
/// `x: &HashMap<..>` (params, struct fields).
fn tracked_hash_names<'a>(toks: &[Tok<'a>]) -> BTreeSet<&'a str> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text) {
            continue;
        }
        if let Some(name) = binding_for_hash_type(toks, i) {
            names.insert(name);
        }
    }
    names
}

/// Walk backwards from a `HashMap`/`HashSet` token to the identifier it
/// types or initializes, tolerating `std :: collections ::` paths, `&`,
/// `mut`, lifetimes, and generic openers.
fn binding_for_hash_type<'a>(toks: &[Tok<'a>], type_pos: usize) -> Option<&'a str> {
    let mut i = type_pos;
    // Skip the leading path segments: `std :: collections ::`.
    while i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        i -= 3; // `seg` `:` `:`  <- move onto the path segment
    }
    // Now toks[i] is the head of the type path. Look left for `:` or `=`.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct('&') || t.is_punct('<') || t.kind == TokKind::Lifetime || t.is_ident("mut") {
            continue; // `&`, `&'a mut`, `Option<HashMap…`
        }
        if t.is_punct(':') || t.is_punct('=') {
            // `name : …HashMap` (param/field/let-annotation) or
            // `let name = HashMap::new()`.
            let mut k = j;
            while k > 0 {
                k -= 1;
                let b = &toks[k];
                if b.kind == TokKind::Ident && !b.is_ident("mut") && !b.is_ident("let") {
                    return Some(b.text);
                }
                if !(b.is_ident("mut") || b.is_ident("let")) {
                    return None;
                }
            }
            return None;
        }
        return None;
    }
    None
}

/// The receiver name for a `.method(` call at `dot_pos - 1`: `name.iter()`
/// or `self.name.iter()` both resolve to `name`.
fn receiver_name<'a>(toks: &[Tok<'a>], recv_pos: usize) -> Option<&'a str> {
    let t = toks.get(recv_pos)?;
    if t.kind == TokKind::Ident && !t.is_ident("self") {
        Some(t.text)
    } else {
        None
    }
}

/// From a flagged token forward to the end of the statement: does anything
/// visibly restore a deterministic order (`sort*` call or `BTreeMap` /
/// `BTreeSet` target)?
fn statement_restores_order(toks: &[Tok<'_>], from: usize) -> bool {
    for t in toks.iter().skip(from).take(200) {
        // `;` ends the statement; `{`/`}` means we left the expression
        // (tail expressions, block bodies) — scanning past either would
        // credit sorts belonging to unrelated code.
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.kind == TokKind::Ident
            && (t.text.starts_with("sort") || t.text == "BTreeMap" || t.text == "BTreeSet")
        {
            return true;
        }
    }
    false
}

/// For a `for` keyword at `for_pos`: when the loop source expression is a
/// bare (possibly borrowed) tracked identifier, return its token index and
/// name. `for (k, v) in &map {` and `for x in set {` match;
/// `for x in map.keys()` is left to the method rule.
fn for_loop_hash_source<'a>(
    toks: &[Tok<'a>],
    for_pos: usize,
    tracked: &BTreeSet<&str>,
) -> Option<(usize, &'a str)> {
    // Find the matching `in` at pattern depth 0, bounded to the same line
    // neighborhood (patterns are short).
    let mut depth = 0i32;
    let mut i = for_pos + 1;
    let in_pos = loop {
        let t = toks.get(i)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break i;
        } else if t.is_punct('{') || t.is_punct(';') || i > for_pos + 40 {
            return None;
        }
        i += 1;
    };
    // Source expression: tokens between `in` and the body `{`.
    let mut expr: Vec<&Tok<'a>> = Vec::new();
    let mut j = in_pos + 1;
    while let Some(t) = toks.get(j) {
        if t.is_punct('{') {
            break;
        }
        expr.push(t);
        j += 1;
        if expr.len() > 12 {
            return None;
        }
    }
    // Strip leading borrows: `&`, `&mut`.
    let mut k = 0;
    while k < expr.len() && (expr[k].is_punct('&') || expr[k].is_ident("mut")) {
        k += 1;
    }
    let rest = &expr[k..];
    match rest {
        [only] if only.kind == TokKind::Ident && tracked.contains(only.text) => {
            Some((in_pos + 1 + k, only.text))
        }
        // `self.field` / `obj.field`
        [obj, dot, field]
            if obj.kind == TokKind::Ident
                && dot.is_punct('.')
                && field.kind == TokKind::Ident
                && tracked.contains(field.text) =>
        {
            Some((in_pos + 1 + k + 2, field.text))
        }
        _ => None,
    }
}

fn finding(file: &SourceFile<'_>, t: &Tok<'_>, name: &str, how: &str) -> Finding {
    Finding {
        lint: LintId::NondetIter,
        file: file.rel.clone(),
        line: t.line,
        col: t.col,
        message: format!(
            "iteration over hash collection `{name}` ({how}) in a determinism-contract \
             crate; use a sorted/BTree collection or justify with \
             `// lint:allow(nondet-iter) <reason>`"
        ),
        excerpt: file.line_text(t.line).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/algos/src/x.rs".into(), src);
        check(&f)
    }

    #[test]
    fn flags_value_iteration_on_let_bound_map() {
        let src = "fn f() { let mut t = HashMap::new(); let s: f64 = t.values().sum(); }";
        let hits = check_src(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`t`"));
    }

    #[test]
    fn flags_for_in_over_borrowed_map_param() {
        let src = "fn f(t: &HashMap<u32, u64>) { for (k, v) in t { use_it(k, v); } }";
        assert_eq!(check_src(src).len(), 1);
        let src = "fn f(t: &std::collections::HashMap<u32, u64>) { for x in &t { } }";
        assert_eq!(check_src(src).len(), 1);
    }

    #[test]
    fn sorted_sink_in_same_statement_is_exempt() {
        let src = "fn f(t: &HashMap<u32, u64>) { \
                   let mut v: Vec<_> = t.keys().copied().collect(); v.sort(); \
                   let b: BTreeMap<_, _> = t.iter().map(|(k, v)| (k, v)).collect::<BTreeMap<_, _>>(); }";
        // `t.keys()` statement has no sort (the sort is the *next* statement)
        // => flagged; `t.iter()…collect::<BTreeMap>` => exempt.
        let hits = check_src(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("keys"));
    }

    #[test]
    fn tail_expression_scan_stops_at_the_function_boundary() {
        // The flagged call is a brace-less tail expression; the BTreeMap in
        // the *next* function must not exempt it.
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().product() } \
                   fn g(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> { \
                   m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, f64>>() }";
        let hits = check_src(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("values"));
    }

    #[test]
    fn untyped_identifiers_are_not_flagged() {
        let src = "fn f(v: &[u64]) { for x in v.iter() { } let s: u64 = v.iter().sum(); }";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)] mod tests { fn f() { let m = HashMap::new(); \
                   for x in &m {} } }";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_skipped_by_in_scope() {
        let f = SourceFile::parse("crates/segment/src/policy.rs".into(), "fn x() {}");
        assert!(!in_scope(&f, &["crates/algos/".into(), "crates/linalg/".into()]));
        let f = SourceFile::parse("crates/algos/src/metrics.rs".into(), "fn x() {}");
        assert!(in_scope(&f, &["crates/algos/".into(), "crates/linalg/".into()]));
        let f = SourceFile::parse("crates/algos/tests/properties.rs".into(), "fn x() {}");
        assert!(!in_scope(&f, &["crates/algos/".into()]), "tests are out of scope");
    }

    #[test]
    fn drain_and_struct_fields_are_tracked() {
        let src = "struct S { edges: HashMap<u32, u64> } \
                   impl S { fn f(&mut self) { for e in self.edges.drain() { use_it(e); } } }";
        let hits = check_src(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("drain"));
    }
}
