//! L7 `panic-propagation`: panics cross function boundaries, so the lint
//! does too. A library function that calls — at any depth — a helper
//! containing a non-allowed `unwrap`/`expect`/`panic!`/`unreachable!` is
//! itself a finding, anchored at its call site with the full chain down
//! to the ultimate panic rendered in the message.
//!
//! L2 `panic-path` already flags the panicking site itself; this lint
//! covers the callers L2 cannot see, which is what makes the baseline
//! burn-down real: an `.expect()` buried in a leaf taints every public
//! entry point above it, so debt can no longer hide behind one file.
//! A `// lint:allow(panic-path) <reason>` marker at the panicking site
//! sanctions the whole chain (the justification argues the panic cannot
//! fire, which holds for every caller); a `lint:allow(panic-propagation)`
//! marker at a call site exempts just that edge.

use crate::callgraph::{self, CallGraph};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use crate::{Finding, LintId};

/// The marker name.
pub const NAME: &str = "panic-propagation";

/// True when the body range contains a panic site that is neither inside
/// a test region nor sanctioned by an L2 allow-marker.
fn body_panics(file: &SourceFile<'_>, body: (usize, usize)) -> bool {
    let toks = &file.lexed.toks;
    for i in body.0..body.1.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || file.in_test_region(i) {
            continue;
        }
        let hit = match t.text {
            "unwrap" | "expect" => {
                i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            }
            "panic" | "unreachable" => {
                toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            }
            _ => false,
        };
        if hit && !file.allowed("panic-path", t.line) {
            return true;
        }
    }
    false
}

/// Run the lint: seed directly-panicking functions, propagate over
/// reversed call edges, and report each calling function at the edge that
/// leads toward the panic.
pub fn check(index: &SymbolIndex, graph: &CallGraph, files: &[SourceFile<'_>]) -> Vec<Finding> {
    let mut sources: Vec<usize> = Vec::new();
    for (i, sym) in index.fns.iter().enumerate() {
        if !sym.is_test && body_panics(&files[sym.file_idx], sym.body) {
            sources.push(i);
        }
    }
    let hops = callgraph::reach_sources(graph, &sources);

    let mut out = Vec::new();
    for (&i, &next) in hops.iter() {
        if next == i {
            continue; // the panicking function itself is L2's finding
        }
        let sym = &index.fns[i];
        if sym.is_test {
            continue;
        }
        let file = &files[sym.file_idx];
        // Every edge from here into the panicking set is a propagation
        // path; flag each distinct (callee, line) so the marker goes on
        // the exact call that needs justifying.
        let mut flagged: Vec<(usize, u32)> = Vec::new();
        for e in &graph.out[i] {
            if !hops.contains_key(&e.callee) || flagged.contains(&(e.callee, e.line)) {
                continue;
            }
            flagged.push((e.callee, e.line));
            let callee = &index.fns[e.callee];
            out.push(Finding {
                lint: LintId::PanicPropagation,
                file: sym.file.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "`{}` calls `{}`, which can panic ({}); handle the failure or justify \
                     the leaf with `// lint:allow(panic-path) <reason>`",
                    sym.qname,
                    callee.qname,
                    callgraph::chain(index, &hops, e.callee)
                ),
                excerpt: file.line_text(e.line).to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::symbols;
    use std::collections::BTreeMap as Map;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut crates = Map::new();
        crates.insert("crates/a".to_string(), "a".to_string());
        crates.insert("crates/b".to_string(), "b".to_string());
        let parsed: Vec<SourceFile<'_>> =
            files.iter().map(|(rel, text)| SourceFile::parse(rel.to_string(), text)).collect();
        let in_scope: Vec<bool> = parsed.iter().map(|_| true).collect();
        let idx = symbols::index(&parsed, &in_scope, &crates);
        let g = build(&idx);
        check(&idx, &g, &parsed)
    }

    #[test]
    fn transitive_chain_flags_every_caller_at_its_call_site() {
        let f = run(&[(
            "crates/a/src/m.rs",
            "pub fn entry() {\n  mid();\n}\nfn mid() {\n  leaf();\n}\n\
             fn leaf() {\n  None::<u8>.unwrap();\n}",
        )]);
        // `entry` and `mid` are propagation findings; `leaf` is L2's.
        assert_eq!(f.len(), 2, "{f:?}");
        let entry = f.iter().find(|x| x.message.contains("`a::m::entry`")).unwrap();
        assert_eq!(entry.line, 2, "anchored at the call");
        assert!(
            entry.message.contains("a::m::mid -> a::m::leaf"),
            "chain rendered: {}",
            entry.message
        );
    }

    #[test]
    fn allow_marker_at_the_leaf_sanctions_the_chain() {
        let f = run(&[(
            "crates/a/src/m.rs",
            "pub fn entry() { leaf(); }\nfn leaf() {\n  \
             // lint:allow(panic-path) value proven Some by construction\n  \
             None::<u8>.unwrap();\n}",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_crate_propagation_via_imports() {
        let f = run(&[
            ("crates/b/src/lib.rs", "pub fn boom() { panic!(\"x\"); }"),
            ("crates/a/src/lib.rs", "use b::boom;\npub fn caller() { boom(); }"),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/a/src/lib.rs");
        assert!(f[0].message.contains("`b::boom`"));
    }

    #[test]
    fn test_functions_neither_seed_nor_receive() {
        let f = run(&[(
            "crates/a/src/m.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { helper(); }\n}\n\
             pub fn helper() { }\n\
             #[cfg(test)]\nmod more {\n  fn panicky() { None::<u8>.unwrap(); }\n  \
             #[test]\n  fn u() { panicky(); }\n}",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
