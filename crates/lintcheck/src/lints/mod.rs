//! The lint passes. Each lint is a pure function from parsed sources (or
//! manifests) to [`crate::Finding`]s; suppression by allow-marker and
//! baseline subtraction happen in the driver.

pub mod clock_hygiene;
pub mod dep_policy;
pub mod lock_order;
pub mod metric_registry;
pub mod nondet_iter;
pub mod panic_path;
pub mod panic_prop;
