//! L5 `clock-hygiene`: ambient clock and entropy reads must be
//! unreachable from the deterministic-tick surfaces.
//!
//! PR 7 proved the scrape/evaluate loop deterministic dynamically
//! (bit-identical `/alerts` replays); this lint proves it statically.
//! `Instant::now` / `SystemTime::now` / `thread_rng` / `RandomState`
//! anywhere in a function body make that function an **entropy source**,
//! and taint propagates backward through the call graph: a deterministic
//! surface that can *reach* a source — at any call depth — is a finding.
//!
//! Measurement-only instrumentation (span timing, busy-time histograms)
//! is the sanctioned exception: a
//! `// lint:allow(clock-hygiene) <reason>` marker on the clock-read line
//! stops the function from becoming a source at all, so its callers stay
//! clean too. The marker therefore carries a stronger obligation than
//! most: the justification must argue the value never feeds outputs.

use crate::callgraph::{self, CallGraph};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use crate::{Finding, LintId};
use std::collections::BTreeMap;

/// The marker name.
pub const NAME: &str = "clock-hygiene";

/// One ambient read inside a function body.
struct Source {
    line: u32,
    col: u32,
    what: &'static str,
}

/// Scan a body token range for ambient clock/entropy reads. Marker-allowed
/// lines are skipped here — before taint seeding — so a justified read
/// does not poison callers.
fn body_sources(file: &SourceFile<'_>, body: (usize, usize)) -> Option<Source> {
    let toks = &file.lexed.toks;
    for i in body.0..body.1.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text {
            // `Instant::now(` / `SystemTime::now(` (also matches a bare
            // `Instant::now` passed as a fn pointer, e.g. `.then(Instant::now)`).
            "now"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("Instant") =>
            {
                "Instant::now"
            }
            "now"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("SystemTime") =>
            {
                "SystemTime::now"
            }
            // Ambient RNG constructors.
            "thread_rng" | "from_entropy" if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                if t.text == "thread_rng" {
                    "thread_rng"
                } else {
                    "from_entropy"
                }
            }
            // Hash-seed entropy: mentioning the type at all (as a bound,
            // default param, or constructor) pulls in a random seed.
            "RandomState" => "RandomState",
            _ => continue,
        };
        if file.allowed(NAME, t.line) {
            continue;
        }
        return Some(Source { line: t.line, col: t.col, what });
    }
    None
}

/// Run the lint: seed entropy sources, propagate taint over reversed call
/// edges, report every tainted function on a deterministic surface.
pub fn check(
    index: &SymbolIndex,
    graph: &CallGraph,
    files: &[SourceFile<'_>],
    det_prefixes: &[String],
) -> Vec<Finding> {
    let mut sources: Vec<usize> = Vec::new();
    let mut src_info: BTreeMap<usize, Source> = BTreeMap::new();
    for (i, sym) in index.fns.iter().enumerate() {
        if sym.is_test {
            continue;
        }
        if let Some(s) = body_sources(&files[sym.file_idx], sym.body) {
            sources.push(i);
            src_info.insert(i, s);
        }
    }
    let hops = callgraph::reach_sources(graph, &sources);

    let mut out = Vec::new();
    for (&i, &next) in hops.iter() {
        let sym = &index.fns[i];
        if sym.is_test || !det_prefixes.iter().any(|p| sym.file.starts_with(p.as_str())) {
            continue;
        }
        let file = &files[sym.file_idx];
        if next == i {
            // The surface function reads the clock itself: anchor at the
            // read so a marker there can sanction it.
            let s = &src_info[&i];
            out.push(Finding {
                lint: LintId::ClockHygiene,
                file: sym.file.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "`{}` reads ambient `{}` on a deterministic-tick surface; inject the \
                     value (logical tick / seeded rng) or justify with \
                     `// lint:allow({NAME}) <reason>`",
                    sym.qname, s.what
                ),
                excerpt: file.line_text(s.line).to_string(),
            });
        } else {
            // Transitive taint: anchor at the definition and render the
            // call chain down to the ultimate read.
            let mut end = i;
            while let Some(&n) = hops.get(&end) {
                if n == end {
                    break;
                }
                end = n;
            }
            let s = &src_info[&end];
            out.push(Finding {
                lint: LintId::ClockHygiene,
                file: sym.file.clone(),
                line: sym.line,
                col: sym.col,
                message: format!(
                    "`{}` reaches ambient `{}` via {}; deterministic-tick surfaces must not \
                     depend on the wall clock or process entropy",
                    sym.qname,
                    s.what,
                    callgraph::chain(index, &hops, i)
                ),
                excerpt: file.line_text(sym.line).to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::symbols;
    use std::collections::BTreeMap as Map;

    fn run(files: &[(&str, &str)], det: &[&str]) -> Vec<Finding> {
        let mut crates = Map::new();
        crates.insert("crates/a".to_string(), "a".to_string());
        crates.insert("crates/b".to_string(), "b".to_string());
        let parsed: Vec<SourceFile<'_>> =
            files.iter().map(|(rel, text)| SourceFile::parse(rel.to_string(), text)).collect();
        let in_scope: Vec<bool> = parsed.iter().map(|_| true).collect();
        let idx = symbols::index(&parsed, &in_scope, &crates);
        let g = build(&idx);
        let det: Vec<String> = det.iter().map(|s| s.to_string()).collect();
        check(&idx, &g, &parsed, &det)
    }

    #[test]
    fn direct_read_on_surface_is_flagged_at_the_read() {
        let f = run(
            &[("crates/a/src/lib.rs", "pub fn tick() { let t = Instant::now(); drop(t); }")],
            &["crates/a/"],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Instant::now"));
        assert!(f[0].excerpt.contains("Instant::now"));
    }

    #[test]
    fn transitive_taint_crosses_crates_with_a_chain() {
        let f = run(
            &[
                ("crates/b/src/lib.rs", "pub fn stamp() -> u64 { SystemTime::now(); 0 }"),
                (
                    "crates/a/src/lib.rs",
                    "use b::stamp;\npub fn surface() -> u64 { helper() }\n\
                     fn helper() -> u64 { stamp() }",
                ),
            ],
            &["crates/a/"],
        );
        // `surface` and `helper` are both tainted; `stamp` is off-surface.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.file == "crates/a/src/lib.rs"));
        let surface = f.iter().find(|x| x.message.contains("`a::surface`")).unwrap();
        assert!(
            surface.message.contains("a::surface -> a::helper -> b::stamp"),
            "chain rendered: {}",
            surface.message
        );
    }

    #[test]
    fn marker_at_the_read_untaints_every_caller() {
        let f = run(
            &[(
                "crates/a/src/lib.rs",
                "pub fn surface() { timed() }\nfn timed() {\n  \
                 // lint:allow(clock-hygiene) measurement only, never feeds outputs\n  \
                 let t = Instant::now(); drop(t);\n}",
            )],
            &["crates/a/"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn off_surface_reads_are_not_findings() {
        let f = run(
            &[("crates/b/src/lib.rs", "pub fn free_clock() { Instant::now(); }")],
            &["crates/a/"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn random_state_and_thread_rng_are_sources() {
        let f = run(
            &[(
                "crates/a/src/lib.rs",
                "pub fn seed() -> RandomState { RandomState::new() }\n\
                 pub fn roll() { thread_rng(); }",
            )],
            &["crates/a/"],
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.message.contains("RandomState")));
        assert!(f.iter().any(|x| x.message.contains("thread_rng")));
    }
}
