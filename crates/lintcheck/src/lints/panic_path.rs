//! L2 `panic-path`: `unwrap()` / `expect()` / `panic!` / `unreachable!` in
//! non-test, non-bench library code.
//!
//! An always-on analytics substrate must degrade, not abort: a panic in a
//! library path takes down the whole streaming engine (or poisons its
//! locks). Library code propagates errors; tests, benches, binaries, and
//! examples may panic freely. Justified sites (lock poisoning, proven
//! invariants) carry `// lint:allow(panic-path) <reason>`.

use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};
use crate::{Finding, LintId};

/// True when `file` is in scope: library code outside shims.
pub fn in_scope(file: &SourceFile<'_>) -> bool {
    file.kind == FileKind::Lib
}

/// Run the lint over one in-scope file.
pub fn check(file: &SourceFile<'_>) -> Vec<Finding> {
    let toks = &file.lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_region(i) {
            continue;
        }
        let what = match t.text {
            // Method calls: must be `.unwrap(` / `.expect(` so that
            // definitions (`fn unwrap(`) and fields do not match.
            "unwrap" | "expect"
                if i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                format!(".{}()", t.text)
            }
            // Macros: `panic!(` / `unreachable!(`.
            "panic" | "unreachable"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct('(')) =>
            {
                format!("{}!", t.text)
            }
            _ => continue,
        };
        out.push(Finding {
            lint: LintId::PanicPath,
            file: file.rel.clone(),
            line: t.line,
            col: t.col,
            message: format!(
                "{what} on a library path; propagate an error instead, or justify with \
                 `// lint:allow(panic-path) <reason>`"
            ),
            excerpt: file.line_text(t.line).to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/graph/src/x.rs".into(), src);
        check(&f)
    }

    #[test]
    fn flags_the_four_panic_forms() {
        let src = "fn f(o: Option<u8>) -> u8 { \
                   let a = o.unwrap(); let b = o.expect(\"msg\"); \
                   if a > b { panic!(\"boom\") } else { unreachable!() } }";
        let whats: Vec<String> = check_src(src).iter().map(|f| f.message.clone()).collect();
        assert_eq!(whats.len(), 4);
        assert!(whats[0].contains(".unwrap()"));
        assert!(whats[1].contains(".expect()"));
        assert!(whats[2].contains("panic!"));
        assert!(whats[3].contains("unreachable!"));
    }

    #[test]
    fn near_misses_do_not_match() {
        let src = "fn f(o: Option<u8>) { \
                   let _ = o.unwrap_or(3); let _ = o.unwrap_or_else(|| 4); \
                   let _ = o.unwrap_or_default(); expect_fun(); \
                   let unwrap = 1; let _ = unwrap + 1; }";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src = "fn f() { let s = \"don't panic!(x) or .unwrap()\"; } \
                   // old code: x.unwrap()\n/* panic!(no) */ fn g() {}";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn test_mod_and_test_fns_are_exempt() {
        let src = "#[cfg(test)] mod tests { #[test] fn t() { x.unwrap(); panic!(\"ok\"); } }\n\
                   #[test] fn standalone() { y.expect(\"fine\"); }";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn non_lib_files_are_out_of_scope() {
        for rel in [
            "crates/bench/src/bin/exp_fig1.rs",
            "crates/graph/tests/properties.rs",
            "crates/bench/benches/bench_linalg.rs",
            "examples/live_dashboard.rs",
            "shims/criterion/src/lib.rs",
        ] {
            let f = SourceFile::parse(rel.into(), "fn x() {}");
            assert!(!in_scope(&f), "{rel}");
        }
        assert!(in_scope(&SourceFile::parse("crates/graph/src/graph.rs".into(), "")));
        assert!(in_scope(&SourceFile::parse("src/lib.rs".into(), "")));
    }
}
