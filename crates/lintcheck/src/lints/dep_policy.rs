//! L4 `dependency-policy`: hermetic builds and no `unsafe`.
//!
//! The workspace builds offline: every dependency must be another workspace
//! crate (`workspace = true`) or a path dependency resolving under
//! `crates/` or `shims/`. Registry (`version = "..."`) and `git`
//! dependencies are findings — they would break the hermetic build the
//! moment someone runs `cargo build` without a network. Separately, the
//! `unsafe` keyword is forbidden outside an explicit allow-list (currently
//! empty: the whole workspace is `forbid(unsafe_code)` by convention).

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, LintId};

/// Scan one `Cargo.toml` (`rel` is workspace-relative, `text` its
/// contents). Line-based: tracks `[section]` headers and judges each
/// `name = value` dependency line.
pub fn check_manifest(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut header_dep: Option<String> = None; // `[dependencies.foo]` form
    let mut header_ok = false;
    let mut header_line = 0u32;

    let flush_header = |out: &mut Vec<Finding>, name: &Option<String>, ok: bool, line: u32| {
        if let Some(name) = name {
            if !ok {
                out.push(manifest_finding(rel, text, line, name, "no workspace/path source"));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            flush_header(&mut out, &header_dep, header_ok, header_line);
            header_dep = None;
            let section = line.trim_matches(|c| c == '[' || c == ']');
            let is_dep_table = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || (section.starts_with("target.") && section.ends_with("dependencies"));
            in_dep_section = is_dep_table;
            // `[dependencies.foo]` / `[workspace.dependencies.foo]` form.
            for table in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section
                    .strip_prefix("workspace.")
                    .unwrap_or(section)
                    .strip_prefix(table)
                    .filter(|n| !n.contains('.'))
                {
                    header_dep = Some(name.to_string());
                    header_ok = false;
                    header_line = line_no;
                    in_dep_section = false;
                }
            }
            continue;
        }
        if let Some(name) = header_dep.clone() {
            if line.starts_with("workspace") && line.contains("true") {
                header_ok = true;
            }
            if line.starts_with("path") {
                header_ok = path_value_ok(rel, line);
                if !header_ok {
                    out.push(manifest_finding(
                        rel,
                        text,
                        line_no,
                        &name,
                        "path escapes the workspace",
                    ));
                    header_dep = None;
                }
            }
            if line.starts_with("version") || line.starts_with("git") {
                out.push(manifest_finding(rel, text, line_no, &name, "registry/git source"));
                header_dep = None;
            }
            continue;
        }
        if !in_dep_section || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else { continue };
        let (name, value) = (name.trim(), value.trim());
        if value.contains("workspace = true") || value.contains("workspace=true") {
            continue;
        }
        if value.contains("path") {
            if let Some(path_lit) = extract_path(value) {
                if path_ok(rel, &path_lit) {
                    continue;
                }
                out.push(manifest_finding(rel, text, line_no, name, "path escapes the workspace"));
                continue;
            }
        }
        out.push(manifest_finding(rel, text, line_no, name, "no workspace/path source"));
    }
    flush_header(&mut out, &header_dep, header_ok, header_line);
    out
}

/// Scan one `.rs` file for `unsafe` tokens (string/comment occurrences are
/// already filtered by the lexer).
pub fn check_unsafe(file: &SourceFile<'_>, allowed: &[String]) -> Vec<Finding> {
    if allowed.iter().any(|a| a == &file.rel) {
        return Vec::new();
    }
    file.lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
        .map(|t| Finding {
            lint: LintId::DependencyPolicy,
            file: file.rel.clone(),
            line: t.line,
            col: t.col,
            message: "`unsafe` is forbidden outside the allow-list \
                      (see lintcheck::Config::unsafe_allowed)"
                .to_string(),
            excerpt: file.line_text(t.line).to_string(),
        })
        .collect()
}

fn manifest_finding(rel: &str, text: &str, line: u32, dep: &str, why: &str) -> Finding {
    let excerpt =
        text.lines().nth(line.saturating_sub(1) as usize).unwrap_or("").trim().to_string();
    Finding {
        lint: LintId::DependencyPolicy,
        file: rel.to_string(),
        line,
        col: 1,
        message: format!(
            "dependency `{dep}` is not a workspace or shims/ path dependency ({why}); \
             the build must stay hermetic"
        ),
        excerpt,
    }
}

/// `path = "…"` inside an inline table: extract the quoted value.
fn extract_path(value: &str) -> Option<String> {
    let after = value.split("path").nth(1)?;
    let after = after.trim_start().strip_prefix('=')?.trim_start();
    let after = after.strip_prefix('"')?;
    Some(after.split('"').next().unwrap_or("").to_string())
}

/// A `path` dependency is fine when, resolved against the manifest's
/// directory, it stays inside the workspace `crates/` or `shims/` trees.
fn path_ok(manifest_rel: &str, dep_path: &str) -> bool {
    let mut parts: Vec<&str> = manifest_rel.split('/').collect();
    parts.pop(); // drop Cargo.toml
    for seg in dep_path.split('/') {
        match seg {
            "." | "" => {}
            ".." => {
                if parts.pop().is_none() {
                    return false; // escapes the workspace root
                }
            }
            s => parts.push(s),
        }
    }
    matches!(parts.first(), Some(&"crates") | Some(&"shims"))
}

/// `path = "…"` line in a `[dependencies.foo]` table body.
fn path_value_ok(manifest_rel: &str, line: &str) -> bool {
    extract_path(line).is_some_and(|p| path_ok(manifest_rel, &p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let toml = "\
[package]\nname = \"x\"\n\n[dependencies]\n\
serde = { workspace = true, features = [\"derive\"] }\n\
commgraph-obs = { workspace = true }\n\
sibling = { path = \"../sibling\" }\n\n[dev-dependencies]\n\
proptest = { workspace = true }\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_and_git_deps_fail() {
        let toml = "[dependencies]\nserde = \"1.0\"\n\
                    rayon = { version = \"1.8\" }\n\
                    left-pad = { git = \"https://example.com/x\" }\n";
        let hits = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(hits.len(), 3);
        assert!(hits[0].message.contains("`serde`"));
    }

    #[test]
    fn escaping_paths_fail_but_shims_pass() {
        let toml = "[dependencies]\n\
                    evil = { path = \"../../../outside\" }\n\
                    shim = { path = \"../../shims/serde\" }\n";
        let hits = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`evil`"));
    }

    #[test]
    fn header_form_tables_are_judged() {
        let toml = "[dependencies.good]\nworkspace = true\n\n\
                    [dependencies.bad]\nversion = \"0.3\"\n\n\
                    [dependencies.trailing]\nfeatures = [\"x\"]\n";
        let hits = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("`bad`"));
        assert!(hits[1].message.contains("`trailing`"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nversion = \"1.0\"\n\n[features]\ndefault = []\n\
                    [profile.release]\ndebug = true\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn unsafe_tokens_flagged_unless_allowed() {
        let src = "fn f() { let p = unsafe { *ptr }; } // unsafe in comment\n\
                   const S: &str = \"unsafe in string\";";
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        assert_eq!(check_unsafe(&f, &[]).len(), 1, "only the real token");
        assert!(check_unsafe(&f, &["crates/x/src/lib.rs".to_string()]).is_empty());
    }
}
