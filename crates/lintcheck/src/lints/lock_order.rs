//! L6 `lock-order`: every mutex acquisition classifies to a named lock
//! class, nested acquisitions must follow the single canonical order
//! declared in [`crate::Config::lock_order`], and the table itself is
//! checked both ways (undeclared classes and stale entries are findings).
//!
//! The analysis is interprocedural:
//!
//! * **Direct sites** — `recv.lock()` / `recv.try_lock()` classify by
//!   receiver shape: `self.field` → `crate::Owner.field`, a bare or
//!   indexed local → `crate::module.name`. An unclassifiable receiver is
//!   itself a finding — a mutex the analyzer cannot name is a mutex no
//!   order can protect.
//! * **Guard-returning helpers** — a function whose signature returns a
//!   `MutexGuard` (the `fn lock(&self)` poison-recovery idiom in `obs`)
//!   makes every *call site* an acquisition of the helper's class, so the
//!   order is enforced where the guard actually lives.
//! * **Guard spans** — a `let`-bound guard is held to the end of its
//!   enclosing block (truncated at an explicit `drop(guard)`); a
//!   temporary is held to the end of its statement.
//! * **Transitive sets** — while a guard is held, calling `f` counts
//!   every class `f` can acquire at any depth (fixpoint over the call
//!   graph), so `AlertManager::evaluate` holding its own lock while a
//!   condition helper queries the `Tsdb` is seen as the nested pair it
//!   really is.

use crate::callgraph::{self, CallGraph};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;
use crate::{Finding, LintId};
use std::collections::{BTreeMap, BTreeSet};

/// The marker name.
pub const NAME: &str = "lock-order";

/// Synthetic anchor for table-side findings (stale entries have no
/// acquisition site to point at).
pub const TABLE_FILE: &str = "lock-order.table";

/// One acquisition site (direct or via a guard-returning helper).
struct Acq {
    /// Canonical class, e.g. `obs::Registry.families`.
    class: String,
    /// Token index of the acquiring ident (`lock` or the helper name).
    tok: usize,
    line: u32,
    col: u32,
    /// Exclusive token index the guard is held until.
    span_end: usize,
}

/// Run the lint.
pub fn check(
    index: &SymbolIndex,
    graph: &CallGraph,
    files: &[SourceFile<'_>],
    order: &[String],
) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let n = index.fns.len();

    // Direct acquisition sites per function.
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(n);
    for sym in &index.fns {
        if sym.is_test {
            acqs.push(Vec::new());
            continue;
        }
        let file = &files[sym.file_idx];
        acqs.push(direct_sites(index, sym, file, &mut out));
    }

    // Guard-returning helpers: signature mentions `MutexGuard`; the class
    // is the helper's own direct site, or (for wrappers) inherited from a
    // guard-returning callee.
    let mut ret_guard: BTreeMap<usize, String> = BTreeMap::new();
    let wants: Vec<usize> = (0..n)
        .filter(|&i| {
            !index.fns[i].is_test && returns_guard(&index.fns[i], &files[index.fns[i].file_idx])
        })
        .collect();
    for &i in &wants {
        if let Some(a) = acqs[i].first() {
            ret_guard.insert(i, a.class.clone());
        }
    }
    loop {
        let mut changed = false;
        for &i in &wants {
            if ret_guard.contains_key(&i) {
                continue;
            }
            if let Some(cls) = graph.out[i].iter().find_map(|e| ret_guard.get(&e.callee)) {
                ret_guard.insert(i, cls.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Call sites of guard-returning helpers become acquisitions in the
    // caller, with the caller-side statement shape deciding the span.
    for i in 0..n {
        let sym = &index.fns[i];
        if sym.is_test {
            continue;
        }
        let file = &files[sym.file_idx];
        let toks = &file.lexed.toks;
        // A direct site's `.lock(` token also parses as a method call; it
        // must not additionally resolve to a helper named `lock`.
        let direct_toks: BTreeSet<usize> = acqs[i].iter().map(|a| a.tok).collect();
        let mut extra: Vec<Acq> = Vec::new();
        for cs in &index.calls[i] {
            if direct_toks.contains(&cs.tok()) {
                continue;
            }
            let Some((callee, _)) = callgraph::resolve(index, i, cs) else { continue };
            if callee == i {
                continue;
            }
            let Some(class) = ret_guard.get(&callee) else { continue };
            let k = cs.tok();
            extra.push(Acq {
                class: class.clone(),
                tok: k,
                line: cs.line(),
                col: toks[k].col,
                span_end: guard_span(toks, k, sym.body.1),
            });
        }
        acqs[i].extend(extra);
        acqs[i].sort_by_key(|a| a.tok);
    }

    // Transitive lock sets: classes a call to `f` may acquire, at any
    // depth. Plain fixpoint — the graph is small and cycles converge.
    let mut locks_of: Vec<BTreeSet<String>> =
        (0..n).map(|i| acqs[i].iter().map(|a| a.class.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for e in &graph.out[i] {
                let add: Vec<String> = locks_of[e.callee]
                    .iter()
                    .filter(|c| !locks_of[i].contains(*c))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    locks_of[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Nested pairs: while `a` is held, a later acquisition or a call that
    // transitively locks is an ordered pair to validate.
    let rank = |class: &str| order.iter().position(|c| c == class);
    let mut undeclared: BTreeMap<String, (String, u32, u32)> = BTreeMap::new();
    let mut seen_classes: BTreeSet<String> = BTreeSet::new();
    for i in 0..n {
        let sym = &index.fns[i];
        let file = &files[sym.file_idx];
        let acq_toks: BTreeSet<usize> = acqs[i].iter().map(|a| a.tok).collect();
        for a in &acqs[i] {
            seen_classes.insert(a.class.clone());
            if rank(&a.class).is_none() {
                let e =
                    undeclared.entry(a.class.clone()).or_insert((sym.file.clone(), a.line, a.col));
                if (sym.file.as_str(), a.line) < (e.0.as_str(), e.1) {
                    *e = (sym.file.clone(), a.line, a.col);
                }
            }
            // (inner class, line, col, via) — deduplicated per outer site.
            let mut pairs: BTreeSet<(String, u32, u32, Option<String>)> = BTreeSet::new();
            for b in &acqs[i] {
                if b.tok > a.tok && b.tok < a.span_end {
                    pairs.insert((b.class.clone(), b.line, b.col, None));
                }
            }
            for cs in &index.calls[i] {
                let k = cs.tok();
                if k <= a.tok || k >= a.span_end || acq_toks.contains(&k) {
                    continue;
                }
                let Some((callee, _)) = callgraph::resolve(index, i, cs) else { continue };
                if callee == i {
                    continue;
                }
                for cls in &locks_of[callee] {
                    // A guard-returning call is already an acquisition
                    // site above; don't double-report its own class.
                    if ret_guard.get(&callee) == Some(cls) {
                        continue;
                    }
                    pairs.insert((
                        cls.clone(),
                        cs.line(),
                        files[sym.file_idx].lexed.toks[k].col,
                        Some(index.fns[callee].qname.clone()),
                    ));
                }
            }
            for (inner, line, col, via) in pairs {
                let through = via.as_deref().map(|q| format!(" through `{q}`")).unwrap_or_default();
                if inner == a.class {
                    out.push(Finding {
                        lint: LintId::LockOrder,
                        file: sym.file.clone(),
                        line,
                        col,
                        message: format!(
                            "`{}` re-acquires `{}`{through} while its guard is still held \
                             (acquired at line {}) — self-deadlock on a non-reentrant mutex",
                            sym.qname, a.class, a.line
                        ),
                        excerpt: file.line_text(line).to_string(),
                    });
                    continue;
                }
                match (rank(&a.class), rank(&inner)) {
                    (Some(ra), Some(rb)) if ra > rb => out.push(Finding {
                        lint: LintId::LockOrder,
                        file: sym.file.clone(),
                        line,
                        col,
                        message: format!(
                            "`{}` acquires `{inner}`{through} while holding `{}` (line {}), \
                             inverting the canonical order (`{inner}` ranks before `{}`)",
                            sym.qname, a.class, a.line, a.class
                        ),
                        excerpt: file.line_text(line).to_string(),
                    }),
                    // In-order pairs and pairs with undeclared classes
                    // (reported once per class below) are fine here.
                    _ => {}
                }
            }
        }
    }

    for (class, (file, line, col)) in undeclared {
        out.push(Finding {
            lint: LintId::LockOrder,
            file,
            line,
            col,
            message: format!(
                "lock class `{class}` is not in the canonical acquisition-order table; \
                 declare its rank in `Config::lock_order`"
            ),
            excerpt: class,
        });
    }
    for (pos, class) in order.iter().enumerate() {
        if !seen_classes.contains(class) {
            out.push(Finding {
                lint: LintId::LockOrder,
                file: TABLE_FILE.to_string(),
                line: pos as u32 + 1,
                col: 1,
                message: format!(
                    "lock-order table entry `{class}` matches no acquisition site; remove it"
                ),
                excerpt: class.clone(),
            });
        }
    }
    out
}

/// Extract and classify the direct `.lock()` / `.try_lock()` sites in one
/// function body. Unclassifiable receivers are pushed straight to `out`.
fn direct_sites(
    index: &SymbolIndex,
    sym: &crate::symbols::FnSym,
    file: &SourceFile<'_>,
    out: &mut Vec<Finding>,
) -> Vec<Acq> {
    let toks = &file.lexed.toks;
    let mut sites = Vec::new();
    let (open, close) = sym.body;
    for k in open + 1..close.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident
            || !(t.text == "lock" || t.text == "try_lock")
            || k < 1
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        match classify_receiver(index, sym, toks, k) {
            Receiver::SelfHelper => {} // `self.lock()` — a call, not a site
            Receiver::Class(class) => sites.push(Acq {
                class,
                tok: k,
                line: t.line,
                col: t.col,
                span_end: guard_span(toks, k, close),
            }),
            Receiver::Unknown => out.push(Finding {
                lint: LintId::LockOrder,
                file: sym.file.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` acquires a lock through an unclassifiable receiver; bind the \
                     mutex to a named field or local so the order is checkable",
                    sym.qname
                ),
                excerpt: file.line_text(t.line).to_string(),
            }),
        }
    }
    sites
}

enum Receiver {
    /// `self.lock()` — resolved through the call graph instead.
    SelfHelper,
    Class(String),
    Unknown,
}

/// Name the lock class from the receiver tokens before the `.` at `k-1`.
fn classify_receiver(
    index: &SymbolIndex,
    sym: &crate::symbols::FnSym,
    toks: &[Tok<'_>],
    k: usize,
) -> Receiver {
    if k < 2 {
        return Receiver::Unknown;
    }
    let holder = sym
        .owner
        .clone()
        .unwrap_or_else(|| sym.module.rsplit("::").next().unwrap_or(&sym.module).to_string());
    let _ = index;
    let j = k - 2;
    match toks[j].kind {
        TokKind::Ident => {
            let prev_dot = j >= 1 && toks[j - 1].is_punct('.');
            if toks[j].is_ident("self") && !prev_dot {
                return Receiver::SelfHelper;
            }
            if prev_dot && j >= 2 && toks[j - 2].is_ident("self") {
                // `self.field.lock()` — the owning type names the class.
                return Receiver::Class(format!("{}::{holder}.{}", sym.crate_name, toks[j].text));
            }
            if !prev_dot {
                // Bare local / param: `slot.lock()`.
                return Receiver::Class(format!("{}::{holder}.{}", sym.crate_name, toks[j].text));
            }
            Receiver::Unknown
        }
        TokKind::Punct if toks[j].is_punct(']') => {
            // `name[expr].lock()` — match back to `[` and take the ident.
            let mut depth = 0i32;
            let mut i = j;
            loop {
                if toks[i].is_punct(']') {
                    depth += 1;
                } else if toks[i].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return Receiver::Unknown;
                }
                i -= 1;
            }
            if i >= 1 && toks[i - 1].kind == TokKind::Ident {
                return Receiver::Class(format!(
                    "{}::{holder}.{}",
                    sym.crate_name,
                    toks[i - 1].text
                ));
            }
            Receiver::Unknown
        }
        _ => Receiver::Unknown,
    }
}

/// True when the signature before the body mentions `MutexGuard` — the
/// guard-returning-helper shape. The scan stops at the previous item
/// boundary so it never reads past this function's own header.
fn returns_guard(sym: &crate::symbols::FnSym, file: &SourceFile<'_>) -> bool {
    let toks = &file.lexed.toks;
    let open = sym.body.0.min(toks.len());
    let mut j = open;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('}') || t.is_punct(';') {
            break;
        }
        if t.is_ident("MutexGuard") {
            return true;
        }
    }
    false
}

/// Exclusive token index the guard acquired at `k` is held until:
/// `let`-bound → the enclosing block's `}` (truncated at `drop(name)`),
/// temporary → the end of its statement; never past `body_close`.
fn guard_span(toks: &[Tok<'_>], k: usize, body_close: usize) -> usize {
    // Statement start: scan back to the nearest `;` / `{` / `}`.
    let mut s = k;
    while s > 0 {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let let_bound = toks.get(s).is_some_and(|t| t.is_ident("let"));
    let guard_name: Option<&str> = if let_bound {
        let mut g = s + 1;
        if toks.get(g).is_some_and(|t| t.is_ident("mut")) {
            g += 1;
        }
        toks.get(g).filter(|t| t.kind == TokKind::Ident).map(|t| t.text)
    } else {
        None
    };
    let mut depth = 0i32;
    let mut j = k + 1;
    let end = body_close.min(toks.len());
    while j < end {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j; // enclosing block closes (or statement is a tail expr)
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 && !let_bound {
            return j;
        } else if let Some(name) = guard_name {
            // `drop(guard)` releases early.
            if t.is_ident("drop")
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(j + 2).is_some_and(|n| n.is_ident(name))
                && toks.get(j + 3).is_some_and(|n| n.is_punct(')'))
            {
                return j;
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::symbols;
    use std::collections::BTreeMap as Map;

    fn run(files: &[(&str, &str)], order: &[&str]) -> Vec<Finding> {
        let mut crates = Map::new();
        crates.insert("crates/a".to_string(), "a".to_string());
        let parsed: Vec<SourceFile<'_>> =
            files.iter().map(|(rel, text)| SourceFile::parse(rel.to_string(), text)).collect();
        let in_scope: Vec<bool> = parsed.iter().map(|_| true).collect();
        let idx = symbols::index(&parsed, &in_scope, &crates);
        let g = build(&idx);
        let order: Vec<String> = order.iter().map(|s| s.to_string()).collect();
        check(&idx, &g, &parsed, &order)
    }

    const TWO_LOCKS: &str = "pub struct R { a: Mutex<u32>, b: Mutex<u32> }\nimpl R {\n\
         pub fn good(&self) {\n    let a = self.a.lock().unwrap_or_default();\n    \
         let b = self.b.lock().unwrap_or_default();\n  }\n}";

    #[test]
    fn in_order_nesting_is_clean() {
        let f = run(&[("crates/a/src/m.rs", TWO_LOCKS)], &["a::R.a", "a::R.b"]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inverted_nesting_is_flagged_at_the_inner_site() {
        let f = run(&[("crates/a/src/m.rs", TWO_LOCKS)], &["a::R.b", "a::R.a"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inverting the canonical order"));
        assert_eq!(f[0].line, 5, "anchored at the inner acquisition");
    }

    #[test]
    fn recursive_acquisition_is_a_self_deadlock() {
        let src = "pub struct R { a: Mutex<u32> }\nimpl R {\n  pub fn bad(&self) {\n    \
                   let g = self.a.lock().unwrap_or_default();\n    \
                   let h = self.a.lock().unwrap_or_default();\n  }\n}";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::R.a"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn drop_releases_the_guard_early() {
        let src =
            "pub struct R { a: Mutex<u32>, b: Mutex<u32> }\nimpl R {\n  pub fn ok(&self) {\n    \
                   let g = self.b.lock().unwrap_or_default();\n    drop(g);\n    \
                   let h = self.a.lock().unwrap_or_default();\n  }\n}";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::R.a", "a::R.b"]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_returning_helper_moves_the_site_to_callers() {
        let src = "pub struct R { a: Mutex<u32>, b: Mutex<u32> }\nimpl R {\n  \
                   fn lock(&self) -> MutexGuard<'_, u32> { self.a.lock().unwrap_or_default() }\n  \
                   pub fn bad(&self) {\n    let g = self.b.lock().unwrap_or_default();\n    \
                   let h = self.lock();\n  }\n}";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::R.a", "a::R.b"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`a::R.a`"), "{}", f[0].message);
        assert_eq!(f[0].line, 6, "anchored at the helper call in the caller");
    }

    #[test]
    fn transitive_acquisition_through_a_callee_is_seen() {
        let src = "pub struct R { a: Mutex<u32>, b: Mutex<u32> }\nimpl R {\n  \
                   fn deep(&self) { let x = self.a.lock().unwrap_or_default(); }\n  \
                   pub fn bad(&self) {\n    let g = self.b.lock().unwrap_or_default();\n    \
                   self.deep();\n  }\n}";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::R.a", "a::R.b"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("through `a::m::R::deep`"), "{}", f[0].message);
    }

    #[test]
    fn undeclared_and_stale_classes_round_trip_the_table() {
        let src = "pub struct R { a: Mutex<u32> }\nimpl R {\n  \
                   pub fn only(&self) { let g = self.a.lock().unwrap_or_default(); }\n}";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::R.gone"]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("`a::R.a` is not in the canonical")));
        assert!(f.iter().any(|x| x.file == TABLE_FILE && x.message.contains("`a::R.gone`")));
    }

    #[test]
    fn indexed_and_temporary_receivers_classify() {
        let src = "pub fn pump(slots: &[Mutex<u32>]) {\n  \
                   let g = slots[0].lock().unwrap_or_default();\n}\n\
                   pub fn peek(m: &Mutex<u32>) -> u32 { *m.lock().unwrap_or_default() }";
        let f = run(&[("crates/a/src/m.rs", src)], &["a::m.slots", "a::m.m"]);
        assert!(f.is_empty(), "{f:?}");
    }
}
