//! `lintcheck` — the workspace's own static-analysis pass.
//!
//! Clippy checks Rust; this crate checks *this project's contracts*, the
//! invariants PRs 1–3 established but nothing enforced:
//!
//! * [`lints::nondet_iter`] (**L1** `nondet-iter`) — no `HashMap`/`HashSet`
//!   iteration in the determinism-contract crates (`algos`, `linalg`),
//!   where parallel kernels promise bit-for-bit serial-identical results.
//! * [`lints::panic_path`] (**L2** `panic-path`) — no
//!   `unwrap`/`expect`/`panic!`/`unreachable!` in non-test, non-bench
//!   library code; the always-on pipeline degrades, it does not abort.
//! * [`lints::metric_registry`] (**L3** `metric-registry`) — every
//!   `commgraph_*` metric literal matches the canonical table in
//!   `crates/obs/src/names.rs`, kinds agree, and every table entry is used.
//! * [`lints::dep_policy`] (**L4** `dependency-policy`) — manifests depend
//!   only on workspace crates or `shims/` path deps (hermetic offline
//!   build), and `unsafe` is forbidden outside an allow-list.
//!
//! L5–L7 are *interprocedural*: the sweep indexes every library function
//! ([`symbols`]), resolves call sites into a workspace call graph
//! ([`callgraph`]), and propagates properties across it:
//!
//! * [`lints::clock_hygiene`] (**L5** `clock-hygiene`) — ambient clock and
//!   entropy reads (`Instant::now`, `SystemTime::now`, `thread_rng`,
//!   `RandomState`) must be unreachable from the deterministic-tick
//!   surfaces; taint flows backward through the graph.
//! * [`lints::lock_order`] (**L6** `lock-order`) — every mutex
//!   acquisition classifies to a named lock class, nested acquisitions
//!   (including transitive ones through callees and guard-returning
//!   helpers) must follow the canonical order in [`Config::lock_order`].
//! * [`lints::panic_prop`] (**L7** `panic-propagation`) — a library
//!   function that can reach a panicking helper at any call depth is
//!   itself a finding, anchored at the propagating call site.
//!
//! Individual sites opt out with a justified marker on the same or the
//! preceding line:
//!
//! ```text
//! // lint:allow(panic-path) poisoned lock is unrecoverable by design
//! let guard = self.families.lock().expect("registry poisoned");
//! ```
//!
//! A reason is mandatory — reasonless or unknown-lint markers are
//! themselves findings. Pre-existing debt lives in a committed baseline
//! (see [`baseline`]) and is burned down incrementally; CI and the tier-1
//! test `tests/lintcheck_clean.rs` fail on any *fresh* finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod jsonout;
pub mod lexer;
pub mod lints;
pub mod source;
pub mod symbols;
pub mod walk;

use source::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;

/// The named lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// L1: hash-collection iteration in determinism-contract crates.
    NondetIter,
    /// L2: panic paths in library code.
    PanicPath,
    /// L3: metric names off the canonical table.
    MetricRegistry,
    /// L4: non-hermetic dependencies / forbidden `unsafe`.
    DependencyPolicy,
    /// L5: ambient clock/entropy reachable from deterministic surfaces.
    ClockHygiene,
    /// L6: lock acquisitions off the canonical order.
    LockOrder,
    /// L7: panics reachable through the call graph.
    PanicPropagation,
    /// Malformed allow-markers (unknown lint name or missing reason).
    LintMarker,
}

impl LintId {
    /// The marker/CLI name of the lint.
    pub fn name(&self) -> &'static str {
        match self {
            LintId::NondetIter => "nondet-iter",
            LintId::PanicPath => "panic-path",
            LintId::MetricRegistry => "metric-registry",
            LintId::DependencyPolicy => "dependency-policy",
            LintId::ClockHygiene => "clock-hygiene",
            LintId::LockOrder => "lock-order",
            LintId::PanicPropagation => "panic-propagation",
            LintId::LintMarker => "lint-marker",
        }
    }

    /// All selectable lints, in L1..L7 order.
    pub fn all() -> [LintId; 7] {
        [
            LintId::NondetIter,
            LintId::PanicPath,
            LintId::MetricRegistry,
            LintId::DependencyPolicy,
            LintId::ClockHygiene,
            LintId::LockOrder,
            LintId::PanicPropagation,
        ]
    }

    /// Parse a CLI/marker name.
    pub fn from_name(name: &str) -> Option<LintId> {
        match name {
            "nondet-iter" => Some(LintId::NondetIter),
            "panic-path" => Some(LintId::PanicPath),
            "metric-registry" => Some(LintId::MetricRegistry),
            "dependency-policy" => Some(LintId::DependencyPolicy),
            "clock-hygiene" => Some(LintId::ClockHygiene),
            "lock-order" => Some(LintId::LockOrder),
            "panic-propagation" => Some(LintId::PanicPropagation),
            "lint-marker" => Some(LintId::LintMarker),
            _ => None,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable diagnosis with the remediation hint.
    pub message: String,
    /// Trimmed source line (the baseline key; empty for manifest/table
    /// findings).
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

/// One canonical metric family, decoupled from `obs` types so fixture
/// tests can supply their own tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSpec {
    /// Full metric name.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Label keys.
    pub labels: Vec<String>,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root to sweep.
    pub root: PathBuf,
    /// Which lints to run.
    pub lints: Vec<LintId>,
    /// The canonical metric table, keyed by name.
    pub metric_table: BTreeMap<String, MetricSpec>,
    /// Workspace-relative path of the file defining the table (its own
    /// literals are definition sites, not references).
    pub metric_table_file: String,
    /// Workspace-relative prefixes of the determinism-contract crates.
    pub nondet_prefixes: Vec<String>,
    /// Files allowed to contain `unsafe`.
    pub unsafe_allowed: Vec<String>,
    /// Workspace-relative path prefixes of the deterministic-tick
    /// surfaces (L5): functions defined under these must not reach the
    /// ambient clock or process entropy.
    pub det_prefixes: Vec<String>,
    /// The canonical lock acquisition order (L6), outermost first. Every
    /// discovered lock class must appear here, and nested acquisitions
    /// must go strictly down the list.
    pub lock_order: Vec<String>,
}

impl Config {
    /// The default configuration for this workspace: all lints, the
    /// canonical table from `obs::names`, determinism contract
    /// on `algos` and `linalg`, empty `unsafe` allow-list.
    pub fn for_workspace(root: PathBuf) -> Config {
        let metric_table = obs::names::METRICS
            .iter()
            .map(|d| {
                (
                    d.name.to_string(),
                    MetricSpec {
                        name: d.name.to_string(),
                        kind: d.kind.name().to_string(),
                        labels: d.labels.iter().map(|l| l.to_string()).collect(),
                    },
                )
            })
            .collect();
        Config {
            root,
            lints: LintId::all().to_vec(),
            metric_table,
            metric_table_file: "crates/obs/src/names.rs".to_string(),
            nondet_prefixes: vec!["crates/algos/".to_string(), "crates/linalg/".to_string()],
            unsafe_allowed: Vec::new(),
            det_prefixes: vec![
                "crates/obs/src/tsdb.rs".to_string(),
                "crates/obs/src/alert.rs".to_string(),
                "crates/obs/src/query.rs".to_string(),
                "crates/cloudsim/src/net.rs".to_string(),
                "crates/analytics/".to_string(),
                "crates/algos/".to_string(),
                "crates/linalg/".to_string(),
            ],
            lock_order: workspace_lock_order(),
        }
    }
}

/// The canonical lock acquisition order for this workspace, outermost
/// first. DESIGN §7 documents the rationale per entry; the invariant the
/// order encodes: registry locks nest *outside* event buffers, the alert
/// manager queries the TSDB (never the reverse), and leaf task slots are
/// always innermost.
pub fn workspace_lock_order() -> Vec<String> {
    [
        "obs::Registry.families",
        "obs::Registry.events",
        "obs::AlertEngine.inner",
        "obs::Scraper.rules",
        "obs::Tsdb.inner",
        "obs::Tracer.inner",
        "obs::LabelCap.admitted",
        "linalg::par.slots",
    ]
    .into_iter()
    .map(str::to_string)
    .collect()
}

/// The result of one sweep, after marker suppression (but before baseline
/// subtraction — see [`Report`]).
#[derive(Debug, Default)]
pub struct Sweep {
    /// Findings, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Indexed library functions (0 when no interprocedural lint ran).
    pub callgraph_nodes: usize,
    /// Resolved call edges (0 when no interprocedural lint ran).
    pub callgraph_edges: usize,
}

/// A sweep partitioned against a baseline.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Indexed library functions (0 when no interprocedural lint ran).
    pub callgraph_nodes: usize,
    /// Resolved call edges (0 when no interprocedural lint ran).
    pub callgraph_edges: usize,
    /// Findings matched by the baseline (tolerated debt).
    pub baselined: Vec<Finding>,
    /// Fresh findings — these fail CI.
    pub fresh: Vec<Finding>,
}

/// Run the configured lints over the workspace tree.
pub fn sweep(cfg: &Config) -> io::Result<Sweep> {
    let files = walk::walk(&cfg.root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut metric_scan = lints::metric_registry::MetricScan::default();
    let run = |l: LintId| cfg.lints.contains(&l);
    let interproc =
        run(LintId::ClockHygiene) || run(LintId::LockOrder) || run(LintId::PanicPropagation);

    // Phase 1: read and parse every source file once. The interprocedural
    // lints need all files alive at the same time (the call graph crosses
    // them), so the sweep is no longer a streaming per-file loop.
    let mut texts: Vec<(String, String)> = Vec::with_capacity(files.sources.len());
    for rel_path in &files.sources {
        let text = fs::read_to_string(cfg.root.join(rel_path))?;
        texts.push((walk::rel_str(&cfg.root, rel_path), text));
    }
    let mut manifests: Vec<(String, String)> = Vec::with_capacity(files.manifests.len());
    for rel_path in &files.manifests {
        let text = fs::read_to_string(cfg.root.join(rel_path))?;
        manifests.push((walk::rel_str(&cfg.root, rel_path), text));
    }
    let parsed: Vec<SourceFile<'_>> =
        texts.iter().map(|(rel, text)| SourceFile::parse(rel.clone(), text)).collect();
    let files_scanned = parsed.len();

    // Phase 2: per-file lints, marker suppression, marker hygiene.
    for file in &parsed {
        let mut raw: Vec<Finding> = Vec::new();
        if run(LintId::NondetIter) && lints::nondet_iter::in_scope(file, &cfg.nondet_prefixes) {
            raw.extend(lints::nondet_iter::check(file));
        }
        if run(LintId::PanicPath) && lints::panic_path::in_scope(file) {
            raw.extend(lints::panic_path::check(file));
        }
        if run(LintId::DependencyPolicy) {
            raw.extend(lints::dep_policy::check_unsafe(file, &cfg.unsafe_allowed));
        }
        if run(LintId::MetricRegistry) && lints::metric_registry::in_scope(file) {
            lints::metric_registry::check_file(
                &mut metric_scan,
                file,
                &cfg.metric_table,
                &cfg.metric_table_file,
            );
        }
        findings.extend(raw.into_iter().filter(|f| !file.allowed(f.lint.name(), f.line)));
        findings.extend(marker_hygiene(file));
    }

    if run(LintId::MetricRegistry) {
        lints::metric_registry::finish(&mut metric_scan, &cfg.metric_table, &cfg.metric_table_file);
        // Metric findings are cross-file (unreferenced entries have no call
        // site to hang a marker on); the baseline is their escape hatch.
        findings.extend(metric_scan.findings);
    }

    if run(LintId::DependencyPolicy) {
        for (rel, text) in &manifests {
            findings.extend(lints::dep_policy::check_manifest(rel, text));
        }
    }

    // Phase 3: symbol index, call graph, interprocedural lints.
    let mut callgraph_nodes = 0usize;
    let mut callgraph_edges = 0usize;
    if interproc {
        let crates = symbols::crate_names(&manifests);
        let in_scope: Vec<bool> = parsed.iter().map(|f| f.kind == source::FileKind::Lib).collect();
        let index = symbols::index(&parsed, &in_scope, &crates);
        let graph = callgraph::build(&index);
        callgraph_nodes = graph.nodes();
        callgraph_edges = graph.edges;

        let mut raw: Vec<Finding> = Vec::new();
        if run(LintId::ClockHygiene) {
            raw.extend(lints::clock_hygiene::check(&index, &graph, &parsed, &cfg.det_prefixes));
        }
        if run(LintId::LockOrder) {
            raw.extend(lints::lock_order::check(&index, &graph, &parsed, &cfg.lock_order));
        }
        if run(LintId::PanicPropagation) {
            raw.extend(lints::panic_prop::check(&index, &graph, &parsed));
        }
        let by_rel: BTreeMap<&str, &SourceFile<'_>> =
            parsed.iter().map(|f| (f.rel.as_str(), f)).collect();
        findings.extend(raw.into_iter().filter(|f| {
            by_rel.get(f.file.as_str()).is_none_or(|sf| !sf.allowed(f.lint.name(), f.line))
        }));
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Ok(Sweep { findings, files_scanned, callgraph_nodes, callgraph_edges })
}

/// Validate the markers themselves: unknown lint names and missing reasons
/// are findings (a silent typo in a marker would silently re-enable the
/// site it meant to justify — or silently suppress nothing).
fn marker_hygiene(file: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in &file.markers {
        if LintId::from_name(&m.lint).is_none() {
            out.push(Finding {
                lint: LintId::LintMarker,
                file: file.rel.clone(),
                line: m.line,
                col: 1,
                message: format!("allow-marker names unknown lint `{}`", m.lint),
                excerpt: file.line_text(m.line).to_string(),
            });
        } else if m.reason.is_empty() {
            out.push(Finding {
                lint: LintId::LintMarker,
                file: file.rel.clone(),
                line: m.line,
                col: 1,
                message: format!(
                    "allow-marker for `{}` has no reason; justify the exemption",
                    m.lint
                ),
                excerpt: file.line_text(m.line).to_string(),
            });
        }
    }
    out
}

/// Sweep, then partition against the baseline (pass an empty baseline for
/// strict mode).
pub fn run(cfg: &Config, baseline: &baseline::Baseline) -> io::Result<Report> {
    let s = sweep(cfg)?;
    let (baselined, fresh) = baseline.partition(s.findings);
    Ok(Report {
        files_scanned: s.files_scanned,
        callgraph_nodes: s.callgraph_nodes,
        callgraph_edges: s.callgraph_edges,
        baselined,
        fresh,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for id in LintId::all() {
            assert_eq!(LintId::from_name(id.name()), Some(id));
        }
        assert_eq!(LintId::from_name("lint-marker"), Some(LintId::LintMarker));
        assert_eq!(LintId::from_name("nope"), None);
    }

    #[test]
    fn workspace_config_mirrors_the_obs_table() {
        let cfg = Config::for_workspace(PathBuf::from("."));
        assert_eq!(cfg.metric_table.len(), obs::names::METRICS.len());
        let stage = &cfg.metric_table["commgraph_stage_seconds"];
        assert_eq!(stage.kind, "histogram");
        assert_eq!(stage.labels, vec!["stage".to_string()]);
        assert!(cfg.nondet_prefixes.iter().any(|p| p.contains("algos")));
    }

    #[test]
    fn finding_display_is_clickable() {
        let f = Finding {
            lint: LintId::PanicPath,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "boom".into(),
            excerpt: String::new(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:3:9: [panic-path] boom");
    }
}
