//! Per-file source model: path classification, allow-marker parsing, and
//! `#[cfg(test)]` / `#[test]` region detection over the token stream.

use crate::lexer::{lex, Lexed, Tok};

/// What a `.rs` file is, judged from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some crate's `src/` (or the workspace `src/`).
    Lib,
    /// A binary under `src/bin/` or `src/main.rs`.
    Bin,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Benchmarks under a `benches/` directory.
    Bench,
    /// Examples under an `examples/` directory.
    Example,
    /// A vendored dependency stand-in under `shims/`.
    Shim,
}

/// Classify `rel` (a `/`-separated workspace-relative path).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"shims") {
        return FileKind::Shim;
    }
    if parts.contains(&"tests") {
        return FileKind::Test;
    }
    if parts.contains(&"benches") {
        return FileKind::Bench;
    }
    if parts.contains(&"examples") {
        return FileKind::Example;
    }
    if parts.contains(&"bin")
        || parts.last() == Some(&"main.rs")
        || parts.last() == Some(&"build.rs")
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// One `// lint:allow(<lint>) <reason>` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// The lint name inside the parentheses.
    pub lint: String,
    /// The free-text justification after the closing paren.
    pub reason: String,
    /// 1-based line the marker comment starts on.
    pub line: u32,
}

/// Parse every allow-marker out of the lexed comments. Markers suppress
/// findings of the named lint on their own line and on the following line.
pub fn allow_markers(lexed: &Lexed<'_>) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("lint:allow(") else { continue };
        let (lint, reason) = match rest.split_once(')') {
            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
            None => (rest.trim().to_string(), String::new()),
        };
        out.push(AllowMarker { lint, reason, line: c.line });
    }
    out
}

/// A parsed source file ready for linting.
pub struct SourceFile<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Path-based classification.
    pub kind: FileKind,
    /// Raw source (for excerpts).
    pub text: &'a str,
    /// Token stream and comments.
    pub lexed: Lexed<'a>,
    /// Allow-markers found in the comments.
    pub markers: Vec<AllowMarker>,
    /// Token-index ranges `[start, end)` covered by `#[test]` /
    /// `#[cfg(test)]` items, ascending and non-overlapping at top level.
    pub test_regions: Vec<(usize, usize)>,
}

impl<'a> SourceFile<'a> {
    /// Lex and analyze one file.
    pub fn parse(rel: String, text: &'a str) -> SourceFile<'a> {
        let lexed = lex(text);
        let markers = allow_markers(&lexed);
        let test_regions = test_regions(&lexed.toks);
        SourceFile { kind: classify(&rel), rel, text, lexed, markers, test_regions }
    }

    /// True when token index `i` falls inside a test-gated item.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// True when a marker for `lint` covers `line` (marker on the same line
    /// or on the line immediately above).
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.markers.iter().any(|m| {
            m.lint == lint && (m.line == line || m.line + 1 == line) && !m.reason.is_empty()
        })
    }

    /// The trimmed source text of 1-based `line` (for excerpts/baselines).
    pub fn line_text(&self, line: u32) -> &'a str {
        self.text.lines().nth(line.saturating_sub(1) as usize).unwrap_or("").trim()
    }
}

/// Find token ranges belonging to `#[test]`-like items: an attribute that is
/// `#[test]`, `#[bench]`, or `#[cfg(test, ...)]`, extended through the end
/// of the item it decorates (its first balanced `{...}` block, or a
/// terminating `;` for brace-less items).
fn test_regions(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching(toks, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            if is_test_attr(&toks[i + 2..attr_end]) {
                let mut j = attr_end + 1;
                let mut end = toks.len();
                while j < toks.len() {
                    if toks[j].is_punct(';') {
                        end = j + 1;
                        break;
                    }
                    if toks[j].is_punct('{') {
                        end = matching(toks, j, '{', '}').map_or(toks.len(), |e| e + 1);
                        break;
                    }
                    j += 1;
                }
                out.push((i, end));
                i = end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Token index of the delimiter matching `toks[open]` (which must be
/// `open_c`), or None when unbalanced.
fn matching(toks: &[Tok<'_>], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Attribute-content check: `test`, `bench`, or `cfg(test ...)`.
fn is_test_attr(content: &[Tok<'_>]) -> bool {
    match content.first() {
        Some(t) if t.is_ident("test") || t.is_ident("bench") => true,
        Some(t) if t.is_ident("cfg") => {
            content.get(1).is_some_and(|t| t.is_punct('('))
                && content.get(2).is_some_and(|t| t.is_ident("test"))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/graph/src/graph.rs"), FileKind::Lib);
        assert_eq!(classify("crates/graph/tests/properties.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/bench_linalg.rs"), FileKind::Bench);
        assert_eq!(classify("crates/bench/src/bin/bench_report.rs"), FileKind::Bin);
        assert_eq!(classify("examples/security_report.rs"), FileKind::Example);
        assert_eq!(classify("shims/serde/src/lib.rs"), FileKind::Shim);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::Test);
    }

    #[test]
    fn marker_parsing_extracts_lint_and_reason() {
        let src = "\
// lint:allow(nondet-iter) summed into a float, order-insensitive\n\
let x = 1; // lint:allow(panic-path) poisoned lock is unrecoverable\n\
/* lint:allow(dependency-policy) vendored */\n\
// lint:allow(nondet-iter)\n";
        let lexed = lex(src);
        let m = allow_markers(&lexed);
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].lint, "nondet-iter");
        assert_eq!(m[0].reason, "summed into a float, order-insensitive");
        assert_eq!(m[0].line, 1);
        assert_eq!(m[1].line, 2);
        assert_eq!(m[2].lint, "dependency-policy");
        assert_eq!(m[3].reason, "", "missing reason surfaces as empty");
    }

    #[test]
    fn test_regions_cover_cfg_test_mod_and_test_fns() {
        let src = "\
fn lib_code() { x.unwrap(); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { y.unwrap(); }\n\
}\n\
fn more_lib() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let unwraps: Vec<(usize, bool)> = f
            .lexed
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| (i, f.in_test_region(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "library unwrap not exempt");
        assert!(unwraps[1].1, "test-mod unwrap exempt");
        let more = f.lexed.toks.iter().position(|t| t.is_ident("more_lib")).unwrap();
        assert!(!f.in_test_region(more));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn guard() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let i = f.lexed.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.in_test_region(i));
    }

    #[test]
    fn braceless_attr_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { m.iter(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        let i = f.lexed.toks.iter().position(|t| t.is_ident("iter")).unwrap();
        assert!(!f.in_test_region(i), "region must stop at the use-item semicolon");
    }

    #[test]
    fn allowed_requires_reason_and_adjacency() {
        let src = "// lint:allow(panic-path) lock poisoning is fatal by design\nx.unwrap();\n\n\
                   // lint:allow(panic-path)\ny.unwrap();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src);
        assert!(f.allowed("panic-path", 2));
        assert!(!f.allowed("panic-path", 3), "only same + next line");
        assert!(!f.allowed("panic-path", 5), "reasonless markers do not suppress");
        assert!(!f.allowed("nondet-iter", 2), "lint name must match");
    }
}
