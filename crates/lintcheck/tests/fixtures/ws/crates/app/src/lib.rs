//! Seeded metric-registry violations against the fixture table
//! (fx_records_total: counter, fx_wait_seconds: histogram,
//! fx_unused_total: counter, fx_badsuffix: counter).

pub trait Sink {
    fn counter(&self, name: &str);
    fn gauge(&self, name: &str);
}

pub fn emit(s: &dyn Sink) {
    s.counter("commgraph_fx_records_total"); // ok: name and kind match
    s.counter("commgraph_fx_wait_seconds"); // kind mismatch: table says histogram
    s.counter("commgraph_fx_recods_total"); // typo: not in the table
    s.counter("commgraph_fx_badsuffix"); // in the table, but the table entry is malformed
}
