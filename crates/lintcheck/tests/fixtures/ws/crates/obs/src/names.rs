//! Fixture stand-in for the canonical table file: literals here are
//! definition sites, so unreferenced-entry findings anchor to these lines.
pub const NAMES: &[&str] = &[
    "commgraph_fx_records_total",
    "commgraph_fx_wait_seconds",
    "commgraph_fx_unused_total",
    "commgraph_fx_badsuffix",
];
