//! Seeded `unsafe` violation.

/// # Safety
/// `p` must be valid for reads.
pub unsafe fn raw(p: *const u32) -> u32 {
    unsafe { *p }
}
