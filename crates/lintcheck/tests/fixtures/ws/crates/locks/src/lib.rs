//! Seeded lock-order violations. The fixture config's canonical order is
//! `fx_locks::Pair.a` before `fx_locks::Pair.b` (plus a stale entry
//! `fx_locks::Pair.gone` that no code acquires).

use std::sync::Mutex;

/// Two counters guarded by separately-locked cells, plus an undeclared one.
pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: Mutex<u64>,
}

impl Pair {
    /// Correct nesting: `a` then `b`, matching the canonical table.
    pub fn sum(&self) -> u64 {
        if let Ok(x) = self.a.lock() {
            if let Ok(y) = self.b.lock() {
                return *x + *y;
            }
        }
        0
    }

    /// Seeded inversion: `b` held while taking `a`.
    pub fn inverted(&self) -> u64 {
        if let Ok(y) = self.b.lock() {
            if let Ok(x) = self.a.lock() {
                return *x + *y;
            }
        }
        0
    }

    /// Seeded undeclared class: `c` is not in the canonical table.
    pub fn third(&self) -> u64 {
        self.c.lock().map(|g| *g).unwrap_or(0)
    }
}
