//! Seeded call-chain material: a clock helper that taints cross-crate
//! callers and a two-hop transitive panic chain.

/// Clock helper: not itself on a deterministic surface, so only its
/// deterministic callers are flagged.
pub fn wall_stamp() -> f64 {
    std::time::Instant::now().elapsed().as_secs_f64()
}

/// Panicking leaf (a direct panic-path finding in its own right).
pub fn leaf(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// First hop of the propagation chain: calls the panicking leaf.
pub fn mid(v: Option<u32>) -> u32 {
    leaf(v) + 1
}

/// Second hop: two edges from the panic, still flagged.
pub fn top(v: Option<u32>) -> u32 {
    mid(v) * 2
}
