//! Seeded panic-path violations, one exempt test mod, one allowed site.

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(o: Option<u32>) -> u32 {
    o.expect("always some")
}

pub fn boom(kind: u8) {
    match kind {
        0 => panic!("kaboom"),
        _ => unreachable!("no other kinds"),
    }
}

pub fn allowed(o: Option<u32>) -> u32 {
    // lint:allow(panic-path) fixture demonstrates marker suppression
    o.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
