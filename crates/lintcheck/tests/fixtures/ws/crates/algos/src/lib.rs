//! Seeded nondet-iter violations: hash iteration feeding float sums.
use std::collections::{BTreeMap, HashMap};

pub fn sum_values(m: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m {
        total += v;
    }
    total
}

pub fn product_of_values(m: &HashMap<u32, f64>) -> f64 {
    m.values().product()
}

pub fn sorted_pairs(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> {
    // Exempt: the same statement routes the iteration into a BTreeMap.
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, f64>>()
}

pub fn max_key(m: &HashMap<u32, f64>) -> Option<u32> {
    // lint:allow(nondet-iter) max over keys is order-insensitive
    m.keys().copied().max()
}
