//! Seeded clock-hygiene violations: this crate's files sit under the
//! fixture config's deterministic prefixes, so wall-clock reads reachable
//! from here are findings.

use std::time::Instant;

/// Direct violation: a deterministic surface reading the wall clock.
pub fn window_roll() -> u64 {
    let t = Instant::now();
    t.elapsed().as_secs()
}

/// Transitive violation: calls a clock helper in another crate; the taint
/// propagates back through the cross-crate call edge.
pub fn tick() -> f64 {
    fx_chain::wall_stamp() + 1.0
}

/// Marker-suppressed read: measurement-only by declaration.
pub fn measured() -> u64 {
    // lint:allow(clock-hygiene) fixture demonstrates marker suppression
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
