//! Golden `--json` snapshots per lint against the seeded fixture workspace
//! under `tests/fixtures/ws`.
//!
//! Each test sweeps the fixture tree with exactly one lint enabled and
//! compares the rendered JSON byte-for-byte against a committed snapshot.
//! After an intentional output change, regenerate with:
//!
//! ```text
//! LINTCHECK_UPDATE_GOLDEN=1 cargo test -p lintcheck --test golden
//! ```
//!
//! and review the diff like any other source change.

use lintcheck::baseline::Baseline;
use lintcheck::{jsonout, Config, LintId, MetricSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_config(lints: Vec<LintId>) -> Config {
    let mut metric_table = BTreeMap::new();
    for (name, kind) in [
        ("commgraph_fx_records_total", "counter"), // lint:allow(metric-registry) fixture table, not an emission site
        ("commgraph_fx_wait_seconds", "histogram"), // lint:allow(metric-registry) fixture table, not an emission site
        ("commgraph_fx_unused_total", "counter"), // lint:allow(metric-registry) fixture table, not an emission site
        ("commgraph_fx_badsuffix", "counter"), // lint:allow(metric-registry) malformed on purpose: bad suffix
    ] {
        metric_table.insert(
            name.to_string(),
            MetricSpec { name: name.into(), kind: kind.into(), labels: vec![] },
        );
    }
    Config {
        root: manifest_dir().join("tests/fixtures/ws"),
        lints,
        metric_table,
        metric_table_file: "crates/obs/src/names.rs".into(),
        nondet_prefixes: vec!["crates/algos/".into()],
        unsafe_allowed: Vec::new(),
        det_prefixes: vec!["crates/det/".into()],
        lock_order: vec![
            "fx_locks::Pair.a".into(),
            "fx_locks::Pair.b".into(),
            "fx_locks::Pair.gone".into(),
        ],
    }
}

fn check_golden(lint: LintId, file: &str) {
    let cfg = fixture_config(vec![lint]);
    let report = lintcheck::run(&cfg, &Baseline::default()).expect("fixture sweep succeeds");
    let got = jsonout::report_json(&report);
    let path = manifest_dir().join("tests/fixtures/golden").join(file);
    if std::env::var_os("LINTCHECK_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, format!("{got}\n")).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        got,
        want.trim_end(),
        "golden mismatch for {lint}; if intentional, regenerate with \
         LINTCHECK_UPDATE_GOLDEN=1 cargo test -p lintcheck --test golden"
    );
}

#[test]
fn nondet_iter_golden() {
    check_golden(LintId::NondetIter, "nondet_iter.json");
}

#[test]
fn panic_path_golden() {
    check_golden(LintId::PanicPath, "panic_path.json");
}

#[test]
fn metric_registry_golden() {
    check_golden(LintId::MetricRegistry, "metric_registry.json");
}

#[test]
fn dependency_policy_golden() {
    check_golden(LintId::DependencyPolicy, "dependency_policy.json");
}

#[test]
fn clock_hygiene_golden() {
    check_golden(LintId::ClockHygiene, "clock_hygiene.json");
}

#[test]
fn lock_order_golden() {
    check_golden(LintId::LockOrder, "lock_order.json");
}

#[test]
fn panic_propagation_golden() {
    check_golden(LintId::PanicPropagation, "panic_propagation.json");
}

/// Every seeded violation class is detected in one full sweep: the lint
/// totals stay pinned so a regression in any single rule is caught even
/// before the per-lint goldens are consulted.
#[test]
fn full_sweep_detects_every_seeded_class() {
    let cfg = fixture_config(LintId::all().to_vec());
    let report = lintcheck::run(&cfg, &Baseline::default()).expect("fixture sweep succeeds");
    assert!(report.baselined.is_empty());
    let count = |lint: LintId| report.fresh.iter().filter(|f| f.lint == lint).count();
    // algos: for-in loop + .values() product; BTreeMap sink and marker exempt.
    assert_eq!(count(LintId::NondetIter), 2);
    // graph: unwrap, expect, panic!, unreachable!; chain: the leaf unwrap.
    // Marker + test mod exempt.
    assert_eq!(count(LintId::PanicPath), 5);
    // app/table: kind mismatch, typo, malformed entry, unreferenced entry.
    assert_eq!(count(LintId::MetricRegistry), 4);
    // evil: registry dep, escaping path, git dep, and two `unsafe` tokens.
    assert_eq!(count(LintId::DependencyPolicy), 5);
    // det: one direct read, one taint through the cross-crate helper;
    // the marker-suppressed read stays quiet.
    assert_eq!(count(LintId::ClockHygiene), 2);
    // locks: one inversion, one undeclared class, one stale table entry.
    assert_eq!(count(LintId::LockOrder), 3);
    // chain: mid calls the panicking leaf, top calls mid.
    assert_eq!(count(LintId::PanicPropagation), 2);
    assert_eq!(count(LintId::LintMarker), 0, "fixture markers are well-formed");
    assert_eq!(report.files_scanned, 8);
}

/// The baseline closes the loop: rendering the fixture findings and feeding
/// them back as the baseline leaves nothing fresh.
#[test]
fn baseline_round_trip_suppresses_everything() {
    let cfg = fixture_config(LintId::all().to_vec());
    let report = lintcheck::run(&cfg, &Baseline::default()).expect("fixture sweep succeeds");
    let baseline = Baseline::parse(&Baseline::render(&report.fresh));
    let again = lintcheck::run(&cfg, &baseline).expect("fixture sweep succeeds");
    assert!(again.fresh.is_empty(), "{:?}", again.fresh);
    assert_eq!(again.baselined.len(), report.fresh.len());
}
