//! Shared scaffolding for the experiment binaries (`exp_*`) and Criterion
//! benches: simulation helpers, artifact output, and a tiny CLI parser.
//!
//! Every experiment writes machine-readable artifacts (JSON/CSV/DOT) under
//! `target/experiments/<exp>/` and prints a human-readable table to stdout.
//! EXPERIMENTS.md records the printed tables next to the paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cloudsim::{ClusterPreset, GroundTruth, Simulator};
use flowlog::record::ConnSummary;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// Experiment-binary error handling: print a diagnostic and exit instead
/// of unwinding — these helpers back CLI tools, not library callers.
fn or_die<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("benchkit: {what}: {e}");
            std::process::exit(2);
        }
    }
}

/// Simulation products an experiment consumes.
pub struct SimRun {
    /// All records of the simulated span.
    pub records: Vec<ConnSummary>,
    /// Simulator ground truth (roles, attacks).
    pub truth: GroundTruth,
    /// Monitored (internal) inventory.
    pub monitored: HashSet<Ipv4Addr>,
    /// Cluster preset simulated.
    pub preset: ClusterPreset,
    /// Scale factor used.
    pub scale: f64,
    /// Minutes simulated.
    pub minutes: u64,
}

/// Simulate `minutes` of a preset at `scale`, collecting everything.
pub fn simulate(preset: ClusterPreset, scale: f64, minutes: u64) -> SimRun {
    let topo = preset.topology_scaled(scale);
    let cfg = preset.paper_sim_config(&topo);
    let mut sim = or_die(Simulator::new(topo, cfg), "preset simulator config rejected");
    let records = sim.collect(minutes);
    let truth = sim.ground_truth().clone();
    let monitored = monitored_of(&truth);
    SimRun { records, truth, monitored, preset, scale, minutes }
}

/// Simulate streaming: hand each minute's batch to `sink` without keeping
/// the full record vector (KQuery-scale runs).
pub fn simulate_streaming(
    preset: ClusterPreset,
    scale: f64,
    minutes: u64,
    mut sink: impl FnMut(u64, &[ConnSummary]),
) -> (GroundTruth, HashSet<Ipv4Addr>) {
    let topo = preset.topology_scaled(scale);
    let cfg = preset.paper_sim_config(&topo);
    let mut sim = or_die(Simulator::new(topo, cfg), "preset simulator config rejected");
    sim.run(minutes, |m, batch| sink(m, batch));
    let truth = sim.ground_truth().clone();
    let monitored = monitored_of(&truth);
    (truth, monitored)
}

/// The monitored inventory: internal (10.0.0.0/8) addresses of the truth.
pub fn monitored_of(truth: &GroundTruth) -> HashSet<Ipv4Addr> {
    truth.ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect()
}

/// Ground-truth role label per node of a graph, for scoring segmentations.
/// Nodes without a role (external/collapsed) share one catch-all label.
pub fn truth_labels(g: &commgraph_graph::CommGraph, truth: &GroundTruth) -> Vec<usize> {
    let catch_all = truth.role_names.len();
    g.nodes()
        .iter()
        .map(|n| match n.ip().and_then(|ip| truth.role_of(ip)) {
            Some(role) => role.0 as usize,
            None => catch_all,
        })
        .collect()
}

/// Build the paper-style collapsed IP graph of a simulated run: hourly
/// window, vantage dedup, per-NIC 0.1% heavy-hitter survival with the
/// monitored inventory protected.
pub fn collapsed_ip_graph(run: &SimRun) -> commgraph_graph::CommGraph {
    use commgraph_graph::collapse::{collapse, NicLocalSurvivors, PAPER_THRESHOLD};
    use commgraph_graph::{Facet, GraphBuilder};
    let mut survivors = NicLocalSurvivors::new(Facet::Ip, PAPER_THRESHOLD);
    // Feed minute batches: records are sorted per minute by the simulator.
    let mut start = 0usize;
    while start < run.records.len() {
        let minute = run.records[start].ts;
        let mut end = start;
        while end < run.records.len() && run.records[end].ts == minute {
            end += 1;
        }
        survivors.add_interval(&run.records[start..end]);
        start = end;
    }
    let mut b =
        GraphBuilder::new(Facet::Ip, 0, run.minutes * 60).with_monitored(run.monitored.clone());
    b.add_all(&run.records);
    let raw = b.finish();
    collapse(&raw, 1.0, |n| {
        survivors.is_survivor(n) || n.ip().map(|ip| run.monitored.contains(&ip)).unwrap_or(false)
    })
}

/// Output directory for one experiment's artifacts.
pub fn out_dir(exp: &str) -> PathBuf {
    let dir = PathBuf::from(env_or("EXP_OUT", "target/experiments")).join(exp);
    or_die(std::fs::create_dir_all(&dir), "create experiment output dir");
    dir
}

/// Write one artifact file, returning its path.
pub fn write_artifact(exp: &str, name: &str, content: &str) -> PathBuf {
    let path = out_dir(exp).join(name);
    or_die(std::fs::write(&path, content), "write experiment artifact");
    path
}

/// `--flag value` CLI lookup with an environment-variable fallback
/// (`EXP_<FLAG>`), then a default.
pub fn arg(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == format!("--{flag}") {
            return args[i + 1].clone();
        }
    }
    env_or(&format!("EXP_{}", flag.to_uppercase()), default)
}

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

/// Parse an f64 CLI argument.
pub fn arg_f64(flag: &str, default: f64) -> f64 {
    arg(flag, &default.to_string()).parse().unwrap_or(default)
}

/// Parse a u64 CLI argument.
pub fn arg_u64(flag: &str, default: u64) -> u64 {
    arg(flag, &default.to_string()).parse().unwrap_or(default)
}

/// Format a count with thousands separators for table output.
pub fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_simulation_produces_records_and_truth() {
        let run = simulate(ClusterPreset::Portal, 0.02, 2);
        assert!(!run.records.is_empty());
        assert!(!run.monitored.is_empty());
        assert!(run.monitored.iter().all(|ip| ip.octets()[0] == 10));
    }

    #[test]
    fn fmt_count_ranges() {
        assert_eq!(fmt_count(12.0), "12");
        assert_eq!(fmt_count(1500.0), "1.5K");
        assert_eq!(fmt_count(2_300_000.0), "2.3M");
    }

    #[test]
    fn truth_labels_cover_all_nodes() {
        let run = simulate(ClusterPreset::MicroserviceBench, 0.2, 2);
        let mut b = commgraph_graph::GraphBuilder::new(commgraph_graph::Facet::Ip, 0, 3600);
        b.add_all(&run.records);
        let g = b.finish();
        let labels = truth_labels(&g, &run.truth);
        assert_eq!(labels.len(), g.node_count());
    }
}
