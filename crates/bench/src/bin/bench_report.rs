//! Serial-vs-parallel baseline report for the `commgraph-algos::par` kernels.
//!
//! Times each ported kernel — exact Jaccard, MinHash, SimRank, the Jacobi
//! eigensolver, and the PCA sweep — once under `Parallelism::serial()` and
//! once under a multi-worker knob, on fixed-seed inputs, and writes
//! `BENCH_PR1.json` at the repository root: one entry per kernel with
//! `{n, serial_ms, parallel_ms, speedup}` plus the core count the run
//! actually had (speedups are only meaningful on multi-core hosts).
//!
//! Usage: `cargo run --release -p commgraph-bench --bin bench_report`
//! Flags: `--n 500` (similarity/eigen dimension), `--workers 4`,
//! `--reps 3` (best-of-N timing).

use algos::jaccard::{jaccard_matrix_of_sets_with, MinHasher};
use algos::simrank::{simrank_with, SimRankConfig};
use algos::wgraph::WeightedGraph;
use algos::Parallelism;
use benchkit::{arg, arg_u64};
use linalg::eigen::eigen_symmetric_with;
use linalg::pca::pca_sweep_with;
use linalg::Matrix;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall-clock milliseconds for `f`.
fn time_ms<T>(reps: u64, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Deterministic neighbor-set fixture: n sets of ~32 ids drawn from a
/// universe sized so replicas overlap heavily.
fn fixture_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 0xC0FFEEu64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let mut s: Vec<u32> = (0..32).map(|_| next() % (n as u32 * 4)).collect();
            // Every 4th set shares a common core, like same-role replicas.
            if i % 4 == 0 {
                s.extend(0..16u32);
            }
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect()
}

/// Deterministic dense symmetric matrix with a generic spectrum.
fn fixture_symmetric(n: usize) -> Matrix {
    let mut state = 0x5EEDu64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 40) as f64 / 16_777_216.0
    };
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = next();
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

fn main() {
    let n: usize = arg("n", "500").parse().unwrap_or(500);
    let workers: usize = arg("workers", "4").parse().unwrap_or(4);
    let reps = arg_u64("reps", 3);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let serial = Parallelism::serial();
    let parallel = Parallelism::new(workers);

    let mut report = serde_json::Map::new();
    let mut add = |name: &str, dim: usize, serial_ms: f64, parallel_ms: f64| {
        let speedup = serial_ms / parallel_ms;
        println!("{name:<28} n={dim:<5} serial {serial_ms:9.2} ms  parallel {parallel_ms:9.2} ms  speedup {speedup:5.2}x");
        report.insert(
            name.to_string(),
            json!({"n": dim, "serial_ms": serial_ms, "parallel_ms": parallel_ms, "speedup": speedup}),
        );
    };

    let sets = fixture_sets(n);
    add(
        "jaccard_matrix_of_sets",
        n,
        time_ms(reps, || jaccard_matrix_of_sets_with(&sets, serial)),
        time_ms(reps, || jaccard_matrix_of_sets_with(&sets, parallel)),
    );

    let mh = MinHasher::new(128, 7);
    add(
        "minhash_similarity",
        n,
        time_ms(reps, || mh.similarity_matrix_of_sets_with(&sets, serial)),
        time_ms(reps, || mh.similarity_matrix_of_sets_with(&sets, parallel)),
    );

    // SimRank is O(n³) per iteration — a smaller graph keeps the run short.
    let sr_n = (n / 3).max(16);
    let edges: Vec<(u32, u32, f64)> = (0..sr_n as u32)
        .flat_map(|u| {
            (1..4u32).map(move |k| (u, (u + k * 7) % sr_n as u32, 1.0 + (u % 5) as f64))
        })
        .filter(|&(u, v, _)| u != v)
        .collect();
    let g = WeightedGraph::from_edges(sr_n, &edges);
    let cfg = SimRankConfig::default();
    add(
        "simrank",
        sr_n,
        time_ms(reps, || simrank_with(&g, cfg, serial)),
        time_ms(reps, || simrank_with(&g, cfg, parallel)),
    );

    let m = fixture_symmetric(n);
    add(
        "eigen_symmetric",
        n,
        time_ms(reps, || eigen_symmetric_with(&m, 1e-8, serial).expect("symmetric")),
        time_ms(reps, || eigen_symmetric_with(&m, 1e-8, parallel).expect("symmetric")),
    );

    // PCA at a smaller dimension: the sweep re-runs the eigensolve.
    let pca_n = (n / 2).max(32);
    let mp = fixture_symmetric(pca_n);
    let ks = [1, 4, 16, 64];
    add(
        "pca_sweep",
        pca_n,
        time_ms(reps, || pca_sweep_with(&mp, &ks, serial).expect("square")),
        time_ms(reps, || pca_sweep_with(&mp, &ks, parallel).expect("square")),
    );

    let out = json!({
        "cores": cores,
        "workers": workers,
        "reps": reps,
        "kernels": serde_json::Value::Object(report),
    });
    let path = "BENCH_PR1.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serializable"))
        .expect("write report");
    println!("\nwrote {path} (host has {cores} core(s); speedups need multi-core hardware)");
}
